//! The history-based file server (§4.1).
//!
//! "The file server maintains, in one or more log files, a file history for
//! each file that it stores. The file history includes all updates to the
//! contents and properties of files … The file server can extract, from the
//! file history, either the current version of a file, or an earlier
//! version. (The contents of the current version are typically cached.)"

use std::collections::HashMap;
use std::sync::Arc;

use clio_testkit::sync::Mutex;

use clio_core::service::{AppendOpts, Durability, LogService};
use clio_types::{ClioError, Result, Timestamp};

/// One record in a file's history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileUpdate {
    /// Write `data` at `offset` (extending the file if needed).
    Write {
        /// Byte offset.
        offset: u64,
        /// The written bytes.
        data: Vec<u8>,
    },
    /// Truncate or extend to `len` bytes (extension zero-fills).
    SetLen(u64),
    /// The file was deleted (history is retained; state becomes absent).
    Delete,
    /// A checkpoint: the file's complete state at this point (`None` if it
    /// was deleted). Replay can start from the latest checkpoint instead
    /// of the beginning — §4's "slower, write-once storage being updated
    /// less frequently, for checkpointing and archiving".
    Snapshot(Option<Vec<u8>>),
}

impl FileUpdate {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            FileUpdate::Write { offset, data } => {
                out.push(1);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            FileUpdate::SetLen(len) => {
                out.push(2);
                out.extend_from_slice(&len.to_le_bytes());
            }
            FileUpdate::Delete => out.push(3),
            FileUpdate::Snapshot(None) => out.push(4),
            FileUpdate::Snapshot(Some(data)) => {
                out.push(5);
                out.extend_from_slice(data);
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Result<FileUpdate> {
        match data.first() {
            Some(1) => {
                if data.len() < 9 {
                    return Err(ClioError::BadRecord("short write record"));
                }
                Ok(FileUpdate::Write {
                    offset: u64::from_le_bytes(data[1..9].try_into().expect("8")),
                    data: data[9..].to_vec(),
                })
            }
            Some(2) => {
                if data.len() < 9 {
                    return Err(ClioError::BadRecord("short setlen record"));
                }
                Ok(FileUpdate::SetLen(u64::from_le_bytes(
                    data[1..9].try_into().expect("8"),
                )))
            }
            Some(3) => Ok(FileUpdate::Delete),
            Some(4) => Ok(FileUpdate::Snapshot(None)),
            Some(5) => Ok(FileUpdate::Snapshot(Some(data[1..].to_vec()))),
            _ => Err(ClioError::BadRecord("unknown file update tag")),
        }
    }

    /// Applies this update to a materialized file state.
    fn apply(&self, state: &mut Option<Vec<u8>>) {
        match self {
            FileUpdate::Write { offset, data } => {
                let buf = state.get_or_insert_with(Vec::new);
                let end = *offset as usize + data.len();
                if buf.len() < end {
                    buf.resize(end, 0);
                }
                buf[*offset as usize..end].copy_from_slice(data);
            }
            FileUpdate::SetLen(len) => {
                let buf = state.get_or_insert_with(Vec::new);
                buf.resize(*len as usize, 0);
            }
            FileUpdate::Delete => *state = None,
            FileUpdate::Snapshot(snap) => *state = snap.clone(),
        }
    }

    /// Whether this record fully determines the state (no earlier history
    /// needed).
    fn is_checkpoint(&self) -> bool {
        matches!(self, FileUpdate::Snapshot(_))
    }
}

/// The history-based file server: current state cached in RAM, truth in
/// the log.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clio_core::service::LogService;
/// use clio_core::ServiceConfig;
/// use clio_history::HistoryFs;
/// use clio_types::{SystemClock, VolumeSeqId};
/// use clio_volume::MemDevicePool;
///
/// let svc = Arc::new(LogService::create(
///     VolumeSeqId(1),
///     Arc::new(MemDevicePool::new(1024, 1 << 12)),
///     ServiceConfig::default(),
///     Arc::new(SystemClock),
/// )?);
/// let fs = HistoryFs::attach(svc, "/files")?;
/// fs.create("notes")?;
/// fs.write_at("notes", 0, b"draft")?;
/// assert_eq!(fs.read("notes")?, b"draft");
/// # Ok::<(), clio_types::ClioError>(())
/// ```
pub struct HistoryFs {
    svc: Arc<LogService>,
    root: String,
    /// The cached "current state" — §4: "merely a cached summary of the
    /// effect of this history".
    cache: Mutex<HashMap<String, Option<Vec<u8>>>>,
    /// When set, read accesses are themselves logged (§4.1: the file
    /// history may include "information about read access to files").
    audit_reads: Mutex<Option<String>>,
}

impl HistoryFs {
    /// Creates (or re-attaches to) a history file server rooted at `root`
    /// (e.g. `/fs`) and rebuilds its cache from the log.
    pub fn attach(svc: Arc<LogService>, root: &str) -> Result<HistoryFs> {
        if svc.resolve(root).is_err() {
            svc.create_log(root)?;
        }
        let fs = HistoryFs {
            svc,
            root: root.to_owned(),
            cache: Mutex::new(HashMap::new()),
            audit_reads: Mutex::new(None),
        };
        fs.rebuild_cache()?;
        Ok(fs)
    }

    /// Turns on read auditing: every [`HistoryFs::read`] appends a record
    /// naming the file to the log file at `audit_path` (§4.1).
    pub fn enable_read_audit(&self, audit_path: &str) -> Result<()> {
        if self.svc.resolve(audit_path).is_err() {
            self.svc.create_log(audit_path)?;
        }
        *self.audit_reads.lock() = Some(audit_path.to_owned());
        Ok(())
    }

    fn file_path(&self, name: &str) -> String {
        format!("{}/{}", self.root, name)
    }

    /// Rebuilds the RAM state by replaying every file history (§4:
    /// "this state can be completely reconstructed from the log files").
    /// Replay for each file starts at its most recent checkpoint, found by
    /// scanning backward — recent entries are the cheap ones (§3.3).
    /// Returns the number of records replayed (a cost measure).
    pub fn rebuild_cache(&self) -> Result<u64> {
        let mut cache = HashMap::new();
        let mut replayed = 0u64;
        for name in self.svc.list(&self.root)? {
            let path = self.file_path(&name);
            // Backward: find the latest checkpoint (if any).
            let mut back = self.svc.cursor_from_end(&path)?;
            let mut from: Option<Timestamp> = None;
            while let Some(e) = back.prev()? {
                if FileUpdate::decode(&e.data)?.is_checkpoint() {
                    from = Some(e.effective_ts());
                    break;
                }
            }
            // Forward from the checkpoint (or the beginning).
            let mut cur = match from {
                Some(ts) => self.svc.cursor_from_time(&path, ts)?,
                None => self.svc.cursor(&path)?,
            };
            let mut state: Option<Vec<u8>> = None;
            while let Some(e) = cur.next()? {
                FileUpdate::decode(&e.data)?.apply(&mut state);
                replayed += 1;
            }
            cache.insert(name, state);
        }
        *self.cache.lock() = cache;
        Ok(replayed)
    }

    /// Writes a checkpoint record for every file: its complete current
    /// state, so a later cache rebuild replays only what follows (§4).
    /// Forced, so a crash right after still benefits.
    pub fn checkpoint(&self) -> Result<()> {
        let names: Vec<String> = self.cache.lock().keys().cloned().collect();
        for name in names {
            let snap = self.cache.lock().get(&name).cloned().flatten();
            self.log(&name, &FileUpdate::Snapshot(snap), Durability::Buffered)?;
        }
        self.svc.flush()
    }

    /// Creates a file (its history log file).
    pub fn create(&self, name: &str) -> Result<()> {
        self.svc.create_log(&self.file_path(name))?;
        self.cache.lock().insert(name.to_owned(), Some(Vec::new()));
        // An explicit zero-length SetLen marks creation time in the history.
        self.log(name, &FileUpdate::SetLen(0), Durability::Buffered)?;
        Ok(())
    }

    fn log(&self, name: &str, up: &FileUpdate, durability: Durability) -> Result<Timestamp> {
        let opts = AppendOpts {
            durability,
            timestamped: true,
            seqno: None,
        };
        let r = self
            .svc
            .append_path(&self.file_path(name), &up.encode(), opts)?;
        Ok(r.timestamp)
    }

    /// Writes `data` at `offset`, updating the cache and logging the
    /// history record.
    pub fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let up = FileUpdate::Write {
            offset,
            data: data.to_vec(),
        };
        {
            let mut g = self.cache.lock();
            let state = g
                .get_mut(name)
                .ok_or_else(|| ClioError::NotFound(name.to_owned()))?;
            if state.is_none() {
                return Err(ClioError::NotFound(format!("{name} was deleted")));
            }
            up.apply(state);
        }
        self.log(name, &up, Durability::Buffered)?;
        Ok(())
    }

    /// Truncates/extends the file.
    pub fn set_len(&self, name: &str, len: u64) -> Result<()> {
        let up = FileUpdate::SetLen(len);
        {
            let mut g = self.cache.lock();
            let state = g
                .get_mut(name)
                .ok_or_else(|| ClioError::NotFound(name.to_owned()))?;
            if state.is_none() {
                return Err(ClioError::NotFound(format!("{name} was deleted")));
            }
            up.apply(state);
        }
        self.log(name, &up, Durability::Buffered)?;
        Ok(())
    }

    /// Deletes the file. The history survives — the file merely has no
    /// current version (§4: the system's "true, permanent state is based
    /// upon its execution history").
    pub fn delete(&self, name: &str) -> Result<Timestamp> {
        {
            let mut g = self.cache.lock();
            let state = g
                .get_mut(name)
                .ok_or_else(|| ClioError::NotFound(name.to_owned()))?;
            *state = None;
        }
        self.log(name, &FileUpdate::Delete, Durability::Forced)
    }

    /// The current contents (from the RAM cache).
    pub fn read(&self, name: &str) -> Result<Vec<u8>> {
        let out = self
            .cache
            .lock()
            .get(name)
            .ok_or_else(|| ClioError::NotFound(name.to_owned()))?
            .clone()
            .ok_or_else(|| ClioError::NotFound(format!("{name} was deleted")))?;
        if let Some(audit) = self.audit_reads.lock().clone() {
            let rec = format!("read {name}");
            self.svc
                .append_path(&audit, rec.as_bytes(), AppendOpts::standard())?;
        }
        Ok(out)
    }

    /// Whether the file currently exists.
    #[must_use]
    pub fn exists(&self, name: &str) -> bool {
        matches!(self.cache.lock().get(name), Some(Some(_)))
    }

    /// Extracts the version of the file as of `ts` by replaying its
    /// history up to that time (§4.1: "either the current version of a
    /// file, or an earlier version").
    pub fn version_at(&self, name: &str, ts: Timestamp) -> Result<Option<Vec<u8>>> {
        let mut state: Option<Vec<u8>> = None;
        let mut any = false;
        let mut cur = self.svc.cursor(&self.file_path(name))?;
        while let Some(e) = cur.next()? {
            if e.effective_ts() > ts {
                break;
            }
            any = true;
            FileUpdate::decode(&e.data)?.apply(&mut state);
        }
        if !any {
            return Ok(None);
        }
        Ok(state)
    }

    /// Forces the history to stable storage (e.g. before checkpointing).
    pub fn sync(&self) -> Result<()> {
        self.svc.flush()
    }

    /// Names of files with a live current version.
    pub fn list_live(&self) -> Vec<String> {
        let g = self.cache.lock();
        let mut v: Vec<String> = g
            .iter()
            .filter(|(_, s)| s.is_some())
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use clio_core::ServiceConfig;
    use clio_types::{ManualClock, VolumeSeqId};
    use clio_volume::MemDevicePool;

    use super::*;

    fn service() -> Arc<LogService> {
        Arc::new(
            LogService::create(
                VolumeSeqId(1),
                Arc::new(MemDevicePool::new(512, 4096)),
                ServiceConfig {
                    block_size: 512,
                    fanout: 4,
                    cache_blocks: 128,
                    ..ServiceConfig::default()
                },
                Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
            )
            .unwrap(),
        )
    }

    #[test]
    fn write_read_current_version() {
        let fs = HistoryFs::attach(service(), "/fs").unwrap();
        fs.create("notes.txt").unwrap();
        fs.write_at("notes.txt", 0, b"hello").unwrap();
        fs.write_at("notes.txt", 5, b" world").unwrap();
        assert_eq!(fs.read("notes.txt").unwrap(), b"hello world");
        fs.write_at("notes.txt", 0, b"HELLO").unwrap();
        assert_eq!(fs.read("notes.txt").unwrap(), b"HELLO world");
        fs.set_len("notes.txt", 5).unwrap();
        assert_eq!(fs.read("notes.txt").unwrap(), b"HELLO");
    }

    #[test]
    fn earlier_versions_are_extractable() {
        let fs = HistoryFs::attach(service(), "/fs").unwrap();
        fs.create("doc").unwrap();
        fs.write_at("doc", 0, b"v1").unwrap();
        let t1 = fs
            .log("doc", &FileUpdate::SetLen(2), Durability::Buffered)
            .unwrap();
        fs.write_at("doc", 0, b"v2").unwrap();
        assert_eq!(fs.read("doc").unwrap(), b"v2");
        // As of t1, the content was still "v1".
        let old = fs.version_at("doc", t1).unwrap().unwrap();
        assert_eq!(old, b"v1");
        // Before the file existed: no version.
        assert_eq!(fs.version_at("doc", Timestamp(0)).unwrap(), None);
    }

    #[test]
    fn delete_keeps_history() {
        let fs = HistoryFs::attach(service(), "/fs").unwrap();
        fs.create("tmp").unwrap();
        fs.write_at("tmp", 0, b"precious").unwrap();
        let t_del = fs.delete("tmp").unwrap();
        assert!(!fs.exists("tmp"));
        assert!(fs.read("tmp").is_err());
        // The pre-deletion version is still in the history.
        let old = fs
            .version_at("tmp", Timestamp(t_del.0 - 1))
            .unwrap()
            .unwrap();
        assert_eq!(old, b"precious");
        assert_eq!(fs.version_at("tmp", t_del).unwrap(), None);
    }

    #[test]
    fn cache_rebuild_reproduces_state() {
        let svc = service();
        let fs = HistoryFs::attach(svc.clone(), "/fs").unwrap();
        fs.create("a").unwrap();
        fs.create("b").unwrap();
        fs.write_at("a", 0, b"alpha").unwrap();
        fs.write_at("b", 0, b"beta").unwrap();
        fs.delete("b").unwrap();
        let live_before = fs.list_live();
        let a_before = fs.read("a").unwrap();
        drop(fs);
        // Re-attach: cache rebuilt from the log alone.
        let fs = HistoryFs::attach(svc, "/fs").unwrap();
        assert_eq!(fs.list_live(), live_before);
        assert_eq!(fs.read("a").unwrap(), a_before);
        assert!(!fs.exists("b"));
    }
}

#[cfg(test)]
mod audit_tests {
    use std::sync::Arc;

    use clio_core::service::LogService;
    use clio_core::ServiceConfig;
    use clio_types::{ManualClock, Timestamp, VolumeSeqId};
    use clio_volume::MemDevicePool;

    use super::HistoryFs;

    #[test]
    fn read_audit_logs_accesses() {
        let svc = Arc::new(
            LogService::create(
                VolumeSeqId(3),
                Arc::new(MemDevicePool::new(512, 4096)),
                ServiceConfig {
                    block_size: 512,
                    fanout: 4,
                    cache_blocks: 128,
                    ..ServiceConfig::default()
                },
                Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
            )
            .unwrap(),
        );
        let fs = HistoryFs::attach(svc.clone(), "/fs").unwrap();
        fs.create("secret").unwrap();
        fs.write_at("secret", 0, b"classified").unwrap();
        // No audit yet: reads leave no trace.
        fs.read("secret").unwrap();
        fs.enable_read_audit("/readlog").unwrap();
        fs.read("secret").unwrap();
        fs.read("secret").unwrap();
        let mut cur = svc.cursor("/readlog").unwrap();
        let audit = cur.collect_remaining().unwrap();
        assert_eq!(audit.len(), 2);
        assert_eq!(audit[0].data, b"read secret");
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use std::sync::Arc;

    use clio_core::service::LogService;
    use clio_core::ServiceConfig;
    use clio_types::{ManualClock, Timestamp, VolumeSeqId};
    use clio_volume::MemDevicePool;

    use super::HistoryFs;

    fn service() -> Arc<LogService> {
        Arc::new(
            LogService::create(
                VolumeSeqId(4),
                Arc::new(MemDevicePool::new(512, 8192)),
                ServiceConfig {
                    block_size: 512,
                    fanout: 4,
                    cache_blocks: 128,
                    ..ServiceConfig::default()
                },
                Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
            )
            .unwrap(),
        )
    }

    #[test]
    fn checkpoint_bounds_rebuild_replay() {
        let svc = service();
        let fs = HistoryFs::attach(svc.clone(), "/fs").unwrap();
        fs.create("doc").unwrap();
        for i in 0..200u32 {
            fs.write_at("doc", 0, format!("rev {i}").as_bytes())
                .unwrap();
        }
        // Without a checkpoint, a rebuild replays the whole history.
        let full = fs.rebuild_cache().unwrap();
        assert!(full >= 200, "replayed {full}");
        // Checkpoint, a few more edits, rebuild: replay is bounded by the
        // checkpoint + the edits after it.
        fs.checkpoint().unwrap();
        for i in 0..5u32 {
            fs.write_at("doc", 0, format!("post {i}").as_bytes())
                .unwrap();
        }
        let bounded = fs.rebuild_cache().unwrap();
        assert!(
            bounded <= 10,
            "replayed {bounded} records despite checkpoint"
        );
        // Writes at offset 0 do not truncate: the last byte of the longer
        // "rev 199" shows through behind the 6-byte "post 4".
        assert_eq!(fs.read("doc").unwrap(), b"post 49".to_vec());
        // Version-at-time still works across the checkpoint.
        let old = fs.version_at("doc", Timestamp::MAX).unwrap().unwrap();
        assert_eq!(old, b"post 49");
    }

    #[test]
    fn checkpoint_of_deleted_file_round_trips() {
        let svc = service();
        let fs = HistoryFs::attach(svc.clone(), "/fs").unwrap();
        fs.create("gone").unwrap();
        fs.write_at("gone", 0, b"x").unwrap();
        fs.delete("gone").unwrap();
        fs.checkpoint().unwrap();
        let fs = HistoryFs::attach(svc, "/fs").unwrap();
        assert!(!fs.exists("gone"));
    }
}
