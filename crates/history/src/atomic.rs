//! Atomic update of regular files, using log files for recovery.
//!
//! §6: "we plan to implement atomic update of (regular) files, using log
//! files for recovery" — this module is that planned extension. A
//! transaction's writes against the conventional file system are first
//! recorded as *intention* records in a log file; a forced COMMIT record
//! (§2.3.1) makes the transaction durable; only then are the writes
//! applied to the rewriteable file system, and an APPLIED record closes
//! the transaction. Recovery replays the log: committed-but-unapplied
//! transactions are redone (idempotently), uncommitted ones vanish.

use std::collections::BTreeMap;
use std::sync::Arc;

use clio_testkit::sync::Mutex;

use clio_core::service::{AppendOpts, Durability, LogService};
use clio_device::BlockStore;
use clio_fs::FileSystem;
use clio_types::{ClioError, Result};

/// A record in the intentions log.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TxnRecord {
    /// One intended write.
    Write {
        txn: u64,
        path: String,
        offset: u64,
        data: Vec<u8>,
    },
    /// The transaction's writes are complete and must take effect.
    Commit { txn: u64 },
    /// The writes have been applied to the file system; redo is
    /// unnecessary (an optimization — redo is idempotent anyway).
    Applied { txn: u64 },
}

impl TxnRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            TxnRecord::Write {
                txn,
                path,
                offset,
                data,
            } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&(path.len() as u16).to_le_bytes());
                out.extend_from_slice(path.as_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(data);
            }
            TxnRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            TxnRecord::Applied { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Result<TxnRecord> {
        let u64at = |o: usize| -> Result<u64> {
            data.get(o..o + 8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
                .ok_or(ClioError::BadRecord("truncated txn record"))
        };
        match data.first() {
            Some(1) => {
                let txn = u64at(1)?;
                let plen = data
                    .get(9..11)
                    .map(|s| u16::from_le_bytes(s.try_into().expect("2 bytes")) as usize)
                    .ok_or(ClioError::BadRecord("truncated path length"))?;
                let path = data
                    .get(11..11 + plen)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or(ClioError::BadRecord("bad path"))?
                    .to_owned();
                let offset = u64at(11 + plen)?;
                Ok(TxnRecord::Write {
                    txn,
                    path,
                    offset,
                    data: data[19 + plen..].to_vec(),
                })
            }
            Some(2) => Ok(TxnRecord::Commit { txn: u64at(1)? }),
            Some(3) => Ok(TxnRecord::Applied { txn: u64at(1)? }),
            _ => Err(ClioError::BadRecord("unknown txn record tag")),
        }
    }
}

/// An open transaction: writes staged in memory until commit.
#[derive(Debug, Default)]
pub struct Txn {
    id: u64,
    writes: Vec<(String, u64, Vec<u8>)>,
}

impl Txn {
    /// Stages a write of `data` at `offset` of `path`.
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) {
        self.writes.push((path.to_owned(), offset, data.to_vec()));
    }

    /// The transaction id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Atomic multi-file updates over a conventional file system, recovered
/// through a Clio log file.
pub struct AtomicFiles<S: BlockStore> {
    svc: Arc<LogService>,
    fs: FileSystem<S>,
    log_path: String,
    next_txn: Mutex<u64>,
}

impl<S: BlockStore> AtomicFiles<S> {
    /// Attaches to (or creates) the intentions log at `log_path` and runs
    /// recovery: every committed-but-unapplied transaction in the log is
    /// redone against `fs` before the pair is handed back.
    pub fn attach(
        svc: Arc<LogService>,
        fs: FileSystem<S>,
        log_path: &str,
    ) -> Result<AtomicFiles<S>> {
        if svc.resolve(log_path).is_err() {
            svc.create_log(log_path)?;
        }
        let af = AtomicFiles {
            svc,
            fs,
            log_path: log_path.to_owned(),
            next_txn: Mutex::new(0),
        };
        af.recover()?;
        Ok(af)
    }

    /// The wrapped file system (reads go straight through).
    #[must_use]
    pub fn fs(&self) -> &FileSystem<S> {
        &self.fs
    }

    /// Opens a transaction.
    pub fn begin(&self) -> Txn {
        let mut g = self.next_txn.lock();
        let id = *g;
        *g += 1;
        Txn {
            id,
            writes: Vec::new(),
        }
    }

    /// Commits: logs intentions, forces the COMMIT record, applies the
    /// writes, then logs APPLIED. All-or-nothing under crashes at any
    /// point.
    pub fn commit(&self, txn: Txn) -> Result<()> {
        self.log_intentions(&txn)?;
        self.apply(&txn)?;
        self.mark_applied(txn.id)?;
        Ok(())
    }

    /// Phase 1: intentions buffered, COMMIT forced (§2.3.1). After this
    /// returns, the transaction WILL take effect even across a crash.
    fn log_intentions(&self, txn: &Txn) -> Result<()> {
        for (path, offset, data) in &txn.writes {
            let rec = TxnRecord::Write {
                txn: txn.id,
                path: path.clone(),
                offset: *offset,
                data: data.clone(),
            };
            self.svc
                .append_path(&self.log_path, &rec.encode(), AppendOpts::standard())?;
        }
        let commit = TxnRecord::Commit { txn: txn.id };
        self.svc.append_path(
            &self.log_path,
            &commit.encode(),
            AppendOpts {
                durability: Durability::Forced,
                timestamped: true,
                seqno: None,
            },
        )?;
        Ok(())
    }

    /// Phase 2: apply to the conventional file system (creating files and
    /// their parent directories on first write). Idempotent: redo after a
    /// crash rewrites the same bytes.
    fn apply(&self, txn: &Txn) -> Result<()> {
        for (path, offset, data) in &txn.writes {
            let ino = match self.fs.lookup(path) {
                Ok(ino) => ino,
                Err(ClioError::NotFound(_)) => self.create_with_parents(path)?,
                Err(e) => return Err(e),
            };
            self.fs.write_at(ino, *offset, data)?;
        }
        Ok(())
    }

    /// `mkdir -p` for the file's ancestors, then create the file.
    fn create_with_parents(&self, path: &str) -> Result<u64> {
        let trimmed = path.strip_prefix('/').unwrap_or(path);
        let comps: Vec<&str> = trimmed.split('/').collect();
        let mut prefix = String::new();
        for dir in &comps[..comps.len().saturating_sub(1)] {
            prefix.push('/');
            prefix.push_str(dir);
            match self.fs.lookup(&prefix) {
                Ok(_) => {}
                Err(ClioError::NotFound(_)) => {
                    self.fs.mkdir(&prefix)?;
                }
                Err(e) => return Err(e),
            }
        }
        self.fs.create(path)
    }

    /// Phase 3: note completion (buffered is fine — losing it only costs
    /// an idempotent redo).
    fn mark_applied(&self, txn: u64) -> Result<()> {
        let rec = TxnRecord::Applied { txn };
        self.svc
            .append_path(&self.log_path, &rec.encode(), AppendOpts::standard())?;
        Ok(())
    }

    /// Replays the intentions log: redoes committed transactions that have
    /// no APPLIED record and restores the transaction-id counter.
    fn recover(&self) -> Result<()> {
        let mut staged: BTreeMap<u64, Vec<(String, u64, Vec<u8>)>> = BTreeMap::new();
        let mut to_redo: Vec<Txn> = Vec::new();
        let mut applied: Vec<u64> = Vec::new();
        let mut max_id = None::<u64>;
        let mut cur = self.svc.cursor(&self.log_path)?;
        while let Some(e) = cur.next()? {
            match TxnRecord::decode(&e.data)? {
                TxnRecord::Write {
                    txn,
                    path,
                    offset,
                    data,
                } => {
                    max_id = Some(max_id.map_or(txn, |m| m.max(txn)));
                    staged.entry(txn).or_default().push((path, offset, data));
                }
                TxnRecord::Commit { txn } => {
                    max_id = Some(max_id.map_or(txn, |m| m.max(txn)));
                    to_redo.push(Txn {
                        id: txn,
                        writes: staged.remove(&txn).unwrap_or_default(),
                    });
                }
                TxnRecord::Applied { txn } => applied.push(txn),
            }
        }
        for txn in to_redo {
            if applied.contains(&txn.id) {
                continue;
            }
            self.apply(&txn)?;
            self.mark_applied(txn.id)?;
        }
        *self.next_txn.lock() = max_id.map_or(0, |m| m + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use clio_core::ServiceConfig;
    use clio_device::MemBlockStore;
    use clio_types::{ManualClock, Timestamp, VolumeSeqId};
    use clio_volume::MemDevicePool;

    use super::*;

    fn service() -> Arc<LogService> {
        Arc::new(
            LogService::create(
                VolumeSeqId(8),
                Arc::new(MemDevicePool::new(512, 4096)),
                ServiceConfig {
                    block_size: 512,
                    fanout: 4,
                    cache_blocks: 128,
                    ..ServiceConfig::default()
                },
                Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
            )
            .unwrap(),
        )
    }

    fn fs(store: &Arc<MemBlockStore>) -> FileSystem<Arc<MemBlockStore>> {
        FileSystem::mkfs(store.clone(), 32).unwrap()
    }

    fn read(af: &AtomicFiles<Arc<MemBlockStore>>, path: &str) -> Vec<u8> {
        let ino = af.fs().lookup(path).unwrap();
        let size = af.fs().stat(ino).unwrap().size;
        let mut buf = vec![0u8; size as usize];
        af.fs().read_at(ino, 0, &mut buf).unwrap();
        buf
    }

    #[test]
    fn committed_transactions_apply_atomically() {
        let store = Arc::new(MemBlockStore::new(512, 512));
        let af = AtomicFiles::attach(service(), fs(&store), "/atomic").unwrap();
        let mut t = af.begin();
        t.write("/accounts/alice", 0, b"100");
        t.write("/accounts/bob", 0, b"200");
        af.commit(t).unwrap();
        assert_eq!(read(&af, "/accounts/alice"), b"100");
        assert_eq!(read(&af, "/accounts/bob"), b"200");
    }

    #[test]
    fn uncommitted_transactions_vanish_at_recovery() {
        let svc = service();
        let store = Arc::new(MemBlockStore::new(512, 512));
        {
            let af = AtomicFiles::attach(svc.clone(), fs(&store), "/atomic").unwrap();
            let mut t = af.begin();
            t.write("/x", 0, b"committed");
            af.commit(t).unwrap();
            // A second transaction logs intentions but crashes before the
            // COMMIT record.
            let mut t2 = af.begin();
            t2.write("/x", 0, b"uncommitted");
            for (path, offset, data) in &t2.writes {
                let rec = TxnRecord::Write {
                    txn: t2.id,
                    path: path.clone(),
                    offset: *offset,
                    data: data.clone(),
                };
                svc.append_path("/atomic", &rec.encode(), AppendOpts::forced())
                    .unwrap();
            }
            // Crash here: no Commit record.
        }
        let refs = FileSystem::mount(store.clone()).unwrap();
        let af = AtomicFiles::attach(svc, refs, "/atomic").unwrap();
        assert_eq!(read(&af, "/x"), b"committed");
    }

    #[test]
    fn committed_but_unapplied_transactions_are_redone() {
        let svc = service();
        let store = Arc::new(MemBlockStore::new(512, 512));
        {
            let af = AtomicFiles::attach(svc.clone(), fs(&store), "/atomic").unwrap();
            // Log intentions + COMMIT, then crash before apply.
            let mut t = af.begin();
            t.write("/ledger", 0, b"it happened");
            af.log_intentions(&t).unwrap();
            // Crash: apply() never ran, file does not exist.
            assert!(af.fs().lookup("/ledger").is_err());
        }
        let remount = FileSystem::mount(store.clone()).unwrap();
        let af = AtomicFiles::attach(svc, remount, "/atomic").unwrap();
        assert_eq!(read(&af, "/ledger"), b"it happened");
    }

    #[test]
    fn crash_between_apply_and_applied_record_is_idempotent() {
        let svc = service();
        let store = Arc::new(MemBlockStore::new(512, 512));
        {
            let af = AtomicFiles::attach(svc.clone(), fs(&store), "/atomic").unwrap();
            let mut t = af.begin();
            t.write("/f", 0, b"final value");
            af.log_intentions(&t).unwrap();
            af.apply(&t).unwrap();
            // Crash before mark_applied.
        }
        let remount = FileSystem::mount(store.clone()).unwrap();
        let af = AtomicFiles::attach(svc, remount, "/atomic").unwrap();
        // Redo happened (harmlessly); the value is intact exactly once.
        assert_eq!(read(&af, "/f"), b"final value");
    }

    #[test]
    fn txn_ids_survive_recovery() {
        let svc = service();
        let store = Arc::new(MemBlockStore::new(512, 512));
        let first_ids: Vec<u64>;
        {
            let af = AtomicFiles::attach(svc.clone(), fs(&store), "/atomic").unwrap();
            let mut a = af.begin();
            a.write("/a", 0, b"1");
            let mut b = af.begin();
            b.write("/b", 0, b"2");
            first_ids = vec![a.id(), b.id()];
            af.commit(a).unwrap();
            af.commit(b).unwrap();
        }
        let remount = FileSystem::mount(store.clone()).unwrap();
        let af = AtomicFiles::attach(svc, remount, "/atomic").unwrap();
        let c = af.begin();
        assert!(c.id() > *first_ids.iter().max().unwrap());
    }

    #[test]
    fn record_round_trip() {
        for rec in [
            TxnRecord::Write {
                txn: 7,
                path: "/a/b".into(),
                offset: 1234,
                data: b"xyz".to_vec(),
            },
            TxnRecord::Commit { txn: 7 },
            TxnRecord::Applied { txn: 9 },
        ] {
            assert_eq!(TxnRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(TxnRecord::decode(&[]).is_err());
        assert!(TxnRecord::decode(&[9, 0]).is_err());
    }
}
