//! The history-based mail system (§4.2).
//!
//! "Associated with each mailbox is a log file corresponding to mail
//! messages that have been delivered to this mailbox. The local mail agent
//! maintains pointers into this 'mail history'. In addition, it caches
//! copies of mail messages from the history, for efficiency. In this way, a
//! user's mail messages are permanently accessible, and the storage of the
//! mail messages themselves is decoupled from the mail system's directory
//! management and query facilities."

use std::collections::HashMap;
use std::sync::Arc;

use clio_testkit::sync::Mutex;

use clio_core::service::{AppendOpts, Durability, LogService};
use clio_types::{ClioError, EntryAddr, Result, Timestamp};

/// A delivered message as stored in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Subject line.
    pub subject: String,
    /// Message body.
    pub body: Vec<u8>,
}

impl Message {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.subject.len() as u16).to_le_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    fn decode(data: &[u8]) -> Result<Message> {
        if data.len() < 2 {
            return Err(ClioError::BadRecord("short message"));
        }
        let slen = u16::from_le_bytes([data[0], data[1]]) as usize;
        if data.len() < 2 + slen {
            return Err(ClioError::BadRecord("truncated subject"));
        }
        Ok(Message {
            subject: std::str::from_utf8(&data[2..2 + slen])
                .map_err(|_| ClioError::BadRecord("subject not utf-8"))?
                .to_owned(),
            body: data[2 + slen..].to_vec(),
        })
    }
}

/// The cached per-mailbox index: "pointers into this mail history".
#[derive(Debug, Clone, Default)]
struct BoxIndex {
    /// (delivery time, subject, entry address) per message.
    messages: Vec<(Timestamp, String, EntryAddr)>,
}

/// The mail system.
pub struct MailSystem {
    svc: Arc<LogService>,
    root: String,
    index: Mutex<HashMap<String, BoxIndex>>,
}

impl MailSystem {
    /// Creates (or re-attaches to) the mail system rooted at `root`
    /// (e.g. `/mail`), rebuilding the index cache from the histories.
    pub fn attach(svc: Arc<LogService>, root: &str) -> Result<MailSystem> {
        if svc.resolve(root).is_err() {
            svc.create_log(root)?;
        }
        let m = MailSystem {
            svc,
            root: root.to_owned(),
            index: Mutex::new(HashMap::new()),
        };
        m.rebuild_index()?;
        Ok(m)
    }

    fn box_path(&self, user: &str) -> String {
        format!("{}/{}", self.root, user)
    }

    /// Rebuilds the cached index by replaying the mailbox histories.
    pub fn rebuild_index(&self) -> Result<()> {
        let mut index = HashMap::new();
        for user in self.svc.list(&self.root)? {
            let mut bi = BoxIndex::default();
            let mut cur = self.svc.cursor(&self.box_path(&user))?;
            while let Some(e) = cur.next()? {
                let msg = Message::decode(&e.data)?;
                bi.messages.push((e.effective_ts(), msg.subject, e.addr));
            }
            index.insert(user, bi);
        }
        *self.index.lock() = index;
        Ok(())
    }

    /// Creates a mailbox.
    pub fn create_mailbox(&self, user: &str) -> Result<()> {
        self.svc.create_log(&self.box_path(user))?;
        self.index
            .lock()
            .insert(user.to_owned(), BoxIndex::default());
        Ok(())
    }

    /// Delivers a message (forced: mail must not be lost to a crash).
    pub fn deliver(&self, user: &str, subject: &str, body: &[u8]) -> Result<Timestamp> {
        let msg = Message {
            subject: subject.to_owned(),
            body: body.to_vec(),
        };
        let r = self.svc.append_path(
            &self.box_path(user),
            &msg.encode(),
            AppendOpts {
                durability: Durability::Forced,
                timestamped: true,
                seqno: None,
            },
        )?;
        self.index
            .lock()
            .get_mut(user)
            .ok_or_else(|| ClioError::NoSuchLogFile(user.to_owned()))?
            .messages
            .push((r.timestamp, subject.to_owned(), r.addr));
        Ok(r.timestamp)
    }

    /// Lists `(delivery time, subject)` for a mailbox, newest last.
    pub fn list(&self, user: &str) -> Result<Vec<(Timestamp, String)>> {
        Ok(self
            .index
            .lock()
            .get(user)
            .ok_or_else(|| ClioError::NoSuchLogFile(user.to_owned()))?
            .messages
            .iter()
            .map(|(ts, s, _)| (*ts, s.clone()))
            .collect())
    }

    /// Reads message `index` (0-based, delivery order) from the history.
    pub fn read(&self, user: &str, index: usize) -> Result<Message> {
        let addr = {
            let g = self.index.lock();
            let bi = g
                .get(user)
                .ok_or_else(|| ClioError::NoSuchLogFile(user.to_owned()))?;
            bi.messages
                .get(index)
                .map(|(_, _, a)| *a)
                .ok_or_else(|| ClioError::NotFound(format!("message {index} of {user}")))?
        };
        let e = self.svc.read_entry(addr)?;
        Message::decode(&e.data)
    }

    /// Messages delivered to `user` since `ts` (a query straight off the
    /// history, no index needed).
    pub fn since(&self, user: &str, ts: Timestamp) -> Result<Vec<Message>> {
        let mut cur = self.svc.cursor_from_time(&self.box_path(user), ts)?;
        let mut out = Vec::new();
        while let Some(e) = cur.next()? {
            out.push(Message::decode(&e.data)?);
        }
        Ok(out)
    }

    /// All mailbox names.
    pub fn mailboxes(&self) -> Result<Vec<String>> {
        self.svc.list(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use clio_core::ServiceConfig;
    use clio_types::{ManualClock, VolumeSeqId};
    use clio_volume::MemDevicePool;

    use super::*;

    fn service() -> Arc<LogService> {
        Arc::new(
            LogService::create(
                VolumeSeqId(2),
                Arc::new(MemDevicePool::new(512, 4096)),
                ServiceConfig {
                    block_size: 512,
                    fanout: 4,
                    cache_blocks: 128,
                    ..ServiceConfig::default()
                },
                Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
            )
            .unwrap(),
        )
    }

    #[test]
    fn deliver_list_read() {
        let mail = MailSystem::attach(service(), "/mail").unwrap();
        mail.create_mailbox("smith").unwrap();
        mail.create_mailbox("jones").unwrap();
        mail.deliver("smith", "hi", b"hello smith").unwrap();
        mail.deliver("jones", "psst", b"hello jones").unwrap();
        mail.deliver("smith", "again", b"second message").unwrap();

        let listing = mail.list("smith").unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0].1, "hi");
        assert_eq!(listing[1].1, "again");
        assert_eq!(mail.read("smith", 1).unwrap().body, b"second message");
        assert_eq!(mail.list("jones").unwrap().len(), 1);
        assert!(mail.read("smith", 5).is_err());
        assert!(mail.deliver("nobody", "x", b"y").is_err());
    }

    #[test]
    fn since_query_uses_time() {
        let mail = MailSystem::attach(service(), "/mail").unwrap();
        mail.create_mailbox("u").unwrap();
        mail.deliver("u", "old", b"1").unwrap();
        let t = mail.deliver("u", "mid", b"2").unwrap();
        mail.deliver("u", "new", b"3").unwrap();
        let recent = mail.since("u", t).unwrap();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].subject, "mid");
        assert_eq!(recent[1].subject, "new");
    }

    #[test]
    fn index_rebuild_after_restart() {
        let svc = service();
        {
            let mail = MailSystem::attach(svc.clone(), "/mail").unwrap();
            mail.create_mailbox("smith").unwrap();
            mail.deliver("smith", "one", b"body one").unwrap();
            mail.deliver("smith", "two", b"body two").unwrap();
        }
        // The agent restarts: only the log survives; the index is rebuilt.
        let mail = MailSystem::attach(svc, "/mail").unwrap();
        assert_eq!(mail.mailboxes().unwrap(), vec!["smith"]);
        let listing = mail.list("smith").unwrap();
        assert_eq!(listing.len(), 2);
        assert_eq!(mail.read("smith", 0).unwrap().body, b"body one");
    }
}
