#![warn(missing_docs)]
//! History-based applications (§4).
//!
//! "A history-based application … uses an underlying (append-only) logging
//! service for permanent storage, recording its entire persistent state in
//! one or more log files. The application's current state is an (at least
//! partially) cached summary of the contents of these log files. This state
//! can be completely reconstructed from the log files, if necessary."
//!
//! Two applications the paper sketches are built here:
//!
//! - [`hbfs`]: a history-based *file server* (§4.1) — each file's history
//!   of updates lives in a log file; the current contents are a RAM cache;
//!   any earlier version can be extracted by replaying to a point in time.
//! - [`mail`]: a history-based *mail system* (§4.2) — each mailbox is a
//!   sublog of `/mail`; delivered messages are permanently accessible and
//!   the directory/query state is cached, reconstructible, and free to
//!   evolve without touching old mail.
//! - [`atomic`]: atomic update of *regular* files using log files for
//!   recovery — the extension the paper announces as planned work (§6).

pub mod atomic;
pub mod hbfs;
pub mod mail;

pub use atomic::AtomicFiles;
pub use hbfs::HistoryFs;
pub use mail::MailSystem;
