//! The `clio-lint` binary: lints the whole workspace and exits non-zero
//! on any violation. See the library docs for the rule catalogue.
//!
//! ```text
//! clio-lint [--root DIR] [--update-ratchet]
//! ```
//!
//! `--root` defaults to the current directory (CI runs it from the
//! workspace root). `--update-ratchet` rewrites `lint/ratchet.toml` from
//! the measured unwrap/expect counts instead of comparing against it —
//! use it after burning down unwraps, then commit the lowered baseline.

use std::path::PathBuf;
use std::process::ExitCode;

use clio_lint::rules::{atomics_ratchet, unwrap_ratchet};
use clio_lint::{check_workspace, load_workspace, ratchet, Diag};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update_ratchet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("clio-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--update-ratchet" => update_ratchet = true,
            "--help" | "-h" => {
                println!("usage: clio-lint [--root DIR] [--update-ratchet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("clio-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "clio-lint: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let report = check_workspace(&ws);
    let mut diags = report.diags;

    let ratchet_path = root.join(unwrap_ratchet::RATCHET_REL);
    if update_ratchet {
        let text = ratchet::render(&report.atomic_counts, &report.unwrap_counts);
        if let Some(dir) = ratchet_path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("clio-lint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&ratchet_path, text) {
            eprintln!("clio-lint: cannot write {}: {e}", ratchet_path.display());
            return ExitCode::from(2);
        }
        let unwraps: u64 = report.unwrap_counts.values().sum();
        let atomics: u64 = report.atomic_counts.values().sum();
        eprintln!(
            "clio-lint: wrote {} ({} crates, {unwraps} ratcheted unwraps, \
             {atomics} raw atomic uses)",
            ratchet_path.display(),
            report.unwrap_counts.len()
        );
    } else {
        match std::fs::read_to_string(&ratchet_path) {
            Ok(text) => {
                unwrap_ratchet::compare(&report.unwrap_counts, &text, &mut diags);
                atomics_ratchet::compare(&report.atomic_counts, &text, &mut diags);
            }
            Err(_) => diags.push(Diag {
                rel: unwrap_ratchet::RATCHET_REL.to_string(),
                line: 0,
                rule: unwrap_ratchet::NAME,
                msg: "baseline file missing — run clio-lint --update-ratchet and commit it"
                    .to_string(),
            }),
        }
    }

    diags.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "clio-lint: clean ({} Rust files, {} manifests)",
            report.rust_files,
            ws.tomls.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("clio-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
