#![warn(missing_docs)]
//! `clio-lint`: the workspace's in-tree static analysis tool.
//!
//! The workspace has policies that `rustc` cannot enforce — hermetic
//! std-only builds, lockdep-instrumented locking, deterministic time, the
//! WORM write surface, and a ratchet on `unwrap()` in library code. CI
//! used to police the first of these with a `grep` that could not tell a
//! dependency from a comment; this crate replaces it with named,
//! individually-testable rules over a real token stream (see
//! [`lexer`]). Rules:
//!
//! - `no-registry-deps` — retired registry crates (`parking_lot`,
//!   `crossbeam*`, `proptest`, `criterion`, `rand`) must not reappear in
//!   code or manifests; the in-tree `clio-testkit` replaces them.
//! - `no-raw-std-locks` — `std::sync::{Mutex, RwLock, Condvar}` are
//!   forbidden outside `crates/testkit`: everything else uses
//!   `clio_testkit::sync`, which is poison-transparent and feeds the
//!   lockdep lock-order validator.
//! - `no-wallclock` — `Instant::now()` / `SystemTime::now()` only in the
//!   approved timing modules; product code uses `clio_obs::clock::now()`
//!   (observability) or `clio_types::time::Clock` (semantic time).
//! - `worm-writes` — inside `crates/device`, raw file primitives
//!   (`OpenOptions`, seeks, `set_len`, …) are confined to `store.rs`,
//!   the audited write surface of the write-once storage model.
//! - `unwrap-ratchet` — per-crate counts of `.unwrap()` and undocumented
//!   `.expect(...)` in library code, compared against the committed
//!   baseline in `lint/ratchet.toml`, which may only go down.
//! - `raw-atomics-ratchet` — per-crate counts of direct
//!   `std::sync::atomic` use outside `crates/testkit`, ratcheted the
//!   same way: new code uses `clio_testkit::sync::atomic`, whose
//!   ordering annotations the concurrency model checker validates.
//!
//! The binary lints the whole workspace: every `crates/*` member plus the
//! root package's `src/`, `tests/` and `examples/`, and all `Cargo.toml`
//! manifests. Directories named `fixtures` are skipped so each rule's
//! deliberately-bad test fixtures don't fail the tree.

pub mod lexer;
pub mod ratchet;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use lexer::{Kind, Tok};

/// One lint finding, printable as `path:line: [rule] message`.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// 1-based line, or 0 when the finding is file-level.
    pub line: u32,
    /// The rule name, e.g. `no-registry-deps`.
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub msg: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

/// A lexed source file plus its `#[cfg(test)]` region mask.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The token stream (comments and whitespace already gone).
    pub toks: Vec<Tok>,
    /// `in_test[i]` is true when token `i` sits inside a
    /// `#[cfg(test)]`-gated item (typically an inline `mod tests`).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` and computes the test-region mask. `rel` need not
    /// exist on disk — rule self-tests feed fixtures through here with
    /// synthetic paths.
    pub fn parse(rel: impl Into<String>, src: &str) -> SourceFile {
        let toks = lexer::lex(src);
        let in_test = mark_test_regions(&toks);
        SourceFile {
            rel: rel.into(),
            toks,
            in_test,
        }
    }

    pub(crate) fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
    }
}

fn is_punct(toks: &[Tok], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the opening delimiter), or `None` if unbalanced.
pub(crate) fn matching(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < toks.len() {
        if is_punct(toks, i, open_s) {
            depth += 1;
        } else if is_punct(toks, i, close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Index of the last token of the item starting at `start` (after its
/// attributes): either the `;` ending a declaration or the `}` closing
/// the first top-level brace body.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < toks.len() {
        if is_punct(toks, i, "(") || is_punct(toks, i, "[") {
            depth += 1;
        } else if is_punct(toks, i, ")") || is_punct(toks, i, "]") {
            depth = depth.saturating_sub(1);
        } else if is_punct(toks, i, "{") && depth == 0 {
            return matching(toks, i, "{", "}").unwrap_or(toks.len() - 1);
        } else if is_punct(toks, i, ";") && depth == 0 {
            return i;
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
///
/// This is token-level, not syntactic: an attribute whose tokens include
/// both `cfg` and `test` (and not `not`, so `#[cfg(not(test))]` stays
/// live code) gates the item that follows, which extends to the matching
/// `}` of its first top-level brace or to a top-level `;`.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(is_punct(toks, i, "#") && is_punct(toks, i + 1, "[")) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching(toks, i + 1, "[", "]") else {
            break;
        };
        let has = |name: &str| {
            toks[i..=attr_end]
                .iter()
                .any(|t| t.kind == Kind::Ident && t.text == name)
        };
        if !(has("cfg") && has("test") && !has("not")) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while is_punct(toks, j, "#") && is_punct(toks, j + 1, "[") {
            match matching(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let end = item_end(toks, j);
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// The lintable content of the workspace.
pub struct Workspace {
    /// Every Rust source under the scanned roots, sorted by path.
    pub rust: Vec<SourceFile>,
    /// Every `Cargo.toml` as `(rel, content)`, sorted by path.
    pub tomls: Vec<(String, String)>,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".claude"];

/// Top-level entries that are scanned (everything else at the root —
/// docs, scripts, lint state — holds no lintable code).
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Loads every Rust file and manifest under `root`.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace {
        rust: Vec::new(),
        tomls: Vec::new(),
    };
    if root.join("Cargo.toml").is_file() {
        ws.tomls.push((
            "Cargo.toml".to_string(),
            fs::read_to_string(root.join("Cargo.toml"))?,
        ));
    }
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut ws)?;
        }
    }
    ws.rust.sort_by(|a, b| a.rel.cmp(&b.rel));
    ws.tomls.sort();
    Ok(ws)
}

fn walk(root: &Path, dir: &Path, ws: &mut Workspace) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(root, &path, ws)?;
            }
        } else if ty.is_file() {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if name == "Cargo.toml" {
                ws.tomls.push((rel, fs::read_to_string(&path)?));
            } else if name.ends_with(".rs") {
                let src = fs::read_to_string(&path)?;
                ws.rust.push(SourceFile::parse(rel, &src));
            }
        }
    }
    Ok(())
}

/// The result of checking a [`Workspace`].
pub struct Report {
    /// All findings from the path/token rules (the ratchet comparison is
    /// separate — see [`rules::unwrap_ratchet::compare`]).
    pub diags: Vec<Diag>,
    /// Number of Rust files checked.
    pub rust_files: usize,
    /// Per-crate library-code unwrap/expect counts for the ratchet.
    pub unwrap_counts: BTreeMap<String, u64>,
    /// Per-crate raw `std::sync::atomic` use counts for the ratchet.
    pub atomic_counts: BTreeMap<String, u64>,
}

/// Runs every rule over the workspace.
#[must_use]
pub fn check_workspace(ws: &Workspace) -> Report {
    let mut diags = Vec::new();
    let mut unwrap_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut atomic_counts: BTreeMap<String, u64> = BTreeMap::new();
    for sf in &ws.rust {
        rules::check_source(sf, &mut diags);
        if let Some(key) = rules::unwrap_ratchet::crate_key(&sf.rel) {
            *unwrap_counts.entry(key).or_insert(0) += rules::unwrap_ratchet::count_file(sf);
        }
        if let Some(key) = rules::atomics_ratchet::crate_key(&sf.rel) {
            *atomic_counts.entry(key).or_insert(0) += rules::atomics_ratchet::count_file(sf);
        }
    }
    for (rel, content) in &ws.tomls {
        rules::registry_deps::check_toml(rel, content, &mut diags);
    }
    diags.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    Report {
        diags,
        rust_files: ws.rust.len(),
        unwrap_counts,
        atomic_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_inline_mod_tests() {
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { inner(); }\n}\nfn after() {}",
        );
        let live: Vec<&str> = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .filter(|&(t, &m)| !m && t.kind == Kind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(live.contains(&"live"));
        assert!(live.contains(&"after"));
        assert!(!live.contains(&"inner"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[cfg(not(test))]\nfn shipped() { body(); }",
        );
        assert!(sf.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn attribute_stacks_and_semicolon_items_are_masked() {
        let sf = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\n#[allow(dead_code)]\nuse std::sync::Mutex;\nfn live() {}",
        );
        let masked: Vec<&str> = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .filter(|&(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"Mutex"));
        let live: Vec<&str> = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .filter(|&(t, &m)| !m && t.kind == Kind::Ident)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert_eq!(live, vec!["fn", "live"]);
    }
}
