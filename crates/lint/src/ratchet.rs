//! The ratchet baseline file, `lint/ratchet.toml`.
//!
//! A deliberately tiny TOML subset — comments, a fixed set of named
//! sections (`[raw_atomics]`, `[unwrap]`), `key = integer` pairs —
//! parsed in-tree because the workspace takes no registry dependencies.
//! [`render`] regenerates the file in canonical form so
//! `--update-ratchet` output is always diff-stable.
//!
//! Both ratchet rules share [`compare`]: measured per-crate counts are
//! checked against one section, and any drift — regression, unlocked
//! improvement, missing crate, stale entry — is a diagnostic.

use std::collections::BTreeMap;

use crate::Diag;

/// The sections a baseline file may contain, in file order.
pub const SECTIONS: &[&str] = &["raw_atomics", "unwrap"];

/// Per-crate entries of one section: `key -> (count, line)` (the line is
/// kept so ratchet diagnostics point at the entry to edit).
pub type Section = BTreeMap<String, (u64, u32)>;

/// Parses a baseline file into its sections.
pub fn parse(content: &str) -> Result<BTreeMap<String, Section>, String> {
    let mut out: BTreeMap<String, Section> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (n, raw) in content.lines().enumerate() {
        let lineno = u32::try_from(n + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let section = section.trim();
            if !SECTIONS.contains(&section) {
                return Err(format!("line {lineno}: unknown section [{section}]"));
            }
            if out.contains_key(section) {
                return Err(format!("line {lineno}: duplicate section [{section}]"));
            }
            out.insert(section.to_string(), Section::new());
            current = Some(section.to_string());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = count`, got `{line}`"
            ));
        };
        let Some(section) = &current else {
            return Err(format!("line {lineno}: entry outside any section"));
        };
        let key = key.trim().to_string();
        let count: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: `{}` is not a count", value.trim()))?;
        let entries = out
            .get_mut(section)
            .expect("invariant: current section was inserted");
        if entries.insert(key.clone(), (count, lineno)).is_some() {
            return Err(format!("line {lineno}: duplicate entry `{key}`"));
        }
    }
    Ok(out)
}

/// Renders measured counts as a canonical baseline file.
#[must_use]
pub fn render(raw_atomics: &BTreeMap<String, u64>, unwrap: &BTreeMap<String, u64>) -> String {
    let mut s = String::from(
        "# clio-lint ratchet baselines: per-crate counts that may only go\n\
         # down. After an improvement, regenerate with:\n\
         #\n\
         #     cargo run --release --offline -p clio-lint -- --update-ratchet\n\
         #\n\
         # [raw_atomics]: direct `std::sync::atomic` uses in library code\n\
         # outside crates/testkit. New code uses clio_testkit::sync::atomic,\n\
         # whose declared orderings the model checker validates.\n\
         # [unwrap]: `.unwrap()` and undocumented `.expect(...)` in library\n\
         # code (crates/*/src and the root src/); `expect(\"invariant: ...\")`\n\
         # is exempt.\n",
    );
    for (name, counts) in [("raw_atomics", raw_atomics), ("unwrap", unwrap)] {
        s.push_str(&format!("\n[{name}]\n"));
        for (key, count) in counts {
            s.push_str(&format!("{key} = {count}\n"));
        }
    }
    s
}

/// How one ratchet rule names itself in diagnostics; see [`compare`].
pub struct RuleSpec {
    /// Diagnostic rule name, e.g. `unwrap-ratchet`.
    pub rule: &'static str,
    /// Baseline section the rule compares against.
    pub section: &'static str,
    /// What the count measures, for the regression message.
    pub what: &'static str,
    /// How to fix a regression, for the regression message.
    pub fix: &'static str,
}

/// Compares measured per-crate counts against one section of the
/// baseline file, emitting a diagnostic for every regression,
/// improvement (the baseline must then be lowered), missing crate, or
/// stale entry.
pub fn compare(
    spec: &RuleSpec,
    counts: &BTreeMap<String, u64>,
    baseline_text: &str,
    out: &mut Vec<Diag>,
) {
    let diag = |line: u32, msg: String| Diag {
        rel: crate::rules::unwrap_ratchet::RATCHET_REL.to_string(),
        line,
        rule: spec.rule,
        msg,
    };
    let sections = match parse(baseline_text) {
        Ok(s) => s,
        Err(e) => {
            out.push(diag(0, format!("malformed baseline: {e}")));
            return;
        }
    };
    let empty = Section::new();
    let baseline = sections.get(spec.section).unwrap_or(&empty);
    for (key, &count) in counts {
        match baseline.get(key) {
            None => out.push(diag(
                0,
                format!(
                    "crate `{key}` has no [{}] baseline entry — run --update-ratchet",
                    spec.section
                ),
            )),
            Some(&(base, line)) if count > base => out.push(diag(
                line,
                format!(
                    "{} for `{key}` regressed: {base} -> {count} \
                     (the ratchet only goes down; {})",
                    spec.what, spec.fix
                ),
            )),
            Some(&(base, line)) if count < base => out.push(diag(
                line,
                format!(
                    "`{key}` improved to {count} (baseline {base}) — lock it in with \
                     --update-ratchet"
                ),
            )),
            Some(_) => {}
        }
    }
    for (key, &(_, line)) in baseline {
        if !counts.contains_key(key) {
            out.push(diag(
                line,
                format!("stale baseline entry `{key}` (no such crate) — run --update-ratchet"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_form() {
        let mut unwrap = BTreeMap::new();
        unwrap.insert("core".to_string(), 7u64);
        unwrap.insert("device".to_string(), 0u64);
        let mut atomics = BTreeMap::new();
        atomics.insert("device".to_string(), 12u64);
        let text = render(&atomics, &unwrap);
        let parsed = parse(&text).expect("canonical form parses");
        assert_eq!(parsed["unwrap"].len(), 2);
        assert_eq!(parsed["unwrap"]["core"].0, 7);
        assert_eq!(parsed["unwrap"]["device"].0, 0);
        assert_eq!(parsed["raw_atomics"]["device"].0, 12);
    }

    #[test]
    fn rejects_junk() {
        assert!(parse("[other]\n").is_err());
        assert!(parse("core = 1\n").is_err(), "entry before section");
        assert!(parse("[unwrap]\ncore = x\n").is_err());
        assert!(parse("[unwrap]\ncore = 1\ncore = 2\n").is_err());
        assert!(parse("[unwrap]\n[unwrap]\n").is_err(), "duplicate section");
    }

    #[test]
    fn missing_section_reads_as_empty() {
        let parsed = parse("[unwrap]\ncore = 1\n").expect("single section parses");
        assert!(!parsed.contains_key("raw_atomics"));
    }
}
