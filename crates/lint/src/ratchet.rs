//! The ratchet baseline file, `lint/ratchet.toml`.
//!
//! A deliberately tiny TOML subset — comments, one `[unwrap]` table,
//! `key = integer` pairs — parsed in-tree because the workspace takes no
//! registry dependencies. [`render`] regenerates the file in canonical
//! form so `--update-ratchet` output is always diff-stable.

use std::collections::BTreeMap;

/// Parses a baseline file into `key -> (count, line)` (the line is kept
/// so ratchet diagnostics point at the entry to edit).
pub fn parse(content: &str) -> Result<BTreeMap<String, (u64, u32)>, String> {
    let mut out = BTreeMap::new();
    let mut in_unwrap = false;
    for (n, raw) in content.lines().enumerate() {
        let lineno = u32::try_from(n + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            if section.trim() != "unwrap" {
                return Err(format!("line {lineno}: unknown section [{section}]"));
            }
            in_unwrap = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = count`, got `{line}`"
            ));
        };
        if !in_unwrap {
            return Err(format!("line {lineno}: entry outside the [unwrap] section"));
        }
        let key = key.trim().to_string();
        let count: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: `{}` is not a count", value.trim()))?;
        if out.insert(key.clone(), (count, lineno)).is_some() {
            return Err(format!("line {lineno}: duplicate entry `{key}`"));
        }
    }
    Ok(out)
}

/// Renders measured counts as a canonical baseline file.
#[must_use]
pub fn render(counts: &BTreeMap<String, u64>) -> String {
    let mut s = String::from(
        "# unwrap-ratchet baseline (see clio-lint). Per-crate counts of\n\
         # `.unwrap()` and undocumented `.expect(...)` in library code\n\
         # (crates/*/src and the root src/). `expect(\"invariant: ...\")`\n\
         # is exempt. These numbers may only go down; after an\n\
         # improvement, regenerate with:\n\
         #\n\
         #     cargo run --release --offline -p clio-lint -- --update-ratchet\n\
         \n\
         [unwrap]\n",
    );
    for (key, count) in counts {
        s.push_str(&format!("{key} = {count}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_form() {
        let mut counts = BTreeMap::new();
        counts.insert("core".to_string(), 7u64);
        counts.insert("device".to_string(), 0u64);
        let text = render(&counts);
        let parsed = parse(&text).expect("canonical form parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["core"].0, 7);
        assert_eq!(parsed["device"].0, 0);
    }

    #[test]
    fn rejects_junk() {
        assert!(parse("[other]\n").is_err());
        assert!(parse("core = 1\n").is_err(), "entry before section");
        assert!(parse("[unwrap]\ncore = x\n").is_err());
        assert!(parse("[unwrap]\ncore = 1\ncore = 2\n").is_err());
    }
}
