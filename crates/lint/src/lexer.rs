//! A minimal Rust lexer: just enough to tell code from comments and
//! string literals, which is exactly what the retired `grep`-based CI
//! check could not do.
//!
//! Handles line comments, nested block comments, cooked strings with
//! escapes, raw/byte/C strings (`r".."`, `r#".."#`, `b".."`, `br#".."#`,
//! `c".."`), char literals vs. lifetimes, identifiers (including
//! `r#raw_idents`), numbers, and punctuation (`::` is merged into a
//! single token because every rule matches on paths). It does not build
//! a syntax tree and does not need to: the rules are token-sequence
//! matchers.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any flavor; `text` holds the *contents* (no
    /// quotes, no prefix), so rules can inspect e.g. `expect(...)`
    /// messages.
    Str,
    /// Character literal; `text` holds the contents.
    Char,
    /// Lifetime such as `'a` (without the quote).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Punctuation; single character except for the merged `::`.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token text (see [`Kind`] for what it holds per kind).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whether `ident` is a string-literal prefix when directly followed by
/// a quote (or `#`s then a quote for the raw flavors).
fn is_str_prefix(ident: &str) -> bool {
    matches!(ident, "r" | "b" | "br" | "rb" | "c" | "cr")
}

/// Lexes `src` into tokens, skipping comments and whitespace.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let line = self.line;
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.skip_line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.skip_block_comment(),
                b'"' => {
                    let s = self.cooked_string();
                    self.push(Kind::Str, s, line);
                }
                b'\'' => self.char_or_lifetime(line),
                _ if is_ident_start(c) => self.ident_or_prefixed_string(line),
                _ if c.is_ascii_digit() => {
                    let s = self.number();
                    self.push(Kind::Num, s, line);
                }
                b':' if self.peek(1) == Some(b':') => {
                    self.i += 2;
                    self.push(Kind::Punct, "::".to_string(), line);
                }
                _ => {
                    // Multi-byte UTF-8 punctuation is impossible in the
                    // positions our rules care about; emit byte-wise.
                    let ch = self.src[self.i..]
                        .chars()
                        .next()
                        .unwrap_or(char::from(self.b[self.i]));
                    self.i += ch.len_utf8();
                    self.push(Kind::Punct, ch.to_string(), line);
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn bump_line_on(&mut self, c: u8) {
        if c == b'\n' {
            self.line += 1;
        }
    }

    fn skip_line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.bump_line_on(self.b[self.i]);
                self.i += 1;
            }
        }
    }

    /// At an opening `"`; consumes through the closing quote and returns
    /// the contents.
    fn cooked_string(&mut self) -> String {
        self.i += 1;
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    self.i += 1;
                    if self.i < self.b.len() {
                        self.bump_line_on(self.b[self.i]);
                        self.i += 1;
                    }
                }
                b'"' => {
                    let s = self.src[start..self.i].to_string();
                    self.i += 1;
                    return s;
                }
                c => {
                    self.bump_line_on(c);
                    self.i += 1;
                }
            }
        }
        self.src[start..].to_string()
    }

    /// At the first `#` or `"` of a raw string body (after the prefix);
    /// consumes through the matching close and returns the contents.
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // the opening quote
        let start = self.i;
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let after = &self.b[self.i + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|&c| c == b'#') {
                    let s = self.src[start..self.i].to_string();
                    self.i += 1 + hashes;
                    return s;
                }
            }
            self.bump_line_on(self.b[self.i]);
            self.i += 1;
        }
        self.src[start..].to_string()
    }

    fn char_or_lifetime(&mut self, line: u32) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: scan to the closing quote.
            self.i += 2; // quote + backslash
            let start = self.i;
            if self.i < self.b.len() {
                self.i += 1; // the escaped character itself
            }
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            let s = self.src[start.saturating_sub(1)..self.i.min(self.src.len())].to_string();
            self.i += 1;
            self.push(Kind::Char, s, line);
            return;
        }
        let rest = &self.src[self.i + 1..];
        let mut chs = rest.char_indices();
        match (chs.next(), chs.next()) {
            (Some((_, c0)), Some((j1, '\''))) if c0 != '\'' => {
                // Plain char literal like 'x' (any single char).
                self.i += 1 + j1 + 1;
                self.push(Kind::Char, c0.to_string(), line);
            }
            (Some((_, c0)), _) if c0.is_alphabetic() || c0 == '_' => {
                // Lifetime: consume the identifier after the quote.
                self.i += 1;
                let start = self.i;
                while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                    self.i += 1;
                }
                let s = self.src[start..self.i].to_string();
                self.push(Kind::Lifetime, s, line);
            }
            _ => {
                // Lone quote (macro land); emit as punctuation.
                self.i += 1;
                self.push(Kind::Punct, "'".to_string(), line);
            }
        }
    }

    fn ident_or_prefixed_string(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let ident = &self.src[start..self.i];
        let next = self.peek(0);
        if is_str_prefix(ident) && (next == Some(b'"') || next == Some(b'#')) {
            // `r"..."`, `br#"..."#`, `b"..."`, `c"..."` etc. A `#` only
            // continues a string for raw flavors; `b#` is not a string.
            let raw = ident.contains('r');
            if raw {
                let s = self.raw_string();
                self.push(Kind::Str, s, line);
                return;
            }
            if next == Some(b'"') {
                self.i += 1;
                // cooked_string expects i at the quote's successor; step
                // back so it consumes from the quote.
                self.i -= 1;
                let s = self.cooked_string();
                self.push(Kind::Str, s, line);
                return;
            }
        }
        if ident == "r" && next == Some(b'#') && self.peek(1).is_some_and(is_ident_start) {
            // Raw identifier `r#type`: merge into one Ident token.
            self.i += 1; // '#'
            let istart = self.i;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            let s = self.src[istart..self.i].to_string();
            self.push(Kind::Ident, s, line);
            return;
        }
        self.push(Kind::Ident, ident.to_string(), line);
    }

    fn number(&mut self) -> String {
        let start = self.i;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if is_ident_continue(c) {
                self.i += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && self.b[self.i - 1].is_ascii_digit()
            {
                // `1.5` continues the number; `0..5` does not.
                self.i += 1;
            } else {
                break;
            }
        }
        self.src[start..self.i].to_string()
    }
}

/// True when `toks[at..]` is the path `segs[0] :: segs[1] :: ...`.
pub fn match_path(toks: &[Tok], at: usize, segs: &[&str]) -> bool {
    let mut i = at;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            match toks.get(i) {
                Some(t) if t.kind == Kind::Punct && t.text == "::" => i += 1,
                _ => return false,
            }
        }
        match toks.get(i) {
            Some(t) if t.kind == Kind::Ident && t.text == *seg => i += 1,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let toks = kinds(
            r##"
            // parking_lot in a comment
            /* crossbeam /* nested */ still comment */
            let s = "proptest inside a string";
            let r = r#"criterion raw "quoted" string"#;
            real_ident
            "##,
        );
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "let", "r", "real_ident"]);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            strs,
            vec![
                "proptest inside a string",
                r#"criterion raw "quoted" string"#
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) { let q = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = toks.iter().filter(|(k, _)| *k == Kind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn double_colon_merges_and_paths_match() {
        let toks = lex("std::sync::Mutex::new(0)");
        assert!(match_path(&toks, 0, &["std", "sync", "Mutex"]));
        assert!(!match_path(&toks, 0, &["std", "sync", "RwLock"]));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* x\ny */\n\"s1\\\ns2\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4); // the string starts on line 4
        assert_eq!(toks[2].line, 6); // `b` after the embedded newline
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = lex(r#"x "a\"b" y"#);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].kind, Kind::Str);
        assert_eq!(toks[1].text, r#"a\"b"#);
    }
}
