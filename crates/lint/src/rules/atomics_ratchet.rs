//! `raw-atomics-ratchet`: direct `std::sync::atomic` use in library
//! code, held to a committed per-crate baseline that may only go down.
//!
//! Raw atomics make ordering claims (`Acquire`, `Release`, `Relaxed`)
//! that nothing in the tree can validate. `clio_testkit::sync::atomic`
//! wraps the same types with the same explicit-ordering APIs, but under
//! a model-checked run every access becomes a scheduling point and its
//! declared ordering feeds the vector-clock race detector — so a
//! publication over a `Relaxed` flag is *caught*, not merely reviewed.
//! Rather than forbid raw atomics outright, this rule counts them per
//! crate — import sites and every later use of an imported name, plus
//! inline `std::sync::atomic::...` paths — and compares against the
//! `[raw_atomics]` section of `lint/ratchet.toml`.
//!
//! `crates/testkit` is exempt: it is the wrapper (and the model
//! checker's own scheduler state is necessarily raw). Test code is not
//! counted, matching the unwrap ratchet.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{match_path, Kind};
use crate::rules::unwrap_ratchet;
use crate::{matching, ratchet, Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "raw-atomics-ratchet";

/// The ratchet key for `rel`, or `None` when the file isn't counted
/// library code. Same mapping as the unwrap ratchet, minus the exempt
/// wrapper crate.
#[must_use]
pub fn crate_key(rel: &str) -> Option<String> {
    if rel.starts_with("crates/testkit/") {
        return None;
    }
    unwrap_ratchet::crate_key(rel)
}

/// Counts raw-atomic uses in one file's non-test code: each name bound
/// by a `use std::sync::atomic::...` import at every use site, plus
/// each inline `std::sync::atomic::...` path.
#[must_use]
pub fn count_file(sf: &SourceFile) -> u64 {
    let toks = &sf.toks;
    // Pass 1: harvest the names each `use std::sync::atomic...` binds
    // (aliases bind the alias; `self` binds `atomic`), and remember the
    // span of EVERY import — import paths are resolution context, not
    // use sites, so pass 2 must not count tokens inside any of them
    // (e.g. the `atomic` segment of a testkit wrapper import).
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut n = 0u64;
    for i in 0..toks.len() {
        if sf.in_test[i] || !(toks[i].kind == Kind::Ident && toks[i].text == "use") {
            continue;
        }
        // The item runs to its `;` (use-groups cannot contain one).
        let mut end = i;
        while end + 1 < toks.len() && !sf.is_punct(end, ";") {
            end += 1;
        }
        spans.push((i, end));
        let path_at = i + 1;
        if !match_path(toks, path_at, &["std", "sync", "atomic"]) {
            continue;
        }
        n += 1; // the import itself is a raw-atomic use
        let after = path_at + 5; // token after `std :: sync :: atomic`
        if sf.is_punct(after, ";") {
            // `use std::sync::atomic;` binds the module name.
            bound.insert("atomic".to_string());
        } else if sf.is_punct(after, "::") {
            let at = after + 1;
            if sf.is_punct(at, "{") {
                let close = matching(toks, at, "{", "}").unwrap_or(toks.len() - 1);
                let mut j = at + 1;
                while j < close {
                    if toks[j].kind == Kind::Ident {
                        if toks.get(j + 1).is_some_and(|t| t.text == "as") {
                            // `X as Y` binds Y.
                            if let Some(alias) = toks.get(j + 2) {
                                bound.insert(alias.text.clone());
                            }
                            j += 3;
                            continue;
                        }
                        bound.insert(if toks[j].text == "self" {
                            "atomic".to_string()
                        } else {
                            toks[j].text.clone()
                        });
                    }
                    j += 1;
                }
            } else if toks.get(at).is_some_and(|t| t.kind == Kind::Ident) {
                if toks.get(at + 1).is_some_and(|t| t.text == "as") {
                    if let Some(alias) = toks.get(at + 2) {
                        bound.insert(alias.text.clone());
                    }
                } else {
                    bound.insert(toks[at].text.clone());
                }
            }
            // `use std::sync::atomic::*;` — glob: nothing resolvable
            // to count later; the import itself was counted.
        }
    }
    // Pass 2: count uses — inline qualified paths, and idents the
    // imports above bound (`Ordering` counts only when it came from
    // `std::sync::atomic`, i.e. is in `bound`).
    let mut i = 0;
    while i < toks.len() {
        if sf.in_test[i] || spans.iter().any(|&(s, e)| s <= i && i <= e) {
            i += 1;
            continue;
        }
        if toks[i].kind == Kind::Ident && match_path(toks, i, &["std", "sync", "atomic"]) {
            n += 1;
            i += 5; // skip `std :: sync :: atomic`
                    // ...and whatever one path segment follows, so the type
                    // name isn't double-counted.
            if sf.is_punct(i, "::") {
                i += 2;
            }
            continue;
        }
        if toks[i].kind == Kind::Ident && bound.contains(&toks[i].text) {
            n += 1;
        }
        i += 1;
    }
    n
}

/// This rule's [`ratchet::compare`] parameters.
const SPEC: ratchet::RuleSpec = ratchet::RuleSpec {
    rule: NAME,
    section: "raw_atomics",
    what: "raw std::sync::atomic use count",
    fix: "use clio_testkit::sync::atomic, whose orderings the model checker validates",
};

/// Compares measured per-crate counts against the `[raw_atomics]`
/// section of the baseline file; see [`ratchet::compare`].
pub fn compare(counts: &BTreeMap<String, u64>, baseline_text: &str, out: &mut Vec<Diag>) {
    ratchet::compare(&SPEC, counts, baseline_text, out);
}
