//! The rule catalogue. Each rule lives in its own module with a `NAME`
//! constant and a `check` entry point taking a [`SourceFile`], so rules
//! are individually testable against in-memory fixtures.

pub mod atomics_ratchet;
pub mod raw_locks;
pub mod registry_deps;
pub mod unwrap_ratchet;
pub mod wallclock;
pub mod worm_writes;

use crate::{Diag, SourceFile};

/// Runs every token rule that applies to `sf` (the unwrap ratchet is
/// handled separately because it aggregates per crate, not per file).
pub fn check_source(sf: &SourceFile, out: &mut Vec<Diag>) {
    registry_deps::check(sf, out);
    raw_locks::check(sf, out);
    wallclock::check(sf, out);
    worm_writes::check(sf, out);
}
