//! `no-registry-deps`: the workspace is hermetic. The registry crates it
//! once used were replaced by in-tree equivalents in `clio-testkit`
//! (see DESIGN.md "Hermetic workspace"), and they must not creep back in
//! through either source code or a manifest. This rule replaces the old
//! CI `grep`, which flagged comments and strings; the token stream here
//! only ever matches live identifiers.

use crate::lexer::Kind;
use crate::{Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "no-registry-deps";

/// Crates retired when the workspace went hermetic. `crossbeam` is a
/// prefix match (`crossbeam-utils`, `crossbeam_channel`, …); `rand` only
/// counts when used as a path root, so a local `rand` variable is fine.
const RETIRED: &[&str] = &["parking_lot", "proptest", "criterion"];

fn replacement(name: &str) -> &'static str {
    match name {
        "parking_lot" => "clio_testkit::sync",
        "proptest" => "clio_testkit::{rng, devcheck}",
        "criterion" => "clio_testkit::bench",
        _ if name.starts_with("crossbeam") => "clio_testkit::sync + std channels",
        _ => "clio_testkit::rng",
    }
}

/// Flags retired crate names used as identifiers in source.
pub fn check(sf: &SourceFile, out: &mut Vec<Diag>) {
    for (i, t) in sf.toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let hit = RETIRED.contains(&name)
            || name.starts_with("crossbeam")
            || (name == "rand" && sf.is_punct(i + 1, "::"));
        if hit {
            out.push(Diag {
                rel: sf.rel.clone(),
                line: t.line,
                rule: NAME,
                msg: format!(
                    "retired registry crate `{name}` — the workspace is hermetic; \
                     use {} instead",
                    replacement(name)
                ),
            });
        }
    }
}

/// Flags retired crate names in a `Cargo.toml`, ignoring comments.
pub fn check_toml(rel: &str, content: &str, out: &mut Vec<Diag>) {
    for (n, raw) in content.lines().enumerate() {
        let line = strip_toml_comment(raw);
        for word in split_words(line) {
            let hit = RETIRED.contains(&word) || word.starts_with("crossbeam") || word == "rand";
            if hit {
                out.push(Diag {
                    rel: rel.to_string(),
                    line: u32::try_from(n + 1).unwrap_or(u32::MAX),
                    rule: NAME,
                    msg: format!(
                        "retired registry crate `{word}` in manifest — the workspace \
                         builds offline from in-tree crates only"
                    ),
                });
            }
        }
    }
}

/// Truncates a TOML line at the first `#` outside a basic string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Splits on everything that can't be part of a crate name (`-` and `_`
/// both bind, so `crossbeam-utils` is one word).
fn split_words(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .filter(|w| !w.is_empty())
}
