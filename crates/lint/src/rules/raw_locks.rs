//! `no-raw-std-locks`: blocking `std::sync` primitives are forbidden
//! outside `crates/testkit`. Everything else takes its locks from
//! `clio_testkit::sync`, which is poison-transparent and — under
//! `CLIO_LOCKDEP=1` — feeds the lock-order validator. A raw std lock
//! would be invisible to lockdep, punching a hole in deadlock coverage.
//!
//! `std::sync::{Arc, atomic, OnceLock, mpsc, …}` stay allowed; only the
//! blocking primitives are policed.

use crate::lexer::{match_path, Kind};
use crate::{Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "no-raw-std-locks";

const BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// Paths where raw std locks are legitimate: the instrumented wrappers
/// themselves (and lockdep's own internal state, which must not recurse
/// into instrumentation).
const ALLOWED_PREFIXES: &[&str] = &["crates/testkit/src/"];

/// Flags `std::sync::Mutex` / `RwLock` / `Condvar`, including grouped
/// imports like `use std::sync::{Arc, Mutex}`.
pub fn check(sf: &SourceFile, out: &mut Vec<Diag>) {
    if ALLOWED_PREFIXES.iter().any(|p| sf.rel.starts_with(p)) {
        return;
    }
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if !match_path(toks, i, &["std", "sync"]) || !sf.is_punct(i + 3, "::") {
            continue;
        }
        let after = i + 4;
        match toks.get(after) {
            Some(t) if t.kind == Kind::Ident && BANNED.contains(&t.text.as_str()) => {
                push(sf, t.line, &t.text, out);
            }
            Some(t) if t.kind == Kind::Punct && t.text == "{" => {
                let mut depth = 1usize;
                let mut j = after + 1;
                while j < toks.len() && depth > 0 {
                    let t = &toks[j];
                    if t.kind == Kind::Punct && t.text == "{" {
                        depth += 1;
                    } else if t.kind == Kind::Punct && t.text == "}" {
                        depth -= 1;
                    } else if t.kind == Kind::Ident && BANNED.contains(&t.text.as_str()) {
                        push(sf, t.line, &t.text, out);
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }
}

fn push(sf: &SourceFile, line: u32, name: &str, out: &mut Vec<Diag>) {
    out.push(Diag {
        rel: sf.rel.clone(),
        line,
        rule: NAME,
        msg: format!(
            "raw std::sync::{name} — use clio_testkit::sync::{name} so the lock \
             is poison-transparent and visible to lockdep"
        ),
    });
}
