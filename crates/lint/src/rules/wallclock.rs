//! `no-wallclock`: determinism policy. Test schedules and recovery
//! results must be replayable, so product code never reads the host
//! clock directly. Latency spans come from `clio_obs::clock::now()`;
//! semantic timestamps come from `clio_types::time::Clock`, which tests
//! replace with a logical clock. Only the approved timing modules may
//! call `Instant::now()` / `SystemTime::now()` themselves.

use crate::lexer::match_path;
use crate::{Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "no-wallclock";

/// Where direct host-clock reads are the point:
/// - `crates/obs/src/` — `clio_obs::clock` is the sanctioned funnel, and
///   trace timestamps are observability;
/// - `crates/bench/` — benchmark drivers measure wall time;
/// - `crates/testkit/src/bench.rs` — the in-tree bench timer;
/// - `crates/testkit/src/check.rs` — the model checker reports wall
///   time per exploration (its *schedules* are deterministic; the
///   timing is reporting only, like the bench timer);
/// - `crates/types/src/time.rs` — `SystemClock`, the one production
///   implementation of the semantic `Clock` trait.
///
/// `crates/sim/` is deliberately NOT approved: the cost models and the
/// whole-system simulator derive every instant from seeded state, and a
/// stray host-clock read there would silently break seed replay.
const APPROVED: &[&str] = &[
    "crates/obs/src/",
    "crates/bench/",
    "crates/testkit/src/bench.rs",
    "crates/testkit/src/check.rs",
    "crates/types/src/time.rs",
];

/// Flags `Instant::now()` and `SystemTime::now()` outside the approved
/// modules (test code included: deterministic tests are the point).
pub fn check(sf: &SourceFile, out: &mut Vec<Diag>) {
    if APPROVED.iter().any(|p| sf.rel.starts_with(p)) {
        return;
    }
    let toks = &sf.toks;
    for i in 0..toks.len() {
        for root in ["Instant", "SystemTime"] {
            if match_path(toks, i, &[root, "now"]) {
                out.push(Diag {
                    rel: sf.rel.clone(),
                    line: toks[i].line,
                    rule: NAME,
                    msg: format!(
                        "host clock read `{root}::now()` — use clio_obs::clock::now() \
                         for latency spans or clio_types::time::Clock for semantic time"
                    ),
                });
            }
        }
    }
}
