//! `worm-writes`: the device layer models write-once storage, and the
//! paper's whole integrity story (§2.3: a log file's committed prefix is
//! immutable) rests on every byte reaching the platter through one
//! audited surface. That surface is `store::raw` in
//! `crates/device/src/store.rs`. Anywhere else under `crates/device/src`,
//! raw file primitives — `OpenOptions`, `File::create`, seeks,
//! `set_len`, `fs::write` — are rejected, so a future device can't
//! quietly grow an unaudited rewrite path. Test modules are exempt
//! (crash tests deliberately corrupt files).

use crate::lexer::{match_path, Kind};
use crate::{Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "worm-writes";

const SCOPE: &str = "crates/device/src/";
const SURFACE: &str = "crates/device/src/store.rs";

/// Flags raw file primitives in device code outside `store.rs`.
pub fn check(sf: &SourceFile, out: &mut Vec<Diag>) {
    if !sf.rel.starts_with(SCOPE) || sf.rel == SURFACE {
        return;
    }
    let toks = &sf.toks;
    for i in 0..toks.len() {
        if sf.in_test[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let after_dot = i > 0 && sf.is_punct(i - 1, ".");
        let found = match t.text.as_str() {
            "OpenOptions" | "SeekFrom" | "Seek" => Some(t.text.as_str()),
            "seek" | "set_len" | "seek_write" | "seek_read" if after_dot => Some(t.text.as_str()),
            "File" if match_path(toks, i, &["File", "create"]) => Some("File::create"),
            "File" if match_path(toks, i, &["File", "options"]) => Some("File::options"),
            "fs" if match_path(toks, i, &["fs", "write"]) => Some("fs::write"),
            _ => None,
        };
        if let Some(what) = found {
            out.push(Diag {
                rel: sf.rel.clone(),
                line: t.line,
                rule: NAME,
                msg: format!(
                    "raw file primitive `{what}` in the device layer — route it \
                     through store::raw in store.rs, the audited WORM write surface"
                ),
            });
        }
    }
}
