//! `unwrap-ratchet`: library code (everything under `crates/*/src` and
//! the root `src/`) should propagate errors or document why a panic is
//! impossible. Rather than forbid `unwrap()` outright — which invites a
//! mass mechanical rewrite — the rule counts `.unwrap()` calls and
//! `.expect(...)` calls whose message does *not* start with
//! `"invariant: "`, per crate, and compares against the committed
//! baseline in `lint/ratchet.toml`. Counts may only go down; the
//! baseline must be lowered (via `--update-ratchet`) as code improves,
//! so progress can't silently erode.
//!
//! `expect("invariant: …")` is the sanctioned way to assert a local
//! impossibility: the message documents the reasoning, and the ratchet
//! exempts it. Test code (`#[cfg(test)]` regions, `tests/`, `examples/`,
//! `benches/`) is not counted at all.

use std::collections::BTreeMap;

use crate::lexer::Kind;
use crate::{ratchet, Diag, SourceFile};

/// Rule name used in diagnostics.
pub const NAME: &str = "unwrap-ratchet";

/// Where the committed baseline lives, relative to the workspace root.
pub const RATCHET_REL: &str = "lint/ratchet.toml";

/// The ratchet key for `rel`, or `None` when the file isn't library
/// code. `crates/<name>/src/**` maps to `<name>`; the root package's
/// `src/**` maps to `clio`.
#[must_use]
pub fn crate_key(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, inner) = rest.split_once('/')?;
        inner.starts_with("src/").then(|| name.to_string())
    } else if rel.starts_with("src/") {
        Some("clio".to_string())
    } else {
        None
    }
}

/// Counts ratcheted unwrap/expect calls in one file's non-test code.
#[must_use]
pub fn count_file(sf: &SourceFile) -> u64 {
    let mut n = 0u64;
    for (i, t) in sf.toks.iter().enumerate() {
        if sf.in_test[i] || t.kind != Kind::Ident {
            continue;
        }
        // Only method-call position: `.unwrap(` / `.expect(`.
        if i == 0 || !sf.is_punct(i - 1, ".") || !sf.is_punct(i + 1, "(") {
            continue;
        }
        match t.text.as_str() {
            "unwrap" => n += 1,
            "expect" => {
                let documented = sf
                    .toks
                    .get(i + 2)
                    .is_some_and(|a| a.kind == Kind::Str && a.text.starts_with("invariant:"));
                if !documented {
                    n += 1;
                }
            }
            _ => {}
        }
    }
    n
}

/// This rule's [`ratchet::compare`] parameters.
const SPEC: ratchet::RuleSpec = ratchet::RuleSpec {
    rule: NAME,
    section: "unwrap",
    what: "library unwrap/expect count",
    fix: "handle the error or document the impossibility as expect(\"invariant: ...\")",
};

/// Compares measured per-crate counts against the `[unwrap]` section of
/// the baseline file; see [`ratchet::compare`].
pub fn compare(counts: &BTreeMap<String, u64>, baseline_text: &str, out: &mut Vec<Diag>) {
    ratchet::compare(&SPEC, counts, baseline_text, out);
}
