//! Per-rule self-tests over the fixtures in `tests/fixtures/`. Each rule
//! is fed deliberately-bad and deliberately-clean sources through the
//! library API with synthetic workspace-relative paths; the fixtures
//! live in a `fixtures/` directory precisely so the workspace walker
//! skips them and the shipped tree stays lint-clean.

use std::collections::BTreeMap;

use clio_lint::rules::{
    atomics_ratchet, raw_locks, registry_deps, unwrap_ratchet, wallclock, worm_writes,
};
use clio_lint::{Diag, SourceFile};

fn lint(rel: &str, src: &str, rule: impl Fn(&SourceFile, &mut Vec<Diag>)) -> Vec<Diag> {
    let sf = SourceFile::parse(rel, src);
    let mut out = Vec::new();
    rule(&sf, &mut out);
    out
}

#[test]
fn registry_deps_flags_every_retired_crate() {
    let diags = lint(
        "crates/x/src/lib.rs",
        include_str!("fixtures/registry_deps/bad.rs"),
        registry_deps::check,
    );
    let names: Vec<&str> = diags.iter().map(|d| d.msg.as_str()).collect();
    assert_eq!(diags.len(), 5, "{names:?}");
    for needle in [
        "parking_lot",
        "crossbeam_channel",
        "proptest",
        "criterion",
        "rand",
    ] {
        assert!(
            names.iter().any(|m| m.contains(needle)),
            "missing {needle} in {names:?}"
        );
    }
    assert!(diags
        .iter()
        .all(|d| d.line > 0 && d.rule == "no-registry-deps"));
}

#[test]
fn registry_deps_ignores_comments_strings_and_locals() {
    let diags = lint(
        "crates/x/src/lib.rs",
        include_str!("fixtures/registry_deps/clean.rs"),
        registry_deps::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn registry_deps_catches_manifest_lines_but_not_comments() {
    let bad = "[dependencies]\nparking_lot = \"0.12\"\n\
               crossbeam-utils = { version = \"0.8\" }\nrand = \"0.8\"\n\
               # criterion = \"0.5\" is only a comment\n";
    let mut diags = Vec::new();
    registry_deps::check_toml("crates/x/Cargo.toml", bad, &mut diags);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert_eq!(diags[0].line, 2);
    assert!(diags[1].msg.contains("crossbeam-utils"));

    // A rename can smuggle a dep inside a string — strings are checked.
    let mut renamed = Vec::new();
    registry_deps::check_toml(
        "crates/x/Cargo.toml",
        "quick = { package = \"proptest\", version = \"1\" }\n",
        &mut renamed,
    );
    assert_eq!(renamed.len(), 1, "{renamed:?}");

    let mut clean = Vec::new();
    registry_deps::check_toml(
        "crates/x/Cargo.toml",
        "clio-testkit.workspace = true\n[features]\nrandomized = []\n",
        &mut clean,
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn raw_locks_flags_plain_and_grouped_imports() {
    let diags = lint(
        "crates/core/src/lib.rs",
        include_str!("fixtures/raw_locks/bad.rs"),
        raw_locks::check,
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
    let mut hit: Vec<&str> = diags
        .iter()
        .map(|d| {
            ["Mutex", "RwLock", "Condvar"]
                .into_iter()
                .find(|b| d.msg.contains(&format!("std::sync::{b}")))
                .unwrap_or("?")
        })
        .collect();
    hit.sort_unstable();
    assert_eq!(hit, vec!["Condvar", "Mutex", "Mutex", "RwLock"]);
}

#[test]
fn raw_locks_allows_testkit_and_nonblocking_std_sync() {
    let src = include_str!("fixtures/raw_locks/clean.rs");
    assert!(lint("crates/core/src/lib.rs", src, raw_locks::check).is_empty());
    // The instrumented wrappers themselves are the one allowed home.
    let bad = include_str!("fixtures/raw_locks/bad.rs");
    assert!(lint("crates/testkit/src/sync.rs", bad, raw_locks::check).is_empty());
}

#[test]
fn wallclock_flags_clock_reads_outside_approved_modules() {
    let bad = include_str!("fixtures/wallclock/bad.rs");
    let diags = lint("crates/core/src/service.rs", bad, wallclock::check);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("SystemTime::now")));
    assert!(diags.iter().any(|d| d.msg.contains("Instant::now")));
    // The same source is fine where measuring wall time is the point.
    assert!(lint("crates/bench/src/bin/x.rs", bad, wallclock::check).is_empty());
    // The simulator is NOT exempt: virtual time must come from seeded
    // state, never the host clock, or seed replay silently breaks.
    assert_eq!(
        lint("crates/sim/src/lib.rs", bad, wallclock::check).len(),
        3,
        "crates/sim must be held to the no-wallclock rule"
    );
    assert_eq!(
        lint("crates/testkit/src/sim.rs", bad, wallclock::check).len(),
        3,
        "the virtual-time scheduler must be held to the no-wallclock rule"
    );
}

#[test]
fn wallclock_allows_the_sanctioned_funnels() {
    let diags = lint(
        "crates/core/src/read.rs",
        include_str!("fixtures/wallclock/clean.rs"),
        wallclock::check,
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn worm_writes_confines_raw_file_primitives_to_store() {
    let bad = include_str!("fixtures/worm_writes/bad.rs");
    let diags = lint("crates/device/src/file.rs", bad, worm_writes::check);
    assert_eq!(diags.len(), 8, "{diags:?}");
    for needle in [
        "OpenOptions",
        "SeekFrom",
        "`seek`",
        "set_len",
        "File::create",
        "fs::write",
    ] {
        assert!(
            diags.iter().any(|d| d.msg.contains(needle)),
            "missing {needle} in {diags:?}"
        );
    }
    // The audited surface itself may use the primitives...
    assert!(lint("crates/device/src/store.rs", bad, worm_writes::check).is_empty());
    // ...and so may code outside the device layer entirely.
    assert!(lint("crates/fs/src/fs.rs", bad, worm_writes::check).is_empty());
}

#[test]
fn worm_writes_exempts_test_modules_and_clean_code() {
    let bad = include_str!("fixtures/worm_writes/bad.rs");
    let diags = lint("crates/device/src/file.rs", bad, worm_writes::check);
    // The #[cfg(test)] fs::write at the bottom contributes nothing: all 8
    // findings sit above the test module.
    let max_line = diags.iter().map(|d| d.line).max().unwrap_or(0);
    assert!(max_line <= 11, "test-module write was flagged: {diags:?}");
    let clean = include_str!("fixtures/worm_writes/clean.rs");
    assert!(lint("crates/device/src/mirror.rs", clean, worm_writes::check).is_empty());
}

#[test]
fn unwrap_ratchet_counts_only_undocumented_library_calls() {
    let sf = SourceFile::parse(
        "crates/x/src/lib.rs",
        include_str!("fixtures/unwrap_ratchet/counted.rs"),
    );
    assert_eq!(unwrap_ratchet::count_file(&sf), 2);
}

#[test]
fn unwrap_ratchet_scopes_to_library_code() {
    assert_eq!(
        unwrap_ratchet::crate_key("crates/device/src/file.rs").as_deref(),
        Some("device")
    );
    assert_eq!(
        unwrap_ratchet::crate_key("src/bin/cliodump.rs").as_deref(),
        Some("clio")
    );
    assert_eq!(unwrap_ratchet::crate_key("crates/device/tests/t.rs"), None);
    assert_eq!(unwrap_ratchet::crate_key("tests/end_to_end.rs"), None);
    assert_eq!(unwrap_ratchet::crate_key("examples/demo.rs"), None);
}

#[test]
fn unwrap_ratchet_compare_reports_all_four_drifts() {
    let counts: BTreeMap<String, u64> = [
        ("up".to_string(), 3u64),
        ("down".to_string(), 1),
        ("new".to_string(), 0),
    ]
    .into_iter()
    .collect();
    let baseline = "[unwrap]\nup = 2\ndown = 4\ngone = 1\n";
    let mut diags = Vec::new();
    unwrap_ratchet::compare(&counts, baseline, &mut diags);
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("regressed: 2 -> 3")));
    assert!(diags.iter().any(|d| d.msg.contains("improved to 1")));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("`new` has no [unwrap] baseline")));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("stale baseline entry `gone`")));
    // Exact match is silent.
    let mut ok = Vec::new();
    unwrap_ratchet::compare(&counts, "[unwrap]\nup = 3\ndown = 1\nnew = 0\n", &mut ok);
    assert!(ok.is_empty(), "{ok:?}");
}

#[test]
fn atomics_ratchet_counts_imports_uses_and_inline_paths() {
    let sf = SourceFile::parse(
        "crates/x/src/lib.rs",
        include_str!("fixtures/atomics_ratchet/counted.rs"),
    );
    assert_eq!(atomics_ratchet::count_file(&sf), 10);
}

#[test]
fn atomics_ratchet_handles_self_and_glob_imports() {
    // `self` binds the module name `atomic`; later uses count. One
    // import + two `atomic` path uses = 3 (the unused `AtomicBool`
    // binding never appears again).
    let sf = SourceFile::parse(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::{self, AtomicBool};\n\
         fn f() { atomic::fence(atomic::Ordering::SeqCst); }\n",
    );
    assert_eq!(atomics_ratchet::count_file(&sf), 3);
    // A glob import counts once; its uses cannot be resolved.
    let sf = SourceFile::parse(
        "crates/x/src/lib.rs",
        "use std::sync::atomic::*;\nfn f(a: &AtomicU64) { let _ = a; }\n",
    );
    assert_eq!(atomics_ratchet::count_file(&sf), 1);
}

#[test]
fn atomics_ratchet_exempts_testkit_and_nonlibrary_code() {
    assert_eq!(
        atomics_ratchet::crate_key("crates/device/src/file.rs").as_deref(),
        Some("device")
    );
    assert_eq!(
        atomics_ratchet::crate_key("src/bin/cliodump.rs").as_deref(),
        Some("clio")
    );
    assert_eq!(
        atomics_ratchet::crate_key("crates/testkit/src/sync/atomic.rs"),
        None
    );
    assert_eq!(atomics_ratchet::crate_key("crates/device/tests/t.rs"), None);
}

#[test]
fn atomics_ratchet_compares_against_its_own_section() {
    let counts: BTreeMap<String, u64> = [("cache".to_string(), 3u64)].into_iter().collect();
    let baseline = "[raw_atomics]\ncache = 2\n\n[unwrap]\ncache = 99\n";
    let mut diags = Vec::new();
    atomics_ratchet::compare(&counts, baseline, &mut diags);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("regressed: 2 -> 3"), "{diags:?}");
    assert_eq!(diags[0].rule, "raw-atomics-ratchet");
    // A matching count is silent even though [unwrap] differs wildly.
    let mut ok = Vec::new();
    atomics_ratchet::compare(&counts, "[raw_atomics]\ncache = 3\n", &mut ok);
    assert!(ok.is_empty(), "{ok:?}");
}

/// The shipped tree is lint-clean and matches its committed ratchet —
/// the same invariant CI enforces, checked here so `cargo test` alone
/// catches a violation.
#[test]
fn shipped_tree_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = clio_lint::load_workspace(&root).expect("workspace loads");
    let report = clio_lint::check_workspace(&ws);
    let mut diags = report.diags;
    let baseline = std::fs::read_to_string(root.join(unwrap_ratchet::RATCHET_REL))
        .expect("lint/ratchet.toml is committed");
    unwrap_ratchet::compare(&report.unwrap_counts, &baseline, &mut diags);
    atomics_ratchet::compare(&report.atomic_counts, &baseline, &mut diags);
    assert!(
        diags.is_empty(),
        "tree has lint violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.rust_files > 100, "walker missed most of the tree");
}
