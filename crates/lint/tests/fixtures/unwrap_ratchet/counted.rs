//! Fixture: two ratcheted calls — a bare unwrap and an undocumented
//! expect. The documented invariant and the whole test module are
//! exempt, and `unwrap_or` is a different method.
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("should never happen");
    let c = o.expect("invariant: caller verified is_some above");
    let d = o.unwrap_or(0);
    a + b + c + d
}

#[cfg(test)]
mod tests {
    fn t(o: Option<u32>) {
        o.unwrap();
        o.expect("tests may be blunt");
    }
}
