//! Fixture: parking_lot, crossbeam, proptest, criterion in prose — a
//! doc comment is not a dependency.

fn f() {
    let s = "crossbeam inside a string is fine";
    let r = r#"so is proptest in a raw string"#;
    let rand = 3; // a local named `rand` is not a path root
    let _ = rand + s.len() + r.len();
}
