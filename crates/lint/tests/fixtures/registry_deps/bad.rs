//! Fixture: every retired registry crate, used for real. The comment
//! mentions of parking_lot here must NOT be flagged; the uses must.
use crossbeam_channel::bounded;
use parking_lot::Mutex;

fn f() {
    let m = Mutex::new(0);
    let _ = proptest::arbitrary::<u32>();
    let _ = criterion::black_box(m);
    let _ = rand::random::<u8>();
}
