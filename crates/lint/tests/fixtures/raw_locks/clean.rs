//! Fixture: the allowed std::sync surface plus the instrumented locks.
//! A comment saying std::sync::Mutex is not a lock.
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use clio_testkit::sync::{Condvar, Mutex, RwLock};

fn f() {
    let _ = (
        Arc::new(AtomicU64::new(0)),
        OnceLock::<u32>::new(),
        Mutex::new(0),
        RwLock::new(0),
        Condvar::new(),
    );
    let s = "std::sync::RwLock in a string";
    let _ = s;
}
