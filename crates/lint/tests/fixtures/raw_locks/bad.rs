//! Fixture: raw std blocking primitives, plain and grouped.
use std::sync::Mutex;
use std::sync::{Arc, Condvar, RwLock};

fn f() {
    let m = std::sync::Mutex::new(0);
    let _ = (m, Arc::new(()));
}
