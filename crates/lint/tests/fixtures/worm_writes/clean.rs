//! Fixture: device code that plays by the rules — all raw access goes
//! through the audited surface. `OpenOptions` in this comment is prose.
use crate::store::raw;

fn f(file: &mut std::fs::File, buf: &[u8]) -> std::io::Result<u64> {
    raw::append_at_end(file, buf)
}
