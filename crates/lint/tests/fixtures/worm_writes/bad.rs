//! Fixture: raw file primitives loose in the device layer. The test
//! module at the bottom is exempt (crash tests corrupt files on
//! purpose); everything above it must be flagged.
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom};

fn f(file: &mut std::fs::File) {
    file.seek(SeekFrom::Start(0)).ok();
    file.set_len(0).ok();
    let _ = std::fs::File::create("x");
    std::fs::write("x", b"y").ok();
}

#[cfg(test)]
mod tests {
    fn torn_tail() {
        std::fs::write("x", b"y").ok();
    }
}
