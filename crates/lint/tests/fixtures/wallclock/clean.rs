//! Fixture: the sanctioned ways to tell time. `Instant::now()` in this
//! doc comment and in the string below are prose, not clock reads.
use std::time::Instant;

fn f(clock: &dyn clio_types::time::Clock) {
    let span: Instant = clio_obs::clock::now();
    let ts = clock.now();
    let s = "Instant::now() spelled out";
    let _ = (span, ts, s);
}
