//! Fixture: direct host-clock reads in product code.
use std::time::{Instant, SystemTime};

fn f() {
    let t = std::time::Instant::now();
    let s = SystemTime::now();
    let _ = (t, s, Instant::now());
}
