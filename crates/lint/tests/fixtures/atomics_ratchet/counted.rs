//! Fixture: raw-atomic uses a library file can contain. Expected
//! count: 10.
//!
//!  1  the grouped import itself
//!  2  the module import (`use std::sync::atomic;`)
//!  3  `AtomicU64` in the static declaration
//!  4  `AtomicU64` in the initializer
//!  5  `atomic` in the `DEPTH` declaration
//!  6  `atomic` in the `DEPTH` initializer
//!  7  the inline-qualified `std::sync::atomic::AtomicBool` path
//!  8  `atomic` in the fence call
//!  9  `Order` (the `Ordering as Order` alias) in the fence argument
//! 10  `Order` in `load`
//!
//! NOT counted: the testkit wrapper import (different path — even its
//! `atomic` segment), names resolved from the wrapper, and everything
//! in the test module.

use std::sync::atomic::{AtomicU64, Ordering as Order};
use std::sync::atomic;

static HITS: AtomicU64 = AtomicU64::new(0);
static DEPTH: atomic::AtomicUsize = atomic::AtomicUsize::new(0);

fn f(flag: &std::sync::atomic::AtomicBool) -> u64 {
    let _ = flag;
    let _ = DEPTH;
    atomic::fence(Order::SeqCst);
    HITS.load(Order::Relaxed)
}

mod wrapped {
    use clio_testkit::sync::atomic::{AtomicI64, Ordering};

    fn g(a: &AtomicI64) -> i64 {
        a.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU32;

    fn t() {
        let _ = AtomicU32::new(0);
    }
}
