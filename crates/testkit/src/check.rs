//! `check`: a loom-lite deterministic concurrency model checker with a
//! vector-clock happens-before race detector. Std-only.
//!
//! A [`Checker`] runs a *model* — a closure spawning 2–4 threads via
//! [`spawn`] that exercise a concurrency protocol built from
//! [`crate::sync`] primitives, [`crate::sync::atomic`] wrappers, and
//! [`RaceCell`]s for plain shared data — under a cooperative scheduler
//! that serializes the threads and explores distinct interleavings:
//!
//! * every lock acquisition/release, condvar wait/notify, atomic access,
//!   `RaceCell` access, spawn and join is a *scheduling point*;
//! * small state spaces are swept by bounded-preemption DFS over the
//!   schedule tree; larger ones by a seeded random walk whose failing
//!   schedules replay byte-identically from the printed
//!   `CLIO_CHECK_REPLAY=<seed>:<index>` line (the `CLIO_PROP_SEED`
//!   convention);
//! * a vector-clock checker ([`crate::vclock`]) maintains happens-before
//!   across lock release→acquire, atomic `Release`→`Acquire`, and
//!   spawn/join edges, and fails the schedule with **both** access sites
//!   when two accesses to a [`RaceCell`] conflict without an ordering
//!   edge;
//! * a schedule where every unfinished thread is blocked fails as a
//!   deadlock (this is how lost condvar wakeups surface: in a checked
//!   run `notify_one`/`notify_all` wake only threads already waiting,
//!   exactly the real semantics).
//!
//! Instrumentation is inert outside a checked run: one relaxed atomic
//! load on the fast path, and only threads created by [`spawn`] inside a
//! running model participate. Models must create their locks, atomics
//! and cells inside the model closure (per-schedule state is keyed by
//! object address). The checker's own internals use raw `std::sync`
//! primitives so they never feed back into themselves.
//!
//! What lockdep ([`crate::lockdep`]) cannot see — races on data the
//! locks were supposed to protect, misuse of atomic orderings, lost
//! wakeups — is precisely what this module checks; lockdep still covers
//! lock-order cycles across the *real* workload, which a hand-written
//! model cannot.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, Once, PoisonError};
use std::time::{Duration, Instant};

use crate::rng::StdRng;
use crate::vclock::VClock;

// ---------------------------------------------------------------------------
// Thread registry: which threads are model threads, and for which run.

/// Count of live checked runs process-wide; the fast-path gate.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    sched: Arc<Sched>,
    tid: usize,
}

/// The scheduler and model-thread id of the current thread, if it is a
/// model thread of a live checked run.
fn current() -> Option<(Arc<Sched>, usize)> {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CTX.try_with(|c| c.borrow().as_ref().map(|t| (t.sched.clone(), t.tid)))
        .ok()
        .flatten()
}

/// Whether the current thread is a model thread of a live checked run.
pub(crate) fn is_model() -> bool {
    current().is_some()
}

/// Quiet panic payload used to tear a model thread down after the
/// schedule has already been failed (or finished) elsewhere.
struct Abort;

/// Model-thread panics are reported by the controller with schedule
/// context; suppress the default hook's per-thread noise for them.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let model = CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false);
            if !model {
                prev(info);
            }
        }));
    });
}

fn panic_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Per-schedule scheduler state.

type Site = &'static Location<'static>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    Runnable,
    /// Waiting for a lock (`excl`: writer side of an `RwLock`, or a
    /// `Mutex`, vs. the reader side).
    Lock {
        addr: usize,
        excl: bool,
    },
    /// Waiting on a condvar; `timeout` waiters stay schedulable (picking
    /// one wakes it as a timeout).
    Cv {
        cv: usize,
        timeout: bool,
    },
    Join(usize),
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Wake {
    Notified,
    TimedOut,
}

struct ThreadState {
    block: Block,
    clock: VClock,
    wake: Option<Wake>,
    /// Last scheduling-point site, for deadlock reports.
    at: Site,
}

#[derive(Default)]
struct LockSt {
    writer: Option<usize>,
    readers: u32,
    clock: VClock,
}

struct Access {
    tid: usize,
    epoch: u32,
    at: Site,
}

struct CellSt {
    created: Site,
    write: Option<Access>,
    reads: Vec<Access>,
}

/// How choices are made at each scheduling point.
enum Plan {
    /// Replay `prefix`, then always pick candidate 0 (the canonical
    /// "keep running the current thread" default).
    Dfs { prefix: Vec<u8> },
    /// Uniform choice from a seeded generator.
    Random { rng: StdRng },
}

/// One recorded scheduling decision.
struct DecisionRec {
    /// Candidate tids in canonical order: the previously running thread
    /// first when it is still runnable, then the rest ascending.
    cands: Vec<u8>,
    /// Index into `cands` that was taken.
    chosen: u8,
    prev: u8,
    prev_runnable: bool,
    /// Preemptions consumed before this decision.
    preempt_before: u32,
}

struct SchedState {
    threads: Vec<ThreadState>,
    running: usize,
    /// Spawned minus finished model threads.
    live: usize,
    aborting: bool,
    done: bool,
    failure: Option<String>,
    trace: Vec<DecisionRec>,
    preemptions: u32,
    steps: usize,
    plan: Plan,
    locks: HashMap<usize, LockSt>,
    atomics: HashMap<usize, VClock>,
    cells: HashMap<usize, CellSt>,
}

struct Sched {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    max_steps: usize,
}

type StGuard<'a> = std::sync::MutexGuard<'a, SchedState>;

enum Choice {
    Chosen,
    /// The schedule has been failed (deadlock/livelock/divergence) or
    /// every thread finished; the caller must not keep running.
    Stop,
}

fn blocked_desc(b: Block) -> String {
    match b {
        Block::Runnable => "runnable".to_string(),
        Block::Lock { excl: true, .. } => "blocked acquiring a lock (exclusive)".to_string(),
        Block::Lock { excl: false, .. } => "blocked acquiring a lock (shared)".to_string(),
        Block::Cv { timeout, .. } => {
            if timeout {
                "waiting on a Condvar (with timeout)".to_string()
            } else {
                "waiting on a Condvar".to_string()
            }
        }
        Block::Join(t) => format!("joining thread t{t}"),
        Block::Finished => "finished".to_string(),
    }
}

impl Sched {
    fn st(&self) -> StGuard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a failure (first one wins) and tears the schedule down.
    fn fail(&self, st: &mut SchedState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run at a scheduling point reached by
    /// `my` (which holds the run token). Records the decision.
    fn choose(&self, st: &mut SchedState, my: usize) -> Choice {
        st.steps += 1;
        if st.steps > self.max_steps {
            let msg = format!(
                "schedule exceeded {} scheduling points (livelock? unbounded retry loop?)",
                self.max_steps
            );
            self.fail(st, msg);
            return Choice::Stop;
        }
        let schedulable = |b: Block| matches!(b, Block::Runnable | Block::Cv { timeout: true, .. });
        let prev_runnable = st.threads[my].block == Block::Runnable;
        let mut cands: Vec<u8> = Vec::with_capacity(st.threads.len());
        if prev_runnable {
            cands.push(my as u8);
        }
        for (tid, t) in st.threads.iter().enumerate() {
            if (tid != my || !prev_runnable) && schedulable(t.block) {
                cands.push(tid as u8);
            }
        }
        if cands.is_empty() {
            if st.live == 0 {
                st.done = true;
                self.cv.notify_all();
                return Choice::Stop;
            }
            let mut msg = String::from("deadlock: every unfinished thread is blocked\n");
            for (tid, t) in st.threads.iter().enumerate() {
                if t.block != Block::Finished {
                    msg.push_str(&format!(
                        "  t{tid}: {} at {}\n",
                        blocked_desc(t.block),
                        t.at
                    ));
                }
            }
            msg.pop();
            self.fail(st, msg);
            return Choice::Stop;
        }
        let depth = st.trace.len();
        let idx = match &mut st.plan {
            Plan::Dfs { prefix } => {
                if depth < prefix.len() {
                    let want = prefix[depth] as usize;
                    if want >= cands.len() {
                        let msg = format!(
                            "schedule diverged from its replay prefix at decision {depth} \
                             (wanted candidate {want} of {}): the model is not deterministic",
                            cands.len()
                        );
                        self.fail(st, msg);
                        return Choice::Stop;
                    }
                    want
                } else {
                    0
                }
            }
            Plan::Random { rng } => (rng.next_u64() % cands.len() as u64) as usize,
        };
        let next = cands[idx] as usize;
        st.trace.push(DecisionRec {
            chosen: idx as u8,
            prev: my as u8,
            prev_runnable,
            preempt_before: st.preemptions,
            cands,
        });
        if prev_runnable && next != my {
            st.preemptions += 1;
        }
        // Picking a timed condvar waiter wakes it as a timeout.
        if let Block::Cv { .. } = st.threads[next].block {
            st.threads[next].block = Block::Runnable;
            st.threads[next].wake = Some(Wake::TimedOut);
        }
        st.running = next;
        if next != my {
            self.cv.notify_all();
        }
        Choice::Chosen
    }

    /// Blocks until it is `my`'s turn to run (or the schedule aborts).
    fn park<'a>(&'a self, mut st: StGuard<'a>, my: usize) -> StGuard<'a> {
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.running == my {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A scheduling point: decide who runs next, then wait for our turn.
    fn yield_and_park<'a>(&'a self, mut st: StGuard<'a>, my: usize) -> StGuard<'a> {
        match self.choose(&mut st, my) {
            Choice::Chosen => self.park(st, my),
            Choice::Stop => {
                drop(st);
                panic::panic_any(Abort);
            }
        }
    }

    /// Pre-op scheduling point at `site`.
    fn yield_at(&self, my: usize, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        drop(self.yield_and_park(st, my));
    }

    // -- locks --------------------------------------------------------------

    fn lock_acquire(&self, my: usize, addr: usize, excl: bool, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        loop {
            let l = st.locks.entry(addr).or_default();
            let free = l.writer.is_none() && (!excl || l.readers == 0);
            if free {
                if excl {
                    l.writer = Some(my);
                } else {
                    l.readers += 1;
                }
                let lc = l.clock.clone();
                st.threads[my].clock.join(&lc);
                return;
            }
            st.threads[my].block = Block::Lock { addr, excl };
            st = self.yield_and_park(st, my);
        }
    }

    fn lock_try_acquire(&self, my: usize, addr: usize, excl: bool, site: Site) -> bool {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        let l = st.locks.entry(addr).or_default();
        let free = l.writer.is_none() && (!excl || l.readers == 0);
        if free {
            if excl {
                l.writer = Some(my);
            } else {
                l.readers += 1;
            }
            let lc = l.clock.clone();
            st.threads[my].clock.join(&lc);
        }
        free
    }

    fn lock_release(&self, my: usize, addr: usize, excl: bool) {
        let mut st = self.st();
        let tc = st.threads[my].clock.clone();
        if let Some(l) = st.locks.get_mut(&addr) {
            l.clock.join(&tc);
            if excl {
                l.writer = None;
            } else {
                l.readers = l.readers.saturating_sub(1);
            }
        }
        st.threads[my].clock.tick(my);
        for t in st.threads.iter_mut() {
            if let Block::Lock { addr: a, .. } = t.block {
                if a == addr {
                    t.block = Block::Runnable;
                }
            }
        }
    }

    // -- condvars -----------------------------------------------------------

    /// Blocks on `cv_addr`; the caller has already released the mutex
    /// (with no scheduling point in between, so release+wait is atomic
    /// exactly like the real condvar). Returns whether the wait woke as
    /// a timeout.
    fn cv_wait(&self, my: usize, cv_addr: usize, timeout: bool, site: Site) -> bool {
        let mut st = self.st();
        st.threads[my].at = site;
        st.threads[my].wake = None;
        st.threads[my].block = Block::Cv {
            cv: cv_addr,
            timeout,
        };
        let st = self.yield_and_park(st, my);
        st.threads[my].wake == Some(Wake::TimedOut)
    }

    fn cv_notify(&self, my: usize, cv_addr: usize, all: bool, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        // Deterministic pick: wake waiters in ascending-tid order. Lost
        // wakeups are modeled faithfully — a thread not yet waiting
        // stays blocked, and an all-blocked schedule fails as deadlock.
        for t in st.threads.iter_mut() {
            if let Block::Cv { cv, .. } = t.block {
                if cv == cv_addr {
                    t.block = Block::Runnable;
                    t.wake = Some(Wake::Notified);
                    if !all {
                        break;
                    }
                }
            }
        }
    }

    // -- atomics ------------------------------------------------------------

    fn atomic_op(&self, my: usize, addr: usize, acq: bool, rel: bool, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        if acq {
            let oc = st.atomics.entry(addr).or_default().clone();
            st.threads[my].clock.join(&oc);
        }
        if rel {
            let tc = st.threads[my].clock.clone();
            st.atomics.entry(addr).or_default().join(&tc);
            st.threads[my].clock.tick(my);
        }
    }

    // -- plain (racy) accesses ----------------------------------------------

    fn cell_access(&self, my: usize, addr: usize, write: bool, created: Site, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        let clock = st.threads[my].clock.clone();
        let cell = st.cells.entry(addr).or_insert_with(|| CellSt {
            created,
            write: None,
            reads: Vec::new(),
        });
        let kind = if write { "write" } else { "read" };
        let mut race: Option<String> = None;
        if let Some(w) = &cell.write {
            if w.tid != my && !clock.saw(w.tid, w.epoch) {
                race = Some(race_msg(cell.created, "write", w, kind, my, site));
            }
        }
        if write && race.is_none() {
            for r in &cell.reads {
                if r.tid != my && !clock.saw(r.tid, r.epoch) {
                    race = Some(race_msg(cell.created, "read", r, kind, my, site));
                    break;
                }
            }
        }
        if let Some(msg) = race {
            self.fail(&mut st, msg);
            drop(st);
            panic::panic_any(Abort);
        }
        let epoch = st.threads[my].clock.tick(my);
        let cell = st
            .cells
            .get_mut(&addr)
            .expect("invariant: cell state was just inserted");
        let acc = Access {
            tid: my,
            epoch,
            at: site,
        };
        if write {
            cell.write = Some(acc);
            cell.reads.clear();
        } else {
            cell.reads.retain(|r| r.tid != my);
            cell.reads.push(acc);
        }
    }

    // -- thread lifecycle ---------------------------------------------------

    fn register_thread(&self, parent: usize, site: Site) -> usize {
        let mut st = self.st();
        let tid = st.threads.len();
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        st.threads[parent].clock.tick(parent);
        st.threads.push(ThreadState {
            block: Block::Runnable,
            clock,
            wake: None,
            at: site,
        });
        st.live += 1;
        tid
    }

    fn join_wait(&self, my: usize, child: usize, site: Site) {
        let mut st = self.st();
        st.threads[my].at = site;
        let mut st = self.yield_and_park(st, my);
        loop {
            if st.threads[child].block == Block::Finished {
                let cc = st.threads[child].clock.clone();
                st.threads[my].clock.join(&cc);
                return;
            }
            st.threads[my].block = Block::Join(child);
            st = self.yield_and_park(st, my);
        }
    }

    fn first_park(&self, my: usize) {
        let st = self.st();
        drop(self.park(st, my));
    }

    /// Marks `my` finished, records a user panic as the schedule's
    /// failure, and hands the run token onward. Never panics (it runs
    /// on the far side of the model's `catch_unwind`).
    fn finish(&self, my: usize, user_panic: Option<String>) {
        let mut st = self.st();
        st.threads[my].block = Block::Finished;
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if t.block == Block::Join(my) {
                t.block = Block::Runnable;
            }
        }
        if let Some(msg) = user_panic {
            self.fail(&mut st, format!("thread t{my} panicked: {msg}"));
        }
        if st.aborting {
            if st.live == 0 {
                st.done = true;
            }
            self.cv.notify_all();
            return;
        }
        let _ = self.choose(&mut st, my);
    }
}

fn race_msg(created: Site, k1: &str, prior: &Access, k2: &str, tid: usize, site: Site) -> String {
    format!(
        "data race on RaceCell created at {created}:\n  {k1} by thread t{} at {}\n  {k2} by thread t{tid} at {site}\n  no happens-before edge orders these accesses",
        prior.tid, prior.at
    )
}

// ---------------------------------------------------------------------------
// Instrumentation hooks (called from crate::sync and crate::sync::atomic).

#[track_caller]
pub(crate) fn mutex_lock(addr: usize) -> bool {
    let Some((s, my)) = current() else {
        return false;
    };
    s.lock_acquire(my, addr, true, Location::caller());
    true
}

#[track_caller]
pub(crate) fn mutex_try_lock(addr: usize) -> Option<bool> {
    let (s, my) = current()?;
    Some(s.lock_try_acquire(my, addr, true, Location::caller()))
}

pub(crate) fn mutex_unlock(addr: usize) {
    if let Some((s, my)) = current() {
        s.lock_release(my, addr, true);
    }
}

#[track_caller]
pub(crate) fn rw_lock(addr: usize, excl: bool) -> bool {
    let Some((s, my)) = current() else {
        return false;
    };
    s.lock_acquire(my, addr, excl, Location::caller());
    true
}

#[track_caller]
pub(crate) fn rw_try_lock(addr: usize, excl: bool) -> Option<bool> {
    let (s, my) = current()?;
    Some(s.lock_try_acquire(my, addr, excl, Location::caller()))
}

pub(crate) fn rw_unlock(addr: usize, excl: bool) {
    if let Some((s, my)) = current() {
        s.lock_release(my, addr, excl);
    }
}

/// Model-level condvar wait; the caller must have dropped the mutex
/// guard immediately before (no scheduling point runs in between).
/// Returns whether the wait timed out. Only call when [`is_model`].
#[track_caller]
pub(crate) fn condvar_wait(cv_addr: usize, timeout: bool) -> bool {
    let Some((s, my)) = current() else {
        return false;
    };
    s.cv_wait(my, cv_addr, timeout, Location::caller())
}

/// Returns true when the notify was handled at model level.
#[track_caller]
pub(crate) fn condvar_notify(cv_addr: usize, all: bool) -> bool {
    let Some((s, my)) = current() else {
        return false;
    };
    s.cv_notify(my, cv_addr, all, Location::caller());
    true
}

/// An atomic access with the given acquire/release effect.
#[track_caller]
pub(crate) fn atomic_access(addr: usize, acq: bool, rel: bool) {
    if let Some((s, my)) = current() {
        s.atomic_op(my, addr, acq, rel, Location::caller());
    }
}

// ---------------------------------------------------------------------------
// RaceCell: plain shared data, checked for happens-before.

/// A cell of plain (non-atomic, non-lock-protected) shared data for
/// model code. Under a checked run every access is a scheduling point
/// and is checked against every concurrent access via vector clocks: two
/// accesses to the same cell, at least one a write, with no
/// happens-before edge between them fail the schedule with both sites.
///
/// Outside a checked run it degrades to a mutex-protected cell (the
/// mutex is an implementation detail — it models *unsynchronized* data;
/// the point is the checker, not the mutex).
pub struct RaceCell<T> {
    created: Site,
    inner: StdMutex<T>,
}

impl<T: Clone> RaceCell<T> {
    /// Creates a cell; the creation site appears in race reports.
    #[track_caller]
    pub fn new(value: T) -> RaceCell<T> {
        RaceCell {
            created: Location::caller(),
            inner: StdMutex::new(value),
        }
    }

    fn addr(&self) -> usize {
        (self as *const Self).cast::<()>() as usize
    }

    /// Reads the current value (a plain read, race-checked).
    #[track_caller]
    pub fn read(&self) -> T {
        if let Some((s, my)) = current() {
            s.cell_access(my, self.addr(), false, self.created, Location::caller());
        }
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Overwrites the value (a plain write, race-checked).
    #[track_caller]
    pub fn write(&self, value: T) {
        if let Some((s, my)) = current() {
            s.cell_access(my, self.addr(), true, self.created, Location::caller());
        }
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }

    /// Read-modify-write; checked as a write (conflicts with both
    /// concurrent reads and writes).
    #[track_caller]
    pub fn update(&self, f: impl FnOnce(&mut T)) {
        if let Some((s, my)) = current() {
            s.cell_access(my, self.addr(), true, self.created, Location::caller());
        }
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner));
    }
}

/// Cell state is keyed by address, and a model may free a cell and then
/// allocate a fresh one at the reused address (the single-flight model
/// does: a second miss wave's `Flight` can land on the first wave's
/// freed allocation). The two objects have disjoint lifetimes — the
/// allocator's free/alloc pair orders them — so the dead cell's access
/// history must not alias the new cell's. Retire it here; dropping is
/// not an access and not a scheduling point.
impl<T> Drop for RaceCell<T> {
    fn drop(&mut self) {
        if let Some((s, _)) = current() {
            s.st()
                .cells
                .remove(&((self as *const Self).cast::<()>() as usize));
        }
    }
}

// ---------------------------------------------------------------------------
// spawn/join for model threads.

/// Handle to a thread created by [`spawn`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Sched>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, yielding to the scheduler under
    /// a checked run. Mirrors [`std::thread::JoinHandle::join`].
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, child)) = &self.model {
            if let Some((_, my)) = current() {
                sched.join_wait(my, *child, Location::caller());
            }
        }
        self.inner.join()
    }
}

/// Spawns a thread. Inside a checked run the thread becomes a model
/// thread under the cooperative scheduler (with a spawn happens-before
/// edge); outside one this is exactly [`std::thread::spawn`].
#[track_caller]
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((sched, my)) = current() else {
        return JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        };
    };
    let site: Site = Location::caller();
    let tid = sched.register_thread(my, site);
    let s2 = sched.clone();
    let inner = std::thread::Builder::new()
        .name(format!("clio-model-t{tid}"))
        .spawn(move || model_main(s2, tid, f))
        .expect("invariant: model thread spawn failed");
    // Scheduling point after registration: the child may run first.
    sched.yield_at(my, site);
    JoinHandle {
        inner,
        model: Some((sched, tid)),
    }
}

fn model_main<T>(sched: Arc<Sched>, tid: usize, f: impl FnOnce() -> T) -> T {
    install_quiet_hook();
    let _ = CTX.try_with(|c| {
        *c.borrow_mut() = Some(ThreadCtx {
            sched: sched.clone(),
            tid,
        });
    });
    let s2 = sched.clone();
    let r = panic::catch_unwind(AssertUnwindSafe(move || {
        s2.first_park(tid);
        f()
    }));
    let user_panic = match &r {
        Ok(_) => None,
        Err(p) if p.is::<Abort>() => None,
        Err(p) => Some(panic_msg(p.as_ref())),
    };
    sched.finish(tid, user_panic);
    match r {
        Ok(v) => v,
        Err(p) => panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------------------
// The controller: schedule enumeration, replay, reporting.

/// What one explored schedule produced.
struct Outcome {
    failure: Option<String>,
    decisions: Vec<DecisionRec>,
}

impl Outcome {
    fn tids(&self) -> Vec<u8> {
        self.decisions
            .iter()
            .map(|d| d.cands[d.chosen as usize])
            .collect()
    }
    fn choices(&self) -> Vec<u8> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn dot_join(xs: &[u8]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Per-schedule seed for the random walk: a pure function of the
/// checker seed and the schedule index, so `CLIO_CHECK_REPLAY` can
/// regenerate any one schedule.
fn schedule_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    crate::rng::splitmix64(&mut s)
}

/// After a schedule, the deepest decision with an untried alternative
/// within the preemption bound; `None` when the bounded tree is
/// exhausted.
fn next_dfs_prefix(trace: &[DecisionRec], bound: u32) -> Option<Vec<u8>> {
    for d in (0..trace.len()).rev() {
        let rec = &trace[d];
        for alt in (rec.chosen + 1)..rec.cands.len() as u8 {
            let is_preempt = rec.prev_runnable && rec.cands[alt as usize] != rec.prev;
            if !is_preempt || rec.preempt_before < bound {
                let mut p: Vec<u8> = trace[..d].iter().map(|r| r.chosen).collect();
                p.push(alt);
                return Some(p);
            }
        }
    }
    None
}

/// The schedule target the CI model suite asserts per model: the
/// `CLIO_MODEL_SCHEDULES` override, else 2,000 under `CLIO_MODEL_CHECK=1`
/// (the release CI pass), else 1,000.
pub fn schedule_target() -> u64 {
    if let Ok(v) = std::env::var("CLIO_MODEL_SCHEDULES") {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n.max(1);
        }
    }
    match std::env::var("CLIO_MODEL_CHECK") {
        Ok(v) if v != "0" => 2000,
        _ => 1000,
    }
}

/// Exploration summary returned by a passing [`Checker::check`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Total schedules executed.
    pub schedules: u64,
    /// Distinct schedules (by the sequence of scheduled thread ids).
    pub distinct: u64,
    /// Schedules executed by the bounded-preemption DFS phase.
    pub dfs_schedules: u64,
    /// Whether DFS exhausted the entire bounded schedule tree.
    pub dfs_complete: bool,
    /// Schedules executed by the seeded random walk.
    pub random_schedules: u64,
    /// Deepest schedule, in scheduling points.
    pub max_depth: usize,
    /// Wall time for the whole exploration.
    pub wall: Duration,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedules ({} distinct; dfs {}{}; random {}; max depth {}) in {:?}",
            self.schedules,
            self.distinct,
            self.dfs_schedules,
            if self.dfs_complete { ", complete" } else { "" },
            self.random_schedules,
            self.max_depth,
            self.wall
        )
    }
}

enum Replay {
    Seed(u64, u64),
    Trace(Vec<u8>),
}

/// Builder for a checked run; see the module docs.
pub struct Checker {
    name: &'static str,
    preemption_bound: u32,
    dfs_budget: u64,
    random_budget: u64,
    seed: u64,
    max_steps: usize,
    replay: Option<Replay>,
}

struct ActiveGuard;
impl ActiveGuard {
    fn new() -> ActiveGuard {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        ActiveGuard
    }
}
impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Checker {
    /// A checker with the CI defaults: preemption bound 3, DFS and
    /// random budgets of [`schedule_target`] each, seed from
    /// `CLIO_CHECK_SEED` (default `0xC110_C4EC`), and replay taken from
    /// `CLIO_CHECK_REPLAY=<seed>:<index>` when set.
    pub fn new(name: &'static str) -> Checker {
        let target = schedule_target();
        let seed = std::env::var("CLIO_CHECK_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0xC110_C4EC);
        let replay = std::env::var("CLIO_CHECK_REPLAY").ok().and_then(|v| {
            let (s, i) = v.split_once(':')?;
            Some(Replay::Seed(s.trim().parse().ok()?, i.trim().parse().ok()?))
        });
        Checker {
            name,
            preemption_bound: 3,
            dfs_budget: target,
            random_budget: target,
            seed,
            max_steps: 200_000,
            replay,
        }
    }

    /// Max context switches away from a still-runnable thread per DFS
    /// schedule.
    pub fn preemption_bound(mut self, n: u32) -> Checker {
        self.preemption_bound = n;
        self
    }

    /// Max schedules for the DFS phase (0 disables it).
    pub fn dfs_budget(mut self, n: u64) -> Checker {
        self.dfs_budget = n;
        self
    }

    /// Number of random-walk schedules (0 disables the phase).
    pub fn random_schedules(mut self, n: u64) -> Checker {
        self.random_budget = n;
        self
    }

    /// Seed for the random walk.
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    /// Runs exactly one schedule: random schedule `index` of `seed`, as
    /// printed in a failure's `CLIO_CHECK_REPLAY=<seed>:<index>` line.
    pub fn replay(mut self, seed: u64, index: u64) -> Checker {
        self.replay = Some(Replay::Seed(seed, index));
        self
    }

    /// Runs exactly one schedule from a failure's
    /// `Checker::replay_trace("...")` decision string.
    pub fn replay_trace(mut self, trace: &str) -> Checker {
        let choices = trace
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("invariant: replay trace entries are small integers")
            })
            .collect();
        self.replay = Some(Replay::Trace(choices));
        self
    }

    /// Explores schedules of `model`; panics on the first failing one
    /// (race, deadlock, livelock, or model panic) with both access
    /// sites, the schedule, and a replay line. Returns the exploration
    /// [`Report`] when every schedule passes.
    pub fn check<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let start = Instant::now();
        let _active = ActiveGuard::new();
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut schedules = 0u64;
        let mut max_depth = 0usize;
        let mut dfs_schedules = 0u64;
        let mut dfs_complete = false;
        let mut random_schedules = 0u64;

        let run = |plan: Plan| -> Outcome { run_one(plan, &model, self.max_steps) };

        match &self.replay {
            Some(Replay::Seed(seed, index)) => {
                let rng = StdRng::seed_from_u64(schedule_seed(*seed, *index));
                let out = run(Plan::Random { rng });
                schedules = 1;
                max_depth = out.decisions.len();
                distinct.insert(fnv64(&out.tids()));
                if let Some(f) = &out.failure {
                    self.fail(f, &out, &seed_replay_line(*seed, *index));
                }
            }
            Some(Replay::Trace(choices)) => {
                let out = run(Plan::Dfs {
                    prefix: choices.clone(),
                });
                schedules = 1;
                max_depth = out.decisions.len();
                distinct.insert(fnv64(&out.tids()));
                if let Some(f) = &out.failure {
                    self.fail(f, &out, &trace_replay_line(&out.choices()));
                }
            }
            None => {
                // Phase 1: bounded-preemption DFS from the empty prefix.
                let mut prefix: Vec<u8> = Vec::new();
                while dfs_schedules < self.dfs_budget {
                    let out = run(Plan::Dfs { prefix });
                    dfs_schedules += 1;
                    schedules += 1;
                    max_depth = max_depth.max(out.decisions.len());
                    distinct.insert(fnv64(&out.tids()));
                    if let Some(f) = &out.failure {
                        self.fail(f, &out, &trace_replay_line(&out.choices()));
                    }
                    match next_dfs_prefix(&out.decisions, self.preemption_bound) {
                        Some(p) => prefix = p,
                        None => {
                            dfs_complete = true;
                            break;
                        }
                    }
                }
                // Phase 2: seeded random walk (skipped if DFS already
                // swept the whole bounded tree).
                if !dfs_complete {
                    for index in 0..self.random_budget {
                        let rng = StdRng::seed_from_u64(schedule_seed(self.seed, index));
                        let out = run(Plan::Random { rng });
                        random_schedules += 1;
                        schedules += 1;
                        max_depth = max_depth.max(out.decisions.len());
                        distinct.insert(fnv64(&out.tids()));
                        if let Some(f) = &out.failure {
                            self.fail(f, &out, &seed_replay_line(self.seed, index));
                        }
                    }
                }
            }
        }

        Report {
            schedules,
            distinct: distinct.len() as u64,
            dfs_schedules,
            dfs_complete,
            random_schedules,
            max_depth,
            wall: start.elapsed(),
        }
    }

    fn fail(&self, failure: &str, out: &Outcome, replay_line: &str) -> ! {
        panic!(
            "model check `{}` failed:\n{}\nschedule (thread ids): {}\nreplay: {}",
            self.name,
            failure,
            dot_join(&out.tids()),
            replay_line
        );
    }
}

fn seed_replay_line(seed: u64, index: u64) -> String {
    format!("CLIO_CHECK_REPLAY={seed}:{index} (or Checker::replay({seed}, {index}))")
}

fn trace_replay_line(choices: &[u8]) -> String {
    format!("Checker::replay_trace(\"{}\")", dot_join(choices))
}

/// Runs one schedule of `model` under `plan`.
fn run_one(plan: Plan, model: &Arc<dyn Fn() + Send + Sync>, max_steps: usize) -> Outcome {
    let sched = Arc::new(Sched {
        state: StdMutex::new(SchedState {
            threads: vec![ThreadState {
                block: Block::Runnable,
                clock: VClock::new(),
                wake: None,
                at: Location::caller(),
            }],
            running: 0,
            live: 1,
            aborting: false,
            done: false,
            failure: None,
            trace: Vec::new(),
            preemptions: 0,
            steps: 0,
            plan,
            locks: HashMap::new(),
            atomics: HashMap::new(),
            cells: HashMap::new(),
        }),
        cv: StdCondvar::new(),
        max_steps,
    });
    let s2 = sched.clone();
    let m2 = model.clone();
    let root = std::thread::Builder::new()
        .name("clio-model-t0".to_string())
        .spawn(move || model_main(s2, 0, move || m2()))
        .expect("invariant: model root thread spawn failed");
    let mut st = sched.st();
    while !st.done {
        st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    let failure = st.failure.take();
    let decisions = std::mem::take(&mut st.trace);
    drop(st);
    let _ = root.join();
    Outcome { failure, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering as O};
    use crate::sync::{Condvar, Mutex};

    /// Runs a checker expected to fail, returning the panic message.
    fn check_fails<F>(checker: Checker, model: F) -> String
    where
        F: Fn() + Send + Sync + 'static,
    {
        let err = panic::catch_unwind(AssertUnwindSafe(|| checker.check(model)))
            .expect_err("model check should have found a failure");
        match err.downcast::<String>() {
            Ok(s) => *s,
            Err(p) => panic!("unexpected panic payload: {}", panic_msg(p.as_ref())),
        }
    }

    fn small(name: &'static str) -> Checker {
        Checker::new(name).dfs_budget(300).random_schedules(100)
    }

    #[test]
    fn spawn_is_a_std_passthrough_outside_models() {
        let h = spawn(|| 41 + 1);
        assert_eq!(h.join().expect("invariant: thread returns"), 42);
    }

    #[test]
    fn canary_unsynchronized_writes_are_flagged_with_both_sites() {
        let msg = check_fails(small("canary"), || {
            let cell = Arc::new(RaceCell::new(0u64));
            let c2 = cell.clone();
            let t = spawn(move || c2.update(|v| *v += 1));
            cell.update(|v| *v += 1);
            let _ = t.join();
        });
        assert!(msg.contains("data race on RaceCell"), "{msg}");
        // Creation site plus BOTH access sites, all in this file.
        assert!(msg.matches("check.rs:").count() >= 3, "{msg}");
        assert!(msg.contains("by thread t0"), "{msg}");
        assert!(msg.contains("by thread t1"), "{msg}");
        assert!(msg.contains("no happens-before edge"), "{msg}");
        assert!(msg.contains("replay:"), "{msg}");
    }

    #[test]
    fn regression_address_reuse_does_not_alias_a_dead_cells_history() {
        // Found by the single-flight model: its second miss wave
        // allocated a fresh Flight on the first wave's freed address,
        // and the dead cell's recorded accesses produced a false race
        // against the new cell. On schedules where t1 runs to its park
        // first, `drop(a)` below frees the allocation on this thread
        // and the very next Arc::new reuses it — without the retire-on-
        // Drop fix, t1's read of the dead cell aliases b and the check
        // fails.
        let r = small("addr-reuse").check(|| {
            let gate = Arc::new(Mutex::new(()));
            let held = gate.lock();
            let a = Arc::new(RaceCell::new(0u64));
            let (a2, g2) = (a.clone(), gate.clone());
            let t = spawn(move || {
                let _ = a2.read();
                drop(a2); // t1's ref is gone before it parks on the gate
                drop(g2.lock());
            });
            drop(a);
            let b = Arc::new(RaceCell::new(0u64));
            b.write(7);
            drop(held);
            t.join().expect("invariant: model thread returns");
        });
        assert!(r.distinct >= 3, "{r}");
    }

    #[test]
    fn mutex_serialized_writes_are_race_free() {
        let r = small("mutex-ok").check(|| {
            let m = Arc::new(Mutex::new(()));
            let cell = Arc::new(RaceCell::new(0u64));
            let (m2, c2) = (m.clone(), cell.clone());
            let t = spawn(move || {
                let _g = m2.lock();
                c2.update(|v| *v += 1);
            });
            {
                let _g = m.lock();
                cell.update(|v| *v += 1);
            }
            t.join().expect("invariant: model thread returns");
            // join() gives a happens-before edge, so this read is safe.
            assert_eq!(cell.read(), 2);
        });
        assert!(r.distinct >= 2, "{r}");
    }

    #[test]
    fn release_acquire_publication_is_race_free() {
        let r = small("rel-acq-ok").check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let data = Arc::new(RaceCell::new(0u64));
            let (f2, d2) = (flag.clone(), data.clone());
            let t = spawn(move || {
                d2.write(42);
                f2.store(1, O::Release);
            });
            if flag.load(O::Acquire) == 1 {
                assert_eq!(data.read(), 42);
            }
            let _ = t.join();
        });
        assert!(r.distinct >= 2, "{r}");
    }

    #[test]
    fn relaxed_publication_is_a_race() {
        let msg = check_fails(small("relaxed-races"), || {
            let flag = Arc::new(AtomicU64::new(0));
            let data = Arc::new(RaceCell::new(0u64));
            let (f2, d2) = (flag.clone(), data.clone());
            let t = spawn(move || {
                d2.write(42);
                f2.store(1, O::Relaxed);
            });
            if flag.load(O::Relaxed) == 1 {
                let _ = data.read();
            }
            let _ = t.join();
        });
        assert!(msg.contains("data race on RaceCell"), "{msg}");
        assert!(msg.contains("write by thread"), "{msg}");
    }

    #[test]
    fn lost_wakeup_is_reported_as_deadlock() {
        let msg = check_fails(small("lost-wakeup"), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            });
            {
                // Flips the flag but forgets to notify: the waiter can
                // block forever whenever it checked the flag first.
                let mut g = pair.0.lock();
                *g = true;
            }
            let _ = t.join();
        });
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("blocked"), "{msg}");
    }

    #[test]
    fn timed_waiters_stay_schedulable() {
        // Same lost wakeup as above, but with wait_timeout: the
        // scheduler may time the waiter out, so no schedule deadlocks.
        let r = small("timed-wait").check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    let (g2, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
                    g = g2;
                    if timed_out {
                        return;
                    }
                }
            });
            {
                let mut g = pair.0.lock();
                *g = true;
            }
            t.join().expect("invariant: model thread returns");
        });
        assert!(r.schedules >= 1, "{r}");
    }

    #[test]
    fn notify_one_handshake_completes() {
        let r = small("handshake").check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = pair.clone();
            let t = spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                *g = true;
                cv.notify_one();
            });
            {
                let (m, cv) = &*pair;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            }
            t.join().expect("invariant: model thread returns");
        });
        assert!(r.distinct >= 2, "{r}");
    }

    #[test]
    fn dfs_exhausts_the_bounded_tree_of_a_tiny_model() {
        let r = Checker::new("dfs-complete")
            .preemption_bound(8)
            .dfs_budget(50_000)
            .check(|| {
                let a = Arc::new(AtomicU64::new(0));
                let a2 = a.clone();
                let t = spawn(move || {
                    a2.fetch_add(1, O::SeqCst);
                });
                a.fetch_add(1, O::SeqCst);
                t.join().expect("invariant: model thread returns");
                assert_eq!(a.load(O::SeqCst), 2);
            });
        assert!(r.dfs_complete, "{r}");
        assert_eq!(r.random_schedules, 0, "{r}");
        assert!(r.distinct >= 3, "{r}");
    }

    #[test]
    fn model_assertion_failures_are_schedule_failures() {
        let msg = check_fails(small("assert-fails"), || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = a.clone();
            let t = spawn(move || {
                a2.store(1, O::SeqCst);
            });
            // Fails on any schedule that runs the child store first.
            assert_eq!(a.load(O::SeqCst), 0, "observed the store");
            let _ = t.join();
        });
        assert!(msg.contains("observed the store"), "{msg}");
        assert!(msg.contains("replay:"), "{msg}");
    }

    // A minimal always-racy model for the replay tests (non-capturing,
    // so the same closure can drive both the original and the replay).
    fn racy_model() {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = cell.clone();
        let t = spawn(move || c2.write(1));
        cell.write(2);
        let _ = t.join();
    }

    #[test]
    fn random_failures_replay_byte_identically_from_the_printed_seed() {
        let first = check_fails(
            Checker::new("seed-replay")
                .dfs_budget(0)
                .random_schedules(16)
                .seed(42),
            racy_model,
        );
        let spec = first
            .split("CLIO_CHECK_REPLAY=")
            .nth(1)
            .expect("failure message carries a seed replay line")
            .split_whitespace()
            .next()
            .expect("replay spec is non-empty");
        let (seed, index) = spec.split_once(':').expect("replay spec is seed:index");
        let again = check_fails(
            Checker::new("seed-replay").replay(
                seed.parse().expect("seed parses"),
                index.parse().expect("index parses"),
            ),
            racy_model,
        );
        assert_eq!(first, again, "replay must reproduce byte-identically");
    }

    #[test]
    fn dfs_failures_replay_byte_identically_from_the_printed_trace() {
        let first = check_fails(
            Checker::new("trace-replay")
                .dfs_budget(16)
                .random_schedules(0),
            racy_model,
        );
        let trace = first
            .split("Checker::replay_trace(\"")
            .nth(1)
            .expect("failure message carries a trace replay line")
            .split('"')
            .next()
            .expect("trace is quoted");
        let again = check_fails(Checker::new("trace-replay").replay_trace(trace), racy_model);
        assert_eq!(first, again, "trace replay must reproduce byte-identically");
    }
}
