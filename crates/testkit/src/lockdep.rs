//! Lock-order validator ("lockdep") backing the [`crate::sync`] wrappers.
//!
//! Modeled on the kernel's lock-order validator: every lock belongs to a
//! *class* (keyed by creation site, or by an explicit name given via
//! `Mutex::with_class`), each thread keeps a stack of the classes it
//! currently holds, and every time a thread acquires lock `B` while
//! holding lock `A` the directed edge `A -> B` is recorded in a global
//! graph. If a new edge would close a cycle — some other code path
//! already acquired the locks in the opposite order — the acquisition
//! panics immediately with both acquisition sites and backtraces, even
//! though this particular schedule did not deadlock. That is the whole
//! point: the validator turns a probabilistic deadlock into a
//! deterministic test failure.
//!
//! The validator is **off by default** and enabled by `CLIO_LOCKDEP=1`
//! in the environment (or [`force_enable`] from tests). When off, the
//! only cost per lock operation is one relaxed atomic load and a
//! predictable branch; nothing is allocated and no thread-local is
//! touched.
//!
//! Two refinements keep the graph honest for this workspace:
//!
//! * Edges between the *same* class are ignored. Shard pools create many
//!   locks at one site on purpose (one class), and `RwLock` readers may
//!   legitimately nest shared acquisitions.
//! * Classes can be marked *io-safe* (`with_class_io`): the device layer
//!   calls [`assert_no_locks_held`] before every blocking write, and
//!   only locks of classes *not* marked io-safe trip that assert. The
//!   group-commit leader legitimately holds the append-state mutex
//!   across the device write it is committing; nothing else should be.
//!
//! This module deliberately uses raw [`std::sync`] primitives for its own
//! registry and graph — instrumenting the instrumentation would recurse.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

const MODE_UNKNOWN: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_ON: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNKNOWN);

/// Whether lock-order tracking is active for this process.
///
/// First call consults `CLIO_LOCKDEP` (any value other than empty or
/// `0` enables); the answer is then cached in an atomic, so the hot
/// path is a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_ON => true,
        MODE_OFF => false,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> bool {
    let on = std::env::var("CLIO_LOCKDEP")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    MODE.store(if on { MODE_ON } else { MODE_OFF }, Ordering::Relaxed);
    on
}

/// Turn the validator on for the rest of the process, regardless of the
/// environment. Test hook; sticky.
#[doc(hidden)]
pub fn force_enable() {
    MODE.store(MODE_ON, Ordering::Relaxed);
}

/// Per-lock metadata embedded in every `sync::Mutex` / `sync::RwLock`.
///
/// The class id is resolved lazily on first tracked acquisition and
/// cached (`0` = unresolved, else `class + 1`), so lock construction
/// stays `const` and allocation-free.
pub(crate) struct LockMeta {
    name: Option<&'static str>,
    io_safe: bool,
    site: &'static Location<'static>,
    class: AtomicU32,
}

impl LockMeta {
    pub(crate) const fn new(
        site: &'static Location<'static>,
        name: Option<&'static str>,
        io_safe: bool,
    ) -> LockMeta {
        LockMeta {
            name,
            io_safe,
            site,
            class: AtomicU32::new(0),
        }
    }
}

#[derive(Clone, Copy)]
struct ClassInfo {
    name: Option<&'static str>,
    io_safe: bool,
    site: &'static Location<'static>,
}

fn class_label(info: ClassInfo) -> String {
    match info.name {
        Some(n) => format!("`{n}` (created at {})", info.site),
        None => format!("`{}`", info.site),
    }
}

#[derive(PartialEq, Eq, Hash)]
enum ClassKey {
    Named(&'static str),
    Site(&'static str, u32, u32),
}

#[derive(Default)]
struct Registry {
    classes: Vec<ClassInfo>,
    by_key: HashMap<ClassKey, u32>,
}

static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();

fn registry() -> &'static StdMutex<Registry> {
    REGISTRY.get_or_init(|| StdMutex::new(Registry::default()))
}

fn class_info(class: u32) -> ClassInfo {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.classes[class as usize]
}

/// Resolve (and cache) the class id for a lock.
fn class_of(meta: &LockMeta) -> u32 {
    let cached = meta.class.load(Ordering::Relaxed);
    if cached != 0 {
        return cached - 1;
    }
    register_class(meta)
}

#[cold]
fn register_class(meta: &LockMeta) -> u32 {
    let key = match meta.name {
        Some(n) => ClassKey::Named(n),
        None => ClassKey::Site(meta.site.file(), meta.site.line(), meta.site.column()),
    };
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let next = reg.classes.len() as u32;
    let id = *reg.by_key.entry(key).or_insert(next);
    if id == next {
        reg.classes.push(ClassInfo {
            name: meta.name,
            io_safe: meta.io_safe,
            site: meta.site,
        });
    }
    drop(reg);
    meta.class.store(id + 1, Ordering::Relaxed);
    id
}

/// One recorded "held A, then acquired B" ordering.
struct Edge {
    /// Where the already-held lock had been acquired.
    holder_at: &'static Location<'static>,
    /// Where the new lock was acquired.
    acquire_at: &'static Location<'static>,
    /// Backtrace of the acquisition that first created this edge.
    backtrace: String,
}

#[derive(Default)]
struct Graph {
    edges: HashMap<(u32, u32), Edge>,
    adj: HashMap<u32, Vec<u32>>,
}

static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();

fn graph() -> &'static StdMutex<Graph> {
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

struct HeldEntry {
    class: u32,
    at: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

/// Token carried by a lock guard: which class (if any) to pop on drop.
#[derive(Default)]
pub(crate) struct Held {
    class: Option<u32>,
}

impl Held {
    pub(crate) const fn none() -> Held {
        Held { class: None }
    }
}

/// Record a blocking acquisition: check for an ordering cycle against
/// everything this thread already holds, then push onto the held stack.
///
/// Called *before* blocking on the real lock so an acquisition that
/// would complete a deadlock cycle panics instead of hanging.
pub(crate) fn on_acquire(meta: &LockMeta, at: &'static Location<'static>) -> Held {
    if !enabled() {
        return Held::none();
    }
    let class = class_of(meta);
    push_with_edges(class, at);
    Held { class: Some(class) }
}

/// Record a successful *try*-acquisition. Trylocks never block, so they
/// cannot complete a deadlock cycle and contribute no ordering edges;
/// the lock still lands on the held stack so [`assert_no_locks_held`]
/// and later edges from this thread see it.
pub(crate) fn on_acquire_try(meta: &LockMeta, at: &'static Location<'static>) -> Held {
    if !enabled() {
        return Held::none();
    }
    let class = class_of(meta);
    HELD.with(|h| h.borrow_mut().push(HeldEntry { class, at }));
    Held { class: Some(class) }
}

/// Pop a guard's class from the held stack.
pub(crate) fn on_release(held: &mut Held) {
    let Some(class) = held.class.take() else {
        return;
    };
    HELD.with(|h| {
        let mut stack = h.borrow_mut();
        if let Some(i) = stack.iter().rposition(|e| e.class == class) {
            stack.remove(i);
        }
    });
}

/// Condvar support: release the guard's tracking before blocking in
/// `wait`, remembering the class for re-acquisition.
pub(crate) fn on_unlock_for_wait(held: &mut Held) -> Option<u32> {
    let class = held.class.take();
    if let Some(c) = class {
        let mut h = Held { class: Some(c) };
        on_release(&mut h);
    }
    class
}

/// Condvar support: the mutex was re-acquired after a wait.
pub(crate) fn on_wait_reacquire(class: Option<u32>, at: &'static Location<'static>) -> Held {
    let Some(class) = class else {
        return Held::none();
    };
    push_with_edges(class, at);
    Held { class: Some(class) }
}

fn push_with_edges(class: u32, at: &'static Location<'static>) {
    HELD.with(|h| {
        let mut stack = h.borrow_mut();
        for held in stack.iter() {
            if held.class != class {
                record_edge(held.class, held.at, class, at);
            }
        }
        stack.push(HeldEntry { class, at });
    });
}

/// Record `from -> to`; panic if the reverse ordering is already
/// reachable (the new edge would close a cycle).
fn record_edge(
    from: u32,
    holder_at: &'static Location<'static>,
    to: u32,
    acquire_at: &'static Location<'static>,
) {
    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
    if g.edges.contains_key(&(from, to)) {
        return;
    }
    if let Some(path) = find_path(&g, to, from) {
        let report = cycle_report(&g, &path, from, holder_at, to, acquire_at);
        drop(g);
        panic!("{report}");
    }
    g.edges.insert(
        (from, to),
        Edge {
            holder_at,
            acquire_at,
            backtrace: Backtrace::force_capture().to_string(),
        },
    );
    g.adj.entry(from).or_default().push(to);
}

/// Directed path `start -> ... -> goal` over recorded edges, if any.
fn find_path(g: &Graph, start: u32, goal: u32) -> Option<Vec<u32>> {
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let mut stack = vec![start];
    parent.insert(start, start);
    while let Some(n) = stack.pop() {
        if n == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while cur != start {
                cur = parent[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &next in g.adj.get(&n).into_iter().flatten() {
            parent.entry(next).or_insert_with(|| {
                stack.push(next);
                n
            });
        }
    }
    None
}

fn cycle_report(
    g: &Graph,
    path: &[u32],
    from: u32,
    holder_at: &'static Location<'static>,
    to: u32,
    acquire_at: &'static Location<'static>,
) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "lockdep: lock-order inversion detected");
    let _ = writeln!(
        out,
        "  this thread holds {} (acquired at {holder_at})",
        class_label(class_info(from)),
    );
    let _ = writeln!(
        out,
        "  and is acquiring {} at {acquire_at}",
        class_label(class_info(to)),
    );
    let _ = writeln!(out, "  but the opposite ordering was already recorded:");
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(e) = g.edges.get(&(a, b)) {
            let _ = writeln!(
                out,
                "    {} (held, acquired at {}) -> {} (acquired at {})",
                class_label(class_info(a)),
                e.holder_at,
                class_label(class_info(b)),
                e.acquire_at,
            );
            let _ = writeln!(out, "    backtrace of that prior acquisition:");
            for line in e.backtrace.lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    let _ = writeln!(out, "  backtrace of the current acquisition:");
    for line in Backtrace::force_capture().to_string().lines() {
        let _ = writeln!(out, "    {line}");
    }
    out
}

/// Panic if this thread holds any lock whose class is not io-safe.
///
/// The device layer calls this at the top of every blocking write so
/// "lock held across device I/O" becomes a deterministic test failure
/// under `CLIO_LOCKDEP=1`. Classes that legitimately span device writes
/// (the append-state mutex, the volume sequence) opt out via
/// `with_class_io`.
pub fn assert_no_locks_held(ctx: &str) {
    if !enabled() {
        return;
    }
    let offending: Vec<String> = HELD.with(|h| {
        h.borrow()
            .iter()
            .filter(|e| !class_info(e.class).io_safe)
            .map(|e| {
                format!(
                    "    {} acquired at {}",
                    class_label(class_info(e.class)),
                    e.at
                )
            })
            .collect()
    });
    if !offending.is_empty() {
        panic!(
            "lockdep: non-io lock(s) held entering blocking device I/O ({ctx}):\n{}\n  \
             mark the class with `with_class_io` only if holding it across \
             device writes is intended",
            offending.join("\n"),
        );
    }
}

/// Number of tracked locks the current thread holds. Test hook.
#[doc(hidden)]
pub fn held_count() -> usize {
    HELD.with(|h| h.borrow().len())
}
