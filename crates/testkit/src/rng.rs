//! A seeded, reproducible PRNG: SplitMix64 seeding into xoshiro256++.
//!
//! Replaces `rand` for everything in the workspace. This is the whole
//! point of the testkit: every random choice a test, workload generator
//! or fault injector makes is a pure function of a single printed `u64`
//! seed, so any failure anywhere is replayable from its log line. Not
//! cryptographic — xoshiro256++ (Blackman & Vigna) is a fast, solid
//! statistical generator, which is all a test harness needs.
//!
//! The API mirrors the `rand` subset the workspace used as inherent
//! methods (`seed_from_u64`, `gen_range`, `gen_bool`, `fill`), so call
//! sites migrate by swapping the import.

/// One step of the SplitMix64 sequence; advances `state` and returns the
/// next output. Also used standalone to derive per-case seeds.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator whose entire stream is determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as the xoshiro authors recommend: it
        // guarantees a non-zero state for every seed (including 0) and
        // decorrelates nearby seeds.
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// `true` with probability `p` (clamped to `[0, 1]`). Always consumes
    /// one draw, so the stream stays aligned regardless of `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa, uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fills `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// A uniform value below `bound` via the widening-multiply method.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A range that [`StdRng::gen_range`] can sample from. The element type
/// is a trait parameter (not an associated type) so that inference can
/// flow backward from the call site's expected type, as `rand`'s did.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn zero_seed_still_generates() {
        let mut r = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u16..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0u64..=u64::MAX);
            let _ = z; // full-domain draw must not panic
        }
        // All values in a small range are reachable.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).filter(|_| r.gen_bool(0.0)).count() == 0);
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).filter(|_| r.gen_bool(1.0)).count() == 100);
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Same seed, same bytes.
        let mut r2 = StdRng::seed_from_u64(3);
        let mut buf2 = [0u8; 13];
        r2.fill(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
