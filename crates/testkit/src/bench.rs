//! A wall-clock micro-benchmark timer (replaces the external
//! benchmark harness the workspace once used).
//!
//! No statistics engine, no HTML reports — just the part a reproduction
//! needs: warm the code path up, take a fixed number of fixed-duration
//! samples, and report the median (with min/mean for context). Medians
//! over per-sample means are robust against scheduler noise, which is the
//! dominant error source for in-memory micro-benchmarks like ours.
//!
//! Environment knobs: `CLIO_BENCH_SAMPLES` (default 20),
//! `CLIO_BENCH_SAMPLE_MS` (default 50), `CLIO_BENCH_WARMUP_MS`
//! (default 200).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's result, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Sampled {
    /// Benchmark name.
    pub name: String,
    /// Median of the per-sample mean iteration times.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The timing harness: holds the sampling configuration and prints one
/// report line per benchmark.
pub struct Bench {
    samples: usize,
    sample_time: Duration,
    warmup: Duration,
    results: Vec<Sampled>,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench::from_env()
    }
}

impl Bench {
    /// A harness configured from the environment (or defaults).
    #[must_use]
    pub fn from_env() -> Bench {
        let env = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        };
        Bench {
            samples: env("CLIO_BENCH_SAMPLES", 20).max(1) as usize,
            sample_time: Duration::from_millis(env("CLIO_BENCH_SAMPLE_MS", 50).max(1)),
            warmup: Duration::from_millis(env("CLIO_BENCH_WARMUP_MS", 200)),
            results: Vec::new(),
        }
    }

    /// Times `f`, prints a report line, and records the result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        // Warmup: run for the configured duration while estimating the
        // per-iteration cost, so each sample times a sensible batch.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warmup && warm_iters >= 5 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((self.sample_time.as_secs_f64() / per_iter) as u64).max(1);

        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        let result = Sampled {
            name: name.to_owned(),
            median_ns,
            min_ns: sample_ns[0],
            mean_ns: sample_ns.iter().sum::<f64>() / sample_ns.len() as f64,
            iters_per_sample,
            samples: sample_ns.len(),
        };
        println!(
            "bench {name:<32} median {:>10}/iter   (min {}, mean {}, {} samples x {} iters)",
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            fmt_ns(result.mean_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// All results recorded so far, in run order.
    #[must_use]
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }

    #[test]
    fn bench_records_plausible_timings() {
        let mut b = Bench {
            samples: 5,
            sample_time: Duration::from_millis(2),
            warmup: Duration::from_millis(2),
            results: Vec::new(),
        };
        b.bench("selftest/sum", || (0..100u64).sum::<u64>());
        let r = &b.results()[0];
        assert_eq!(r.samples, 5);
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
    }
}
