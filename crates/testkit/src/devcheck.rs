//! Conformance checking for vectored device appends.
//!
//! `LogDevice::append_blocks` has a loop-of-`append_block` default, and six
//! native implementations that each take a different shortcut (one lock,
//! one syscall, replica catch-up, tail sealing, ...). The group-commit
//! write path depends on every one of them producing *exactly* the bytes
//! the loop would have produced, so the device crate's conformance test
//! drives each implementation and the fallback through identical append
//! schedules and byte-compares the resulting media.
//!
//! This module holds the device-agnostic harness. `clio-testkit` sits
//! below `clio-device` in the dependency order, so the device under test
//! is reached through closures rather than the `LogDevice` trait.

/// A vectored-append closure: `(expected_block_no, block_images)`.
pub type BatchFn = Box<dyn FnMut(u64, &[Vec<u8>]) -> Result<(), String>>;
/// A single-append closure: `(expected_block_no, block_image)`.
pub type AppendFn = Box<dyn FnMut(u64, &[u8]) -> Result<(), String>>;

/// A device under conformance test, abstracted behind closures so the
/// harness does not need the `LogDevice` trait.
///
/// `append_batch` forwards to the implementation's `append_blocks`;
/// `append_one` forwards to plain `append_block`. `read` returns one
/// written block's bytes; `end` the current append point. Errors are
/// stringified — the harness only compares success/failure shape, not
/// error payloads.
pub struct BatchDevice {
    /// Vectored append at the given expected block number.
    pub append_batch: BatchFn,
    /// Single-block append at the given expected block number.
    pub append_one: AppendFn,
    /// Read one written block.
    pub read: Box<dyn Fn(u64) -> Result<Vec<u8>, String>>,
    /// Current append point (written-block count).
    pub end: Box<dyn Fn() -> u64>,
}

/// Deterministic per-block fill so every block in every schedule is
/// distinguishable: byte `j` of block `i` is a mix of both indices.
fn block_image(block_size: usize, i: u64) -> Vec<u8> {
    (0..block_size)
        .map(|j| {
            (i as u8)
                .wrapping_mul(31)
                .wrapping_add(j as u8)
                .wrapping_add(1)
        })
        .collect()
}

/// The batch shapes every schedule is built from: singletons, pairs, a
/// long run, and uneven mixes. Values are batch lengths.
const SCHEDULES: &[&[usize]] = &[
    &[1],
    &[3],
    &[1, 1, 1],
    &[2, 1],
    &[1, 4, 2],
    &[8],
    &[2, 2, 2],
    &[5, 1, 3],
];

/// Drives one freshly-made device per (schedule, mode) through the append
/// schedules and asserts the vectored implementation is byte-for-byte
/// equivalent to a loop of single appends.
///
/// `mk` must return a *fresh, empty* device each call. All batches in the
/// schedules fit comfortably in 32 blocks; devices should be created with
/// at least that capacity.
///
/// # Panics
///
/// Panics (test-style, with context) on any divergence: block contents,
/// append point, or error behaviour at a wrong append point.
pub fn check_batch_append_conformance(block_size: usize, mk: impl Fn() -> BatchDevice) {
    for (si, schedule) in SCHEDULES.iter().enumerate() {
        let mut vectored = mk();
        let mut looped = mk();
        let mut next = 0u64;
        for &len in *schedule {
            let images: Vec<Vec<u8>> = (0..len as u64)
                .map(|k| block_image(block_size, next + k))
                .collect();
            (vectored.append_batch)(next, &images)
                .unwrap_or_else(|e| panic!("schedule {si}: vectored append at {next} failed: {e}"));
            for (k, img) in images.iter().enumerate() {
                (looped.append_one)(next + k as u64, img).unwrap_or_else(|e| {
                    panic!(
                        "schedule {si}: looped append at {} failed: {e}",
                        next + k as u64
                    )
                });
            }
            next += len as u64;
        }
        assert_eq!(
            (vectored.end)(),
            next,
            "schedule {si}: vectored device append point"
        );
        assert_eq!(
            (looped.end)(),
            next,
            "schedule {si}: looped device append point"
        );
        for b in 0..next {
            let v = (vectored.read)(b)
                .unwrap_or_else(|e| panic!("schedule {si}: vectored read of block {b}: {e}"));
            let l = (looped.read)(b)
                .unwrap_or_else(|e| panic!("schedule {si}: looped read of block {b}: {e}"));
            assert_eq!(v, l, "schedule {si}: block {b} diverges");
            assert_eq!(
                v,
                block_image(block_size, b),
                "schedule {si}: block {b} corrupted"
            );
        }
        // Both reject a batch that is not at the append point, and neither
        // moves the end while doing so.
        let stale = vec![block_image(block_size, 99)];
        assert!(
            (vectored.append_batch)(next + 2, &stale).is_err(),
            "schedule {si}: vectored append past the end must fail"
        );
        assert!(
            (looped.append_one)(next + 2, &stale[0]).is_err(),
            "schedule {si}: looped append past the end must fail"
        );
        assert_eq!(
            (vectored.end)(),
            next,
            "schedule {si}: failed batch moved the end"
        );
        // An empty batch is a universal no-op.
        (vectored.append_batch)(next, &[])
            .unwrap_or_else(|e| panic!("schedule {si}: empty batch must succeed: {e}"));
        assert_eq!(
            (vectored.end)(),
            next,
            "schedule {si}: empty batch moved the end"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use std::sync::Arc;

    /// A minimal in-memory append-only device used to self-test the
    /// harness (the real devices live above this crate).
    fn toy(batch_bug: bool) -> BatchDevice {
        let blocks: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let (b1, b2, b3) = (blocks.clone(), blocks.clone(), blocks.clone());
        BatchDevice {
            append_batch: Box::new(move |expected, imgs| {
                let mut g = b1.lock();
                if expected != g.len() as u64 {
                    return Err("not append-only".into());
                }
                for img in imgs {
                    let mut img = img.clone();
                    if batch_bug {
                        img[0] ^= 0xFF;
                    }
                    g.push(img);
                }
                Ok(())
            }),
            append_one: Box::new(move |expected, img| {
                let mut g = b2.lock();
                if expected != g.len() as u64 {
                    return Err("not append-only".into());
                }
                g.push(img.to_vec());
                Ok(())
            }),
            read: Box::new(move |b| {
                b3.lock()
                    .get(b as usize)
                    .cloned()
                    .ok_or_else(|| "unwritten".into())
            }),
            end: Box::new(move || blocks.lock().len() as u64),
        }
    }

    #[test]
    fn harness_accepts_a_correct_device() {
        check_batch_append_conformance(32, || toy(false));
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn harness_catches_a_batch_that_mangles_bytes() {
        check_batch_append_conformance(32, || toy(true));
    }
}
