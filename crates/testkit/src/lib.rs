//! In-tree, std-only test and measurement infrastructure for the Clio
//! workspace.
//!
//! The workspace is **std-only by policy**: tier-1 verification
//! (`cargo build --release --offline && cargo test -q --offline`) must
//! succeed on a machine with no network and no registry cache, because the
//! paper reproduction's numbers (Fig. 2–4, Table 1) are only trustworthy
//! if anyone can re-run them hermetically. This crate supplies the four
//! things the workspace previously pulled from crates.io:
//!
//! * [`sync`] — API-compatible, poison-transparent wrappers over
//!   [`std::sync`]'s `Mutex`/`RwLock`/`Condvar` (the guard-returning subset
//!   the workspace used: `lock()`/`read()`/`write()` return guards
//!   directly, never a `Result`), instrumented for lock-order validation.
//! * [`lockdep`] — the validator behind those wrappers: lock classes,
//!   a per-thread held stack, and a global acquisition-order graph with
//!   cycle detection, enabled by `CLIO_LOCKDEP=1`.
//! * [`rng`] — a seeded SplitMix64/xoshiro256++ PRNG replacing `rand`.
//!   Everything is reproducible from a printed `u64` seed.
//! * [`prop`] — a small property-testing harness:
//!   tape-based generators, greedy input shrinking, case count via
//!   `CLIO_PROP_CASES`, exact-failure replay via `CLIO_PROP_SEED`, and
//!   explicit named regression cases.
//! * [`bench`] — a wall-clock micro-benchmark timer:
//!   warmup, fixed-duration samples, median-of-samples reporting.
//! * [`sim`] — deterministic whole-system simulation: a seeded
//!   virtual-time scheduler over simulated clients, an operation-history
//!   recorder, and a linearizability checker specialized to the log
//!   model. One `u64` seed reproduces an entire multi-client,
//!   multi-crash run.
//! * [`check`] — a loom-lite concurrency model checker: a cooperative
//!   scheduler explores thread interleavings of small protocol models
//!   (bounded-preemption DFS + seeded random walk with byte-identical
//!   replay), while a vector-clock ([`vclock`]) happens-before checker
//!   reports data races with both access sites. [`sync`] and
//!   [`sync::atomic`] are its instrumentation surface.
//!
//! It also hosts shared cross-crate test harnesses, currently
//! [`devcheck`] — byte-for-byte conformance schedules for vectored
//! device appends (`LogDevice::append_blocks`).

pub mod bench;
pub mod check;
pub mod devcheck;
pub mod lockdep;
pub mod prop;
pub mod rng;
pub mod sim;
pub mod sync;
pub mod vclock;
