//! Deterministic whole-system simulation: a virtual-time scheduler, an
//! operation-history recorder, and a linearizability checker specialized
//! to the log-file model.
//!
//! This is the FoundationDB-style composition point for everything the
//! testkit already provides: all nondeterminism — which client runs next,
//! when a crash fires, what a torn tail contains — is drawn from one
//! seeded [`crate::rng::StdRng`] stream, so a whole multi-client,
//! multi-crash run is a pure function of a printed `u64` seed and
//! `CLIO_PROP_SEED=<n>` replays any failure byte-identically.
//!
//! The pieces are deliberately service-agnostic (plain integers for log
//! ids, values, and addresses) so this module sits at the bottom of the
//! dependency graph; the driver that wires them to the real `LogService`
//! lives in `crates/core/tests/simulation.rs`.
//!
//! # Model
//!
//! The scheduler serializes execution: exactly one client operation runs
//! at a time, and the seeded interleaving order *is* the linearization
//! order. The checker therefore does not search over permutations — it
//! verifies that the recorded total order satisfies the log model:
//!
//! * **receipt-order** — append receipts for one log file are strictly
//!   increasing in address and non-decreasing in timestamp;
//! * **read-your-writes** — reading a receipt's address returns exactly
//!   the value that was appended;
//! * **cursor-sequence** — a cursor observes the log's live entries in
//!   order with no gaps, duplicates, or reordering, and reports
//!   exhaustion only at the true end;
//! * **recovery-prefix** — the entries surviving a crash are a prefix of
//!   the acknowledged appends (a failed in-flight append may sit at the
//!   cut point: the crash makes it *indeterminate*);
//! * **durable-loss** — everything acknowledged at or before the last
//!   *forced* acknowledgement survives every crash;
//! * **unique-id** — a unique-id lookup finds an entry iff it is live,
//!   and returns its exact value;
//! * **final-scan** — after a clean shutdown flush, a full scan equals
//!   the live sequence exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::rng::StdRng;

// ---------------------------------------------------------------------
// Virtual time.
// ---------------------------------------------------------------------

/// The simulation's virtual clock, in microseconds. Shared (via `Arc`)
/// between the scheduler and whatever the system under test uses as its
/// semantic clock, so entry timestamps advance with simulated time and
/// never touch the host clock (`clio-lint`'s `no-wallclock` rule keeps it
/// that way).
#[derive(Debug, Default)]
pub struct SimClock {
    us: AtomicU64,
}

impl SimClock {
    /// A clock starting at `start_us` virtual microseconds.
    #[must_use]
    pub fn starting_at(start_us: u64) -> SimClock {
        SimClock {
            us: AtomicU64::new(start_us),
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }

    /// Advances virtual time to at least `us` (never backwards).
    pub fn advance_to(&self, us: u64) {
        self.us.fetch_max(us, Ordering::Relaxed);
    }

    /// Consumes one unique microsecond tick and returns the new time —
    /// the hook for a semantic `Clock` implementation that needs strictly
    /// increasing timestamps.
    pub fn tick(&self) -> u64 {
        self.us.fetch_add(1, Ordering::Relaxed) + 1
    }
}

// ---------------------------------------------------------------------
// Scheduler.
// ---------------------------------------------------------------------

/// A seeded virtual-time scheduler over N simulated clients.
///
/// Each client is either *runnable* or *blocked until* some virtual time
/// (set by [`Scheduler::charge`] when its last operation's modelled cost
/// is known). [`Scheduler::pick`] advances the clock to the earliest wake
/// time and chooses uniformly at random — from the seeded stream — among
/// every runnable client, which is where interleaving diversity comes
/// from.
pub struct Scheduler {
    clock: Arc<SimClock>,
    rng: StdRng,
    wake: Vec<u64>,
}

impl Scheduler {
    /// A scheduler for `clients` clients whose entire interleaving is a
    /// function of `seed`.
    #[must_use]
    pub fn new(seed: u64, clients: usize, clock: Arc<SimClock>) -> Scheduler {
        assert!(clients > 0, "scheduler needs at least one client");
        let now = clock.now_us();
        Scheduler {
            clock,
            rng: StdRng::seed_from_u64(seed),
            wake: vec![now; clients],
        }
    }

    /// Number of clients being scheduled.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.wake.len()
    }

    /// The shared virtual clock.
    #[must_use]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// The current virtual time.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The scheduler's seeded randomness stream (also used by drivers for
    /// workload choices, so one seed covers everything).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Picks the next client to run: advances virtual time to the
    /// earliest wake point and chooses uniformly among all clients
    /// runnable at that time.
    pub fn pick(&mut self) -> u32 {
        let earliest = self
            .wake
            .iter()
            .copied()
            .min()
            .expect("invariant: scheduler has at least one client");
        self.clock.advance_to(earliest);
        let now = self.clock.now_us();
        let eligible: Vec<u32> = (0..self.wake.len() as u32)
            .filter(|&c| self.wake[c as usize] <= now)
            .collect();
        eligible[self.rng.gen_range(0..eligible.len())]
    }

    /// Charges `client` `us` microseconds of modelled operation (and
    /// think) time: it becomes runnable again at `now + us`.
    pub fn charge(&mut self, client: u32, us: u64) {
        self.wake[client as usize] = self.clock.now_us().saturating_add(us);
    }
}

// ---------------------------------------------------------------------
// History.
// ---------------------------------------------------------------------

/// A log-entry address in service-agnostic form: volume index, data
/// block, slot. Orders lexicographically, which is append order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// Volume index within the sequence.
    pub vol: u32,
    /// Data block within the volume.
    pub block: u64,
    /// Entry slot within the block.
    pub slot: u16,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}/b{}/s{}", self.vol, self.block, self.slot)
    }
}

/// One client-visible operation against the log API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Append `value` to `log` (values are unique per history, so they
    /// double as entry identities).
    Append {
        /// Target log file.
        log: u32,
        /// The unique payload identity.
        value: u64,
        /// Whether durability was demanded before the acknowledgement.
        forced: bool,
        /// Client sequence number for async unique identification.
        seqno: Option<u32>,
    },
    /// Read the entry at a previously acknowledged receipt address.
    ReadAt {
        /// The receipt address being read.
        addr: Addr,
    },
    /// Advance cursor `cursor` by one entry.
    CursorNext {
        /// The cursor being advanced.
        cursor: u32,
    },
    /// Resolve an asynchronously appended entry by `(log, seqno)`.
    FindUnique {
        /// The log searched.
        log: u32,
        /// The client sequence number looked up.
        seqno: u32,
    },
}

/// What an operation returned when it succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// An append acknowledgement.
    Receipt {
        /// Where the entry landed.
        addr: Addr,
        /// The service timestamp it was assigned.
        ts: u64,
    },
    /// A read's payload identity.
    Value(u64),
    /// A cursor step: the next entry's identity, or `None` at the end.
    Next(Option<u64>),
    /// A unique-id lookup result.
    Found(Option<u64>),
}

/// The per-log result of a full post-recovery (or final) scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogScan {
    /// The log scanned.
    pub log: u32,
    /// Every surviving entry identity, in cursor order.
    pub values: Vec<u64>,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A completed client operation (`Err` carries the error text; an
    /// errored append becomes *indeterminate* — it may or may not have
    /// reached the medium before the crash that failed it).
    Call {
        /// The operation.
        op: Op,
        /// Its result.
        result: Result<Outcome, String>,
    },
    /// A cursor was opened at the start of `log` (position 0).
    CursorOpen {
        /// The new cursor's id (unique per history).
        cursor: u32,
        /// The log (closure root) it iterates.
        log: u32,
    },
    /// The whole service crashed: volatile state is gone.
    Crash,
    /// The service recovered; `scans` hold everything that survived.
    Recovered {
        /// One full scan per known log.
        scans: Vec<LogScan>,
    },
    /// A clean-shutdown full scan (after a flush, no crash).
    FinalScan {
        /// One full scan per known log.
        scans: Vec<LogScan>,
    },
}

/// A timestamped, client-attributed event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time the operation completed.
    pub at_us: u64,
    /// The client that issued it (`u32::MAX` for whole-system events).
    pub client: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The client id used for whole-system events (crash, recovery, scans).
pub const SYSTEM: u32 = u32::MAX;

/// A recorded operation history.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct History {
    /// Events in execution (= linearization) order.
    pub events: Vec<Event>,
}

impl History {
    /// Appends an event.
    pub fn push(&mut self, at_us: u64, client: u32, kind: EventKind) {
        self.events.push(Event {
            at_us,
            client,
            kind,
        });
    }

    /// Renders the history as stable, line-oriented text. Two runs of the
    /// same seed must render byte-identically — the determinism tests
    /// compare these strings directly.
    #[must_use]
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            let who = if e.client == SYSTEM {
                "sys".to_owned()
            } else {
                format!("c{}", e.client)
            };
            let _ = write!(out, "{i:5} @{:010} {who:>4} ", e.at_us);
            match &e.kind {
                EventKind::Call { op, result } => {
                    match op {
                        Op::Append {
                            log,
                            value,
                            forced,
                            seqno,
                        } => {
                            let _ = write!(
                                out,
                                "append log={log} value={value} forced={forced} seqno={seqno:?}"
                            );
                        }
                        Op::ReadAt { addr } => {
                            let _ = write!(out, "read {addr}");
                        }
                        Op::CursorNext { cursor } => {
                            let _ = write!(out, "cursor-next k{cursor}");
                        }
                        Op::FindUnique { log, seqno } => {
                            let _ = write!(out, "find-unique log={log} seqno={seqno}");
                        }
                    }
                    match result {
                        Ok(Outcome::Receipt { addr, ts }) => {
                            let _ = write!(out, " -> receipt {addr} ts={ts}");
                        }
                        Ok(Outcome::Value(v)) => {
                            let _ = write!(out, " -> value {v}");
                        }
                        Ok(Outcome::Next(n)) => {
                            let _ = write!(out, " -> next {n:?}");
                        }
                        Ok(Outcome::Found(v)) => {
                            let _ = write!(out, " -> found {v:?}");
                        }
                        Err(msg) => {
                            let _ = write!(out, " -> ERROR {msg}");
                        }
                    }
                }
                EventKind::CursorOpen { cursor, log } => {
                    let _ = write!(out, "cursor-open k{cursor} log={log}");
                }
                EventKind::Crash => {
                    let _ = write!(out, "CRASH");
                }
                EventKind::Recovered { scans } => {
                    let _ = write!(out, "RECOVERED {}", render_scans(scans));
                }
                EventKind::FinalScan { scans } => {
                    let _ = write!(out, "FINAL {}", render_scans(scans));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn render_scans(scans: &[LogScan]) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    for scan in scans {
        let _ = write!(s, "log={}:{:?} ", scan.log, scan.values);
    }
    s
}

// ---------------------------------------------------------------------
// Checker.
// ---------------------------------------------------------------------

/// A detected violation of the log model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending event in the history.
    pub index: usize,
    /// Which rule was broken.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "history event {}: rule '{}' violated: {}",
            self.index, self.rule, self.detail
        )
    }
}

#[derive(Debug, Default)]
struct LogState {
    /// Entry identities currently readable, in append order. Grows on
    /// acknowledged appends; shrinks (suffix-only) at recovery.
    live: Vec<u64>,
    /// Number of leading `live` entries guaranteed durable (everything
    /// acknowledged at or before the last forced acknowledgement).
    durable: usize,
    /// Values of appends that *failed* (the crash made them
    /// indeterminate): each may or may not have reached the medium, in
    /// append order after `live`.
    indeterminate: Vec<u64>,
    /// Receipt of the most recent acknowledged append.
    last_receipt: Option<(Addr, u64)>,
}

#[derive(Debug)]
struct CursorState {
    log: u32,
    /// Index into the log's `live` list of the next entry to observe.
    pos: usize,
}

/// Checks a recorded [`History`] against the log model. Returns the
/// first violation, if any.
///
/// The checker is a straight fold over the events (the execution order
/// is the linearization order — see the module docs), so it is `O(n)` in
/// the history length and usable inside seed storms.
///
/// All logs are treated as one append domain: a forced acknowledgement
/// persists every entry staged before it in *every* log. For a service
/// partitioned into shards, use [`check_history_with_shards`].
#[must_use = "a checker verdict must be examined"]
pub fn check_history(h: &History) -> Result<(), Violation> {
    check_history_with_shards(h, &BTreeMap::new())
}

/// [`check_history`] for a sharded service: `shard_of` maps each log id
/// to its append domain (absent logs default to shard 0).
///
/// Durability is per shard — a forced acknowledgement on one log raises
/// the durable floor only for logs of the *same* shard, since each
/// domain has its own open block and device write stream; entries
/// buffered in other shards stay volatile until their own shard forces.
/// Every other rule is per log and unaffected by sharding.
#[must_use = "a checker verdict must be examined"]
pub fn check_history_with_shards(
    h: &History,
    shard_of: &BTreeMap<u32, u32>,
) -> Result<(), Violation> {
    Checker {
        shard_of: shard_of.clone(),
        ..Checker::default()
    }
    .run(h)
}

#[derive(Default)]
struct Checker {
    logs: BTreeMap<u32, LogState>,
    cursors: BTreeMap<u32, CursorState>,
    /// Acknowledged receipt address → value, across all logs.
    by_addr: BTreeMap<Addr, u64>,
    /// `(log, seqno)` → value for seqno-carrying acknowledged appends.
    by_seqno: BTreeMap<(u32, u32), u64>,
    /// Log id → append domain (absent = shard 0; empty = unsharded).
    shard_of: BTreeMap<u32, u32>,
}

impl Checker {
    fn run(mut self, h: &History) -> Result<(), Violation> {
        for (i, e) in h.events.iter().enumerate() {
            self.step(i, e)?;
        }
        Ok(())
    }

    fn fail(i: usize, rule: &'static str, detail: String) -> Result<(), Violation> {
        Err(Violation {
            index: i,
            rule,
            detail,
        })
    }

    fn step(&mut self, i: usize, e: &Event) -> Result<(), Violation> {
        match &e.kind {
            EventKind::Call { op, result } => self.call(i, op, result),
            EventKind::CursorOpen { cursor, log } => {
                self.cursors
                    .insert(*cursor, CursorState { log: *log, pos: 0 });
                Ok(())
            }
            EventKind::Crash => Ok(()),
            EventKind::Recovered { scans } => self.recovered(i, scans),
            EventKind::FinalScan { scans } => self.final_scan(i, scans),
        }
    }

    fn call(
        &mut self,
        i: usize,
        op: &Op,
        result: &Result<Outcome, String>,
    ) -> Result<(), Violation> {
        match (op, result) {
            (
                Op::Append {
                    log,
                    value,
                    forced,
                    seqno,
                },
                Ok(Outcome::Receipt { addr, ts }),
            ) => {
                let st = self.logs.entry(*log).or_default();
                if !st.indeterminate.is_empty() {
                    return Self::fail(
                        i,
                        "receipt-order",
                        format!(
                            "append acknowledged on log {log} while earlier appends \
                             {:?} are indeterminate (no recovery in between)",
                            st.indeterminate
                        ),
                    );
                }
                if let Some((last_addr, last_ts)) = st.last_receipt {
                    if *addr <= last_addr {
                        return Self::fail(
                            i,
                            "receipt-order",
                            format!("log {log}: receipt {addr} not after previous {last_addr}"),
                        );
                    }
                    if *ts < last_ts {
                        return Self::fail(
                            i,
                            "receipt-order",
                            format!("log {log}: timestamp {ts} < previous {last_ts}"),
                        );
                    }
                }
                if let Some(prev) = self.by_addr.insert(*addr, *value) {
                    return Self::fail(
                        i,
                        "receipt-order",
                        format!("receipt address {addr} reused (held value {prev})"),
                    );
                }
                st.last_receipt = Some((*addr, *ts));
                st.live.push(*value);
                if let Some(sq) = seqno {
                    self.by_seqno.insert((*log, *sq), *value);
                }
                if *forced {
                    // A forced acknowledgement persists every entry staged
                    // before it in the same append domain: raise the
                    // durable floors of same-shard logs (with no shard map
                    // every log is in domain 0, so all floors rise).
                    let shard = self.shard_of.get(log).copied().unwrap_or(0);
                    let shard_of = &self.shard_of;
                    for (l, s) in &mut self.logs {
                        if shard_of.get(l).copied().unwrap_or(0) == shard {
                            s.durable = s.live.len();
                        }
                    }
                }
                Ok(())
            }
            (Op::Append { log, value, .. }, Err(_)) => {
                // The append failed — with crash injection this means the
                // entry may or may not have reached the medium. It becomes
                // indeterminate until the next recovery scan resolves it.
                self.logs
                    .entry(*log)
                    .or_default()
                    .indeterminate
                    .push(*value);
                Ok(())
            }
            (Op::Append { log, .. }, Ok(other)) => Self::fail(
                i,
                "receipt-order",
                format!("append to log {log} returned non-receipt outcome {other:?}"),
            ),
            (Op::ReadAt { addr }, Ok(Outcome::Value(v))) => match self.by_addr.get(addr) {
                Some(expect) if expect == v => Ok(()),
                Some(expect) => Self::fail(
                    i,
                    "read-your-writes",
                    format!("read {addr} returned {v}, appended value was {expect}"),
                ),
                None => Self::fail(
                    i,
                    "read-your-writes",
                    format!("read {addr} returned {v} but no append was acknowledged there"),
                ),
            },
            (Op::ReadAt { .. }, _) => Ok(()), // errors (e.g. post-crash loss) are legal
            (Op::CursorNext { cursor }, Ok(Outcome::Next(observed))) => {
                let Some(cur) = self.cursors.get_mut(cursor) else {
                    return Self::fail(
                        i,
                        "cursor-sequence",
                        format!("cursor k{cursor} stepped before being opened"),
                    );
                };
                let live = self
                    .logs
                    .get(&cur.log)
                    .map(|s| s.live.as_slice())
                    .unwrap_or(&[]);
                match observed {
                    Some(v) => match live.get(cur.pos) {
                        Some(expect) if expect == v => {
                            cur.pos += 1;
                            Ok(())
                        }
                        Some(expect) => Self::fail(
                            i,
                            "cursor-sequence",
                            format!(
                                "cursor k{cursor} on log {} observed {v} at position {}, \
                                 expected {expect} (gap, duplicate, or reorder)",
                                cur.log, cur.pos
                            ),
                        ),
                        None => Self::fail(
                            i,
                            "cursor-sequence",
                            format!(
                                "cursor k{cursor} on log {} observed {v} past the end \
                                 (position {}, live length {})",
                                cur.log,
                                cur.pos,
                                live.len()
                            ),
                        ),
                    },
                    None => {
                        if cur.pos == live.len() {
                            Ok(())
                        } else {
                            Self::fail(
                                i,
                                "cursor-sequence",
                                format!(
                                    "cursor k{cursor} on log {} reported end at position {} \
                                     but {} live entries exist",
                                    cur.log,
                                    cur.pos,
                                    live.len()
                                ),
                            )
                        }
                    }
                }
            }
            (Op::CursorNext { .. }, _) => Ok(()),
            (Op::FindUnique { log, seqno }, Ok(Outcome::Found(found))) => {
                let Some(value) = self.by_seqno.get(&(*log, *seqno)) else {
                    return Self::fail(
                        i,
                        "unique-id",
                        format!("lookup of unknown (log {log}, seqno {seqno})"),
                    );
                };
                let is_live = self.logs.get(log).is_some_and(|s| s.live.contains(value));
                match (is_live, found) {
                    (true, Some(v)) if v == value => Ok(()),
                    (true, got) => Self::fail(
                        i,
                        "unique-id",
                        format!(
                            "lookup (log {log}, seqno {seqno}) returned {got:?}, \
                             expected Some({value})"
                        ),
                    ),
                    (false, None) => Ok(()),
                    (false, Some(v)) => Self::fail(
                        i,
                        "unique-id",
                        format!(
                            "lookup (log {log}, seqno {seqno}) resurrected {v} \
                             after it was lost in a crash"
                        ),
                    ),
                }
            }
            (Op::FindUnique { .. }, _) => Ok(()),
        }
    }

    fn recovered(&mut self, i: usize, scans: &[LogScan]) -> Result<(), Violation> {
        for scan in scans {
            let st = self.logs.entry(scan.log).or_default();
            // What may legally exist on the medium: the acknowledged live
            // sequence, optionally extended by appends the crash left
            // indeterminate (they were staged last, in order).
            let mut may_exist = st.live.clone();
            may_exist.extend_from_slice(&st.indeterminate);
            if scan.values.len() > may_exist.len() || scan.values != may_exist[..scan.values.len()]
            {
                return Self::fail(
                    i,
                    "recovery-prefix",
                    format!(
                        "log {}: survivors {:?} are not a prefix of the appended \
                         sequence {:?}",
                        scan.log, scan.values, may_exist
                    ),
                );
            }
            if scan.values.len() < st.durable {
                return Self::fail(
                    i,
                    "durable-loss",
                    format!(
                        "log {}: only {} entries survived but {} were covered by a \
                         forced acknowledgement (lost: {:?})",
                        scan.log,
                        scan.values.len(),
                        st.durable,
                        &st.live[scan.values.len()..st.durable]
                    ),
                );
            }
            st.live = scan.values.clone();
            st.durable = st.live.len();
            st.indeterminate.clear();
            // The open block (and its receipts) died with the server; the
            // next acknowledged append re-establishes the order baseline.
            st.last_receipt = None;
        }
        let scanned: Vec<u32> = scans.iter().map(|s| s.log).collect();
        for (log, st) in &self.logs {
            let has_entries = !st.live.is_empty() || !st.indeterminate.is_empty();
            if !scanned.contains(log) && has_entries {
                return Self::fail(
                    i,
                    "recovery-prefix",
                    format!("log {log} has entries but was not scanned at recovery"),
                );
            }
        }
        // Clamp every cursor to the (possibly shorter) recovered log.
        for cur in self.cursors.values_mut() {
            let len = self.logs.get(&cur.log).map_or(0, |s| s.live.len());
            cur.pos = cur.pos.min(len);
        }
        // Receipts of lost entries die with them: their (unwritten) device
        // addresses are legitimately reused by post-recovery appends.
        let surviving: std::collections::BTreeSet<u64> = self
            .logs
            .values()
            .flat_map(|s| s.live.iter().copied())
            .collect();
        self.by_addr.retain(|_, v| surviving.contains(v));
        Ok(())
    }

    fn final_scan(&mut self, i: usize, scans: &[LogScan]) -> Result<(), Violation> {
        for scan in scans {
            let st = self.logs.entry(scan.log).or_default();
            if scan.values != st.live {
                return Self::fail(
                    i,
                    "final-scan",
                    format!(
                        "log {}: final scan {:?} != acknowledged live sequence {:?}",
                        scan.log, scan.values, st.live
                    ),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(vol: u32, block: u64, slot: u16) -> Addr {
        Addr { vol, block, slot }
    }

    fn append_ok(h: &mut History, c: u32, log: u32, value: u64, forced: bool, addr: Addr) {
        h.push(
            value,
            c,
            EventKind::Call {
                op: Op::Append {
                    log,
                    value,
                    forced,
                    seqno: None,
                },
                result: Ok(Outcome::Receipt { addr, ts: value }),
            },
        );
    }

    // -- scheduler ----------------------------------------------------

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let run = |seed| {
            let clock = Arc::new(SimClock::starting_at(0));
            let mut s = Scheduler::new(seed, 4, clock);
            let mut picks = Vec::new();
            for step in 0..200u64 {
                let c = s.pick();
                picks.push(c);
                s.charge(c, 10 + step % 7);
            }
            picks
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn scheduler_advances_time_and_runs_everyone() {
        let clock = Arc::new(SimClock::starting_at(100));
        let mut s = Scheduler::new(9, 3, clock);
        let mut seen = [false; 3];
        let mut last = 0;
        for _ in 0..60 {
            let c = s.pick();
            seen[c as usize] = true;
            assert!(s.now_us() >= last, "virtual time went backwards");
            last = s.now_us();
            s.charge(c, 50);
        }
        assert!(seen.iter().all(|&x| x), "some client never ran: {seen:?}");
        assert!(s.now_us() > 100, "clock never advanced");
    }

    #[test]
    fn sim_clock_ticks_are_unique_and_monotone() {
        let c = SimClock::starting_at(5);
        let t1 = c.tick();
        let t2 = c.tick();
        assert!(t1 > 5 && t2 > t1);
        c.advance_to(1000);
        assert!(c.tick() > 1000);
        c.advance_to(10); // never backwards
        assert!(c.now_us() > 1000);
    }

    // -- checker: valid histories pass --------------------------------

    #[test]
    fn valid_history_passes() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        append_ok(&mut h, 1, 1, 11, true, a(0, 0, 1));
        h.push(
            3,
            0,
            EventKind::Call {
                op: Op::ReadAt { addr: a(0, 0, 0) },
                result: Ok(Outcome::Value(10)),
            },
        );
        h.push(4, 0, EventKind::CursorOpen { cursor: 0, log: 1 });
        for (t, v) in [(5, Some(10)), (6, Some(11)), (7, None)] {
            h.push(
                t,
                0,
                EventKind::Call {
                    op: Op::CursorNext { cursor: 0 },
                    result: Ok(Outcome::Next(v)),
                },
            );
        }
        h.push(8, SYSTEM, EventKind::Crash);
        h.push(
            9,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10, 11],
                }],
            },
        );
        h.push(
            10,
            SYSTEM,
            EventKind::FinalScan {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10, 11],
                }],
            },
        );
        assert_eq!(check_history(&h), Ok(()));
    }

    #[test]
    fn buffered_suffix_may_vanish_in_crash() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
        append_ok(&mut h, 0, 1, 11, false, a(0, 1, 0));
        h.push(2, SYSTEM, EventKind::Crash);
        h.push(
            3,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10],
                }],
            },
        );
        assert_eq!(check_history(&h), Ok(()));
    }

    #[test]
    fn indeterminate_append_may_or_may_not_survive() {
        for survives in [false, true] {
            let mut h = History::default();
            append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
            h.push(
                1,
                0,
                EventKind::Call {
                    op: Op::Append {
                        log: 1,
                        value: 11,
                        forced: true,
                        seqno: None,
                    },
                    result: Err("simulated crash".to_owned()),
                },
            );
            h.push(2, SYSTEM, EventKind::Crash);
            let mut values = vec![10];
            if survives {
                values.push(11);
            }
            h.push(
                3,
                SYSTEM,
                EventKind::Recovered {
                    scans: vec![LogScan { log: 1, values }],
                },
            );
            assert_eq!(check_history(&h), Ok(()), "survives={survives}");
        }
    }

    // -- checker: each rule catches its violation ---------------------

    #[test]
    fn receipt_regression_is_caught() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 3, 0));
        append_ok(&mut h, 0, 1, 11, false, a(0, 2, 0)); // address went backwards
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "receipt-order");
        assert_eq!(v.index, 1);
    }

    #[test]
    fn stale_read_is_caught() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        h.push(
            1,
            0,
            EventKind::Call {
                op: Op::ReadAt { addr: a(0, 0, 0) },
                result: Ok(Outcome::Value(99)),
            },
        );
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "read-your-writes");
    }

    #[test]
    fn cursor_gap_duplicate_and_premature_end_are_caught() {
        let base = |h: &mut History| {
            append_ok(h, 0, 1, 10, false, a(0, 0, 0));
            append_ok(h, 0, 1, 11, false, a(0, 0, 1));
            h.push(2, 0, EventKind::CursorOpen { cursor: 0, log: 1 });
        };
        // Gap: first observation skips value 10.
        let mut h = History::default();
        base(&mut h);
        h.push(
            3,
            0,
            EventKind::Call {
                op: Op::CursorNext { cursor: 0 },
                result: Ok(Outcome::Next(Some(11))),
            },
        );
        assert_eq!(check_history(&h).expect_err("gap").rule, "cursor-sequence");
        // Duplicate: value 10 observed twice.
        let mut h = History::default();
        base(&mut h);
        for t in [3, 4] {
            h.push(
                t,
                0,
                EventKind::Call {
                    op: Op::CursorNext { cursor: 0 },
                    result: Ok(Outcome::Next(Some(10))),
                },
            );
        }
        assert_eq!(check_history(&h).expect_err("dup").rule, "cursor-sequence");
        // Premature end: None while entries remain.
        let mut h = History::default();
        base(&mut h);
        h.push(
            3,
            0,
            EventKind::Call {
                op: Op::CursorNext { cursor: 0 },
                result: Ok(Outcome::Next(None)),
            },
        );
        assert_eq!(check_history(&h).expect_err("end").rule, "cursor-sequence");
    }

    #[test]
    fn lost_forced_append_is_caught() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
        h.push(1, SYSTEM, EventKind::Crash);
        h.push(
            2,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![],
                }],
            },
        );
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "durable-loss");
    }

    #[test]
    fn forced_append_covers_earlier_buffered_entries_of_other_logs() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0)); // buffered, log 1
        append_ok(&mut h, 0, 2, 20, true, a(0, 0, 1)); // forced, log 2
        h.push(2, SYSTEM, EventKind::Crash);
        h.push(
            3,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![
                    LogScan {
                        log: 1,
                        values: vec![], // buffered entry staged before the force vanished
                    },
                    LogScan {
                        log: 2,
                        values: vec![20],
                    },
                ],
            },
        );
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "durable-loss");
    }

    #[test]
    fn forced_append_covers_only_same_shard_logs() {
        // Buffered append on log 1, then a forced append on log 2, then a
        // crash that loses the buffered entry.
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        append_ok(&mut h, 0, 2, 20, true, a(1, 0, 0));
        h.push(2, SYSTEM, EventKind::Crash);
        h.push(
            3,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![
                    LogScan {
                        log: 1,
                        values: vec![],
                    },
                    LogScan {
                        log: 2,
                        values: vec![20],
                    },
                ],
            },
        );
        // Different shards: log 2's force does not cover log 1's buffered
        // entry, so the loss is legal.
        let split = BTreeMap::from([(1, 0), (2, 1)]);
        assert_eq!(check_history_with_shards(&h, &split), Ok(()));
        // Same shard: the force covers it and the loss is a violation
        // (matching the unsharded checker on this history).
        let joined = BTreeMap::from([(1, 1), (2, 1)]);
        let v = check_history_with_shards(&h, &joined).expect_err("must fail");
        assert_eq!(v.rule, "durable-loss");
        assert_eq!(
            check_history(&h).expect_err("must fail").rule,
            "durable-loss"
        );
    }

    #[test]
    fn phantom_or_reordered_survivors_are_caught() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        append_ok(&mut h, 0, 1, 11, false, a(0, 0, 1));
        h.push(2, SYSTEM, EventKind::Crash);
        h.push(
            3,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![11, 10], // reordered
                }],
            },
        );
        assert_eq!(
            check_history(&h).expect_err("reorder").rule,
            "recovery-prefix"
        );
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        h.push(1, SYSTEM, EventKind::Crash);
        h.push(
            2,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10, 666], // phantom
                }],
            },
        );
        assert_eq!(
            check_history(&h).expect_err("phantom").rule,
            "recovery-prefix"
        );
    }

    #[test]
    fn unique_id_resurrection_is_caught() {
        let mut h = History::default();
        h.push(
            0,
            0,
            EventKind::Call {
                op: Op::Append {
                    log: 1,
                    value: 10,
                    forced: false,
                    seqno: Some(7),
                },
                result: Ok(Outcome::Receipt {
                    addr: a(0, 0, 0),
                    ts: 1,
                }),
            },
        );
        h.push(1, SYSTEM, EventKind::Crash);
        h.push(
            2,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![],
                }],
            },
        );
        h.push(
            3,
            0,
            EventKind::Call {
                op: Op::FindUnique { log: 1, seqno: 7 },
                result: Ok(Outcome::Found(Some(10))),
            },
        );
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "unique-id");
    }

    #[test]
    fn final_scan_mismatch_is_caught() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
        h.push(
            1,
            SYSTEM,
            EventKind::FinalScan {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![],
                }],
            },
        );
        let v = check_history(&h).expect_err("must fail");
        assert_eq!(v.rule, "final-scan");
    }

    #[test]
    fn cursor_survives_recovery_clamped() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
        append_ok(&mut h, 0, 1, 11, false, a(0, 1, 0));
        h.push(2, 0, EventKind::CursorOpen { cursor: 0, log: 1 });
        for (t, v) in [(3, Some(10)), (4, Some(11))] {
            h.push(
                t,
                0,
                EventKind::Call {
                    op: Op::CursorNext { cursor: 0 },
                    result: Ok(Outcome::Next(v)),
                },
            );
        }
        h.push(5, SYSTEM, EventKind::Crash);
        // Entry 11 is lost; the cursor's position clamps back to 1.
        h.push(
            6,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10],
                }],
            },
        );
        append_ok(&mut h, 0, 1, 12, false, a(0, 2, 0));
        h.push(
            8,
            0,
            EventKind::Call {
                op: Op::CursorNext { cursor: 0 },
                result: Ok(Outcome::Next(Some(12))),
            },
        );
        assert_eq!(check_history(&h), Ok(()));
    }

    #[test]
    fn lost_addresses_may_be_reused_after_recovery() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, true, a(0, 0, 0));
        append_ok(&mut h, 0, 1, 11, false, a(0, 1, 0)); // buffered, will be lost
        h.push(2, SYSTEM, EventKind::Crash);
        h.push(
            3,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10],
                }],
            },
        );
        // The new append lands at the very address the lost entry had been
        // promised — legal, its block never reached the medium.
        append_ok(&mut h, 0, 1, 12, false, a(0, 1, 0));
        h.push(
            5,
            0,
            EventKind::Call {
                op: Op::ReadAt { addr: a(0, 1, 0) },
                result: Ok(Outcome::Value(12)),
            },
        );
        assert_eq!(check_history(&h), Ok(()));
    }

    #[test]
    fn render_is_stable_and_covers_event_kinds() {
        let mut h = History::default();
        append_ok(&mut h, 0, 1, 10, false, a(0, 0, 0));
        h.push(1, SYSTEM, EventKind::Crash);
        h.push(
            2,
            SYSTEM,
            EventKind::Recovered {
                scans: vec![LogScan {
                    log: 1,
                    values: vec![10],
                }],
            },
        );
        let r1 = h.render();
        let r2 = h.clone().render();
        assert_eq!(r1, r2);
        assert!(r1.contains("append log=1 value=10"), "{r1}");
        assert!(r1.contains("CRASH"), "{r1}");
        assert!(r1.contains("RECOVERED"), "{r1}");
    }
}
