//! Vector clocks for the happens-before race detector in
//! [`crate::check`].
//!
//! A [`VClock`] maps model-thread ids (small dense integers assigned by
//! the checker) to event counters. The checker keeps one clock per model
//! thread and one per synchronization object (lock, atomic); edges are
//! created by joining clocks:
//!
//! * lock release → acquire: release joins the thread clock into the
//!   lock clock, acquire joins the lock clock into the thread clock;
//! * atomic `Release` store → `Acquire` load: same shape, per atomic;
//! * spawn/join: the child starts from the parent's clock, and `join`
//!   folds the child's final clock back into the parent.
//!
//! Individual accesses are identified by *epochs* — `(tid, clock[tid])`
//! pairs — the FastTrack representation: an access at epoch `(t, c)`
//! happens-before a thread whose clock `C` satisfies `C[t] >= c`.

/// A vector clock over dense model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub const fn new() -> VClock {
        VClock(Vec::new())
    }

    /// The component for `tid` (0 when never ticked or joined).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component past all prior events of that
    /// thread, returning the new value — the epoch of the event.
    pub fn tick(&mut self, tid: usize) -> u32 {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Whether the event at epoch `(tid, at)` happens-before this clock.
    pub fn saw(&self, tid: usize, at: u32) -> bool {
        self.get(tid) >= at
    }

    /// Pointwise `self <= other`: everything this clock has seen, the
    /// other has too.
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &c)| other.get(tid) >= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_only_own_component() {
        let mut c = VClock::new();
        assert_eq!(c.tick(2), 1);
        assert_eq!(c.tick(2), 2);
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(9), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        b.tick(2);
        b.tick(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 2);
        // Join is idempotent and commutative on these inputs.
        let snap = a.clone();
        a.join(&b);
        assert_eq!(a, snap);
    }

    #[test]
    fn epoch_visibility_tracks_hb() {
        let mut writer = VClock::new();
        let at = writer.tick(0); // the write event, epoch (0, 1)
        let mut lock = VClock::new();
        lock.join(&writer); // release
        let mut reader = VClock::new();
        reader.tick(1);
        assert!(!reader.saw(0, at)); // no acquire yet: concurrent
        reader.join(&lock); // acquire
        assert!(reader.saw(0, at));
    }

    #[test]
    fn le_is_a_partial_order() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        // a and b are incomparable.
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut ab = a.clone();
        ab.join(&b);
        assert!(a.le(&ab));
        assert!(b.le(&ab));
        assert!(ab.le(&ab));
        // The zero clock precedes everything.
        assert!(VClock::new().le(&a));
    }
}
