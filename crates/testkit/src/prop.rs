//! A small property-testing harness (replaces the external
//! property-testing framework the workspace once used).
//!
//! Generation is *tape-based*: every generator draws raw `u64`s from a
//! [`Source`], which records them on a tape. A failing case is shrunk by
//! greedily mutating the tape — deleting spans, zeroing, halving and
//! decrementing entries — and regenerating the value, accepting the first
//! mutation that still fails. Because shrinking happens below the
//! generators, it works through [`Gen::map`] and arbitrary combinators
//! with no per-type shrinker code, and generators are written so that a
//! smaller draw means a simpler value (ranges shrink toward their low
//! bound, collections toward empty, [`one_of`] toward its first choice).
//!
//! Reproducibility contract:
//! * every case is a pure function of a `u64` case seed;
//! * a failure prints that seed, and `CLIO_PROP_SEED=<seed>` replays
//!   exactly that case (and its shrink) and nothing else;
//! * `CLIO_PROP_CASES=<n>` overrides each property's case count;
//! * known bad inputs are pinned as explicit named tests via
//!   [`check_case`] — regression registration lives in the test file,
//!   not in a side-band dotfile.

use std::cell::Cell;
use std::fmt::{Debug, Write as _};
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

use crate::rng::{splitmix64, StdRng};

/// Cap on property executions spent shrinking one failure.
const MAX_SHRINK_RUNS: u32 = 4096;

/// The draw stream behind all generators: replays a recorded tape, then
/// extends it with fresh seeded randomness once the tape is exhausted.
pub struct Source {
    tape: Vec<u64>,
    pos: usize,
    rng: StdRng,
}

impl Source {
    /// A fresh source whose whole stream derives from `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Source {
        Source::replay(Vec::new(), seed)
    }

    /// A source that replays `tape` first, then continues from `seed`.
    #[must_use]
    pub fn replay(tape: Vec<u64>, seed: u64) -> Source {
        Source {
            tape,
            pos: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next raw draw (recorded on the tape).
    pub fn draw(&mut self) -> u64 {
        if self.pos == self.tape.len() {
            self.tape.push(self.rng.next_u64());
        }
        let v = self.tape[self.pos];
        self.pos += 1;
        v
    }

    /// The consumed prefix of the tape (what generation actually used).
    fn consumed(mut self) -> Vec<u64> {
        self.tape.truncate(self.pos);
        self.tape
    }
}

/// A value generator: a shareable closure over a [`Source`].
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen { f: self.f.clone() }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw generation function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Produces one value from `src`.
    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// A generator applying `f` to this generator's output. Shrinking
    /// still works: it operates on the underlying tape, not on `U`.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.clone();
        Gen::new(move |src| f(g.generate(src)))
    }
}

/// A generator that always yields `value`.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// A uniform `bool` (shrinks toward `false`).
pub fn bools() -> Gen<bool> {
    Gen::new(|src| src.draw() & 1 == 1)
}

macro_rules! any_and_ranged {
    ($($any:ident, $ranged:ident, $t:ty);* $(;)?) => {$(
        /// A uniform value over the type's full domain (shrinks toward 0).
        pub fn $any() -> Gen<$t> {
            Gen::new(|src| src.draw() as $t)
        }

        /// A uniform value in `lo..hi` (shrinks toward `lo`).
        ///
        /// # Panics
        /// Panics if the range is empty.
        pub fn $ranged(range: std::ops::Range<$t>) -> Gen<$t> {
            assert!(range.start < range.end, "empty generator range");
            Gen::new(move |src| {
                let span = (range.end - range.start) as u64;
                range.start + (((src.draw() as u128 * span as u128) >> 64) as u64) as $t
            })
        }
    )*};
}

any_and_ranged! {
    any_u8, u8s, u8;
    any_u16, u16s, u16;
    any_u32, u32s, u32;
    any_u64, u64s, u64;
    any_usize, usizes, usize;
}

/// A vector of `elem` values with length in `len` (shrinks toward
/// `len.start` elements, and element-wise toward simpler elements).
///
/// Encoding: after `len.start` unconditional elements, each further
/// element is prefixed by a continuation draw (`0` means stop). This is
/// what lets tape shrinking delete elements from the middle of a vector
/// or truncate it without disturbing a length prefix; lengths follow a
/// geometric-ish distribution whose mean sits mid-range, with the range
/// end as a hard cap.
pub fn vec_of<T: 'static>(elem: &Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "empty length range");
    let elem = elem.clone();
    // Continue with probability extra/(extra + 1) where `extra` is the
    // mean number of optional elements — stop-threshold form so that a
    // zeroed draw means "stop here".
    let mean_extra = ((len.end - 1 - len.start) as f64 / 2.0).max(0.5);
    let stop_below = (u64::MAX as f64 / (mean_extra + 1.0)) as u64;
    Gen::new(move |src| {
        let mut out: Vec<T> = (0..len.start).map(|_| elem.generate(src)).collect();
        while out.len() + 1 < len.end && src.draw() >= stop_below {
            out.push(elem.generate(src));
        }
        out
    })
}

/// Arbitrary bytes with length in `len`.
pub fn bytes(len: std::ops::Range<usize>) -> Gen<Vec<u8>> {
    vec_of(&any_u8(), len)
}

/// `None` or `Some(inner)`, evenly — shrinks toward `None`.
pub fn option_of<T: 'static>(inner: &Gen<T>) -> Gen<Option<T>> {
    let inner = inner.clone();
    Gen::new(move |src| (src.draw() & 1 == 1).then(|| inner.generate(src)))
}

/// One of several alternatives, uniformly. Shrinks toward the *first*
/// choice, so order alternatives simplest-first.
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    weighted(choices.into_iter().map(|g| (1, g)).collect())
}

/// One of several alternatives with integer weights. Shrinks toward the
/// first choice, so order alternatives simplest-first.
pub fn weighted<T: 'static>(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
    assert!(!choices.is_empty(), "weighted() needs at least one choice");
    let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted() needs a positive total weight");
    Gen::new(move |src| {
        let mut ticket = ((src.draw() as u128 * u128::from(total)) >> 64) as u64;
        for (w, g) in &choices {
            let w = u64::from(*w);
            if ticket < w {
                return g.generate(src);
            }
            ticket -= w;
        }
        unreachable!("ticket exceeds total weight")
    })
}

/// A pair of independent values.
pub fn pair<A: 'static, B: 'static>(a: &Gen<A>, b: &Gen<B>) -> Gen<(A, B)> {
    let (a, b) = (a.clone(), b.clone());
    Gen::new(move |src| (a.generate(src), b.generate(src)))
}

/// A triple of independent values.
pub fn triple<A: 'static, B: 'static, C: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
) -> Gen<(A, B, C)> {
    let (a, b, c) = (a.clone(), b.clone(), c.clone());
    Gen::new(move |src| (a.generate(src), b.generate(src), c.generate(src)))
}

/// A quadruple of independent values.
pub fn quad<A: 'static, B: 'static, C: 'static, D: 'static>(
    a: &Gen<A>,
    b: &Gen<B>,
    c: &Gen<C>,
    d: &Gen<D>,
) -> Gen<(A, B, C, D)> {
    let (a, b, c, d) = (a.clone(), b.clone(), c.clone(), d.clone());
    Gen::new(move |src| {
        (
            a.generate(src),
            b.generate(src),
            c.generate(src),
            d.generate(src),
        )
    })
}

thread_local! {
    /// While set, this thread's panics are exploratory (a property case
    /// being tried) and must not spam the default hook's report.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_capable_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Runs `prop` on `value`, quietly capturing any panic message.
fn run_quiet<T>(value: &T, prop: &impl Fn(&T)) -> Result<(), String> {
    install_quiet_capable_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Checks `prop` against `cases` generated inputs (panicking means the
/// case failed). On failure the input is greedily shrunk and the report
/// names the case seed; `CLIO_PROP_SEED=<seed>` replays exactly that
/// failure, `CLIO_PROP_CASES=<n>` overrides the case count.
///
/// # Panics
/// Panics (failing the test) if any case fails, with the shrunk input,
/// the case seed and the original assertion message.
pub fn check<T: Debug + 'static>(name: &str, cases: u32, gen: &Gen<T>, prop: impl Fn(&T)) {
    let cases = env_u64("CLIO_PROP_CASES").map_or(cases, |c| c.min(u64::from(u32::MAX)) as u32);
    if let Some(seed) = env_u64("CLIO_PROP_SEED") {
        // Replay mode: exactly one case, from exactly this seed.
        run_one(name, seed, 0, 1, gen, &prop);
        return;
    }
    let mut seed_state = fnv1a64(name);
    for case in 0..cases {
        let case_seed = splitmix64(&mut seed_state);
        run_one(name, case_seed, case, cases, gen, &prop);
    }
}

/// Runs one explicitly pinned input through `prop` — the harness's
/// regression-case registration. Entries converted from retired
/// regression seed files
/// and shrunk outputs from [`check`] failures belong in named tests that
/// call this, so the corpus is visible, reviewable source code.
pub fn check_case<T: Debug>(name: &str, value: &T, prop: impl Fn(&T)) {
    if let Err(msg) = run_quiet(value, &prop) {
        panic!("regression case '{name}' failed: {msg}\n  input: {value:#?}");
    }
}

fn run_one<T: Debug + 'static>(
    name: &str,
    case_seed: u64,
    case: u32,
    cases: u32,
    gen: &Gen<T>,
    prop: &impl Fn(&T),
) {
    let mut src = Source::from_seed(case_seed);
    let value = gen.generate(&mut src);
    let Err(first_msg) = run_quiet(&value, prop) else {
        return;
    };
    let tape = src.consumed();
    let (shrunk_tape, runs) = shrink(tape, case_seed, gen, prop);
    let shrunk = gen.generate(&mut Source::replay(shrunk_tape, case_seed));
    let final_msg = match run_quiet(&shrunk, prop) {
        Err(m) => m,
        Ok(()) => first_msg, // unshrinkable (flaky under regeneration)
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "property '{name}' failed (case {}/{cases}, {runs} shrink runs)",
        case + 1
    );
    let _ = writeln!(
        report,
        "  reproduce with: CLIO_PROP_SEED={case_seed} (0x{case_seed:016X})"
    );
    let _ = writeln!(report, "  shrunk input: {shrunk:#?}");
    let _ = write!(report, "  failure: {final_msg}");
    panic!("{report}");
}

/// Greedy tape shrinking: repeatedly scan the mutation schedule and adopt
/// the first mutant that still fails, until a full scan finds none (or
/// the run budget is spent). Returns the best tape and the runs used.
fn shrink<T: Debug + 'static>(
    tape: Vec<u64>,
    case_seed: u64,
    gen: &Gen<T>,
    prop: &impl Fn(&T),
) -> (Vec<u64>, u32) {
    let mut shrinker = Shrinker {
        best: tape,
        case_seed,
        gen,
        prop,
        runs: 0,
    };
    loop {
        let mut improved = shrinker.delete_spans();
        improved |= shrinker.minimize_entries();
        if !improved || shrinker.runs >= MAX_SHRINK_RUNS {
            break;
        }
    }
    (shrinker.best, shrinker.runs)
}

struct Shrinker<'a, T, P> {
    best: Vec<u64>,
    case_seed: u64,
    gen: &'a Gen<T>,
    prop: &'a P,
    runs: u32,
}

impl<T: Debug + 'static, P: Fn(&T)> Shrinker<'_, T, P> {
    /// Runs the property on `candidate`; if it still fails AND its
    /// consumed tape is strictly simpler than the current best (shorter,
    /// or same length and lexicographically smaller — regeneration can
    /// re-extend a truncated tape), adopts it and returns true. The
    /// strict decrease is what guarantees shrinking terminates.
    fn adopt_if_failing(&mut self, candidate: Vec<u64>) -> bool {
        self.runs += 1;
        let mut src = Source::replay(candidate, self.case_seed);
        let value = self.gen.generate(&mut src);
        if run_quiet(&value, self.prop).is_ok() {
            return false;
        }
        let consumed = src.consumed();
        let simpler = consumed.len() < self.best.len()
            || (consumed.len() == self.best.len() && consumed < self.best);
        if simpler {
            self.best = consumed;
            true
        } else {
            false
        }
    }

    /// Structural pass: delete spans of draws (shrinks collections),
    /// largest chunks first, until a full sweep removes nothing.
    fn delete_spans(&mut self) -> bool {
        let mut improved = false;
        'restart: loop {
            let n = self.best.len();
            let mut chunk = (n / 2).max(1);
            loop {
                for start in 0..=(n.saturating_sub(chunk)) {
                    if self.runs >= MAX_SHRINK_RUNS || chunk > self.best.len() {
                        return improved;
                    }
                    let mut t = Vec::with_capacity(self.best.len() - chunk);
                    t.extend_from_slice(&self.best[..start.min(self.best.len())]);
                    t.extend_from_slice(&self.best[(start + chunk).min(self.best.len())..]);
                    if self.adopt_if_failing(t) {
                        improved = true;
                        continue 'restart;
                    }
                }
                if chunk == 1 {
                    return improved;
                }
                chunk /= 2;
            }
        }
    }

    /// Value pass: binary-search each tape entry down toward zero
    /// (shrinks ranged draws toward their low bound). Greedy and
    /// probe-bounded: O(log max_draw) runs per entry.
    fn minimize_entries(&mut self) -> bool {
        let mut improved = false;
        let mut i = 0;
        while i < self.best.len() && self.runs < MAX_SHRINK_RUNS {
            let original = self.best[i];
            if original == 0 {
                i += 1;
                continue;
            }
            // Try zero outright, then binary-search the smallest still-
            // failing value. Monotonicity isn't guaranteed, so this is a
            // heuristic — but every adopted probe is a confirmed failure.
            let mut t = self.best.clone();
            t[i] = 0;
            if self.adopt_if_failing(t) {
                improved = true;
                i += 1;
                continue;
            }
            let (mut lo, mut hi) = (0u64, original);
            while lo + 1 < hi && self.runs < MAX_SHRINK_RUNS && i < self.best.len() {
                let mid = lo + (hi - lo) / 2;
                let mut t = self.best.clone();
                t[i] = mid;
                if self.adopt_if_failing(t) {
                    improved = true;
                    hi = self.best.get(i).copied().unwrap_or(mid);
                } else {
                    lo = mid;
                }
            }
            i += 1;
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g = vec_of(&u16s(0..100), 0..20);
        let a = g.generate(&mut Source::from_seed(5));
        let b = g.generate(&mut Source::from_seed(5));
        let c = g.generate(&mut Source::from_seed(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranged_stays_in_bounds_and_zero_tape_hits_low() {
        let g = u16s(10..20);
        for seed in 0..200 {
            let v = g.generate(&mut Source::from_seed(seed));
            assert!((10..20).contains(&v));
        }
        assert_eq!(g.generate(&mut Source::replay(vec![0], 0)), 10);
        assert_eq!(
            vec_of(&g, 2..9)
                .generate(&mut Source::replay(vec![0, 0, 0], 0))
                .len(),
            2
        );
    }

    #[test]
    fn weighted_respects_weights_roughly() {
        let g = weighted(vec![(9, just(0u8)), (1, just(1u8))]);
        let ones: usize = (0..2000)
            .map(|s| usize::from(g.generate(&mut Source::from_seed(s))))
            .sum();
        assert!((100..320).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn passing_property_stays_quiet() {
        check("always_passes", 64, &any_u64(), |_| {});
    }

    #[test]
    fn failing_property_shrinks_and_names_a_seed() {
        // A property failing for vecs containing anything >= 100: the
        // shrunk witness should be minimal (single element, exactly 100).
        let g = vec_of(&u32s(0..1000), 0..50);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            check("shrink_to_minimal", 200, &g, |v| {
                assert!(v.iter().all(|&x| x < 100), "big element");
            });
        }));
        let msg = panic_message(&*caught.expect_err("must fail"));
        assert!(msg.contains("CLIO_PROP_SEED="), "no seed in: {msg}");
        assert!(msg.contains("100"), "not shrunk to witness: {msg}");
        assert!(
            msg.contains("[\n    100,\n]") || msg.contains("[100]"),
            "not minimal: {msg}"
        );
    }

    #[test]
    fn printed_seed_reproduces_the_exact_failure() {
        // Find a failing case seed the way a user would read it from the
        // report, then verify replaying it regenerates a failing input.
        let g = vec_of(&u32s(0..1000), 0..50);
        let prop = |v: &Vec<u32>| assert!(v.iter().all(|&x| x < 100));
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            check("seed_roundtrip", 200, &g, prop);
        }));
        let msg = panic_message(&*caught.expect_err("must fail"));
        let seed: u64 = msg
            .split("CLIO_PROP_SEED=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("seed printed")
            .parse()
            .expect("decimal seed");
        let replayed = g.generate(&mut Source::from_seed(seed));
        assert!(
            replayed.iter().any(|&x| x >= 100),
            "seed {seed} did not reproduce: {replayed:?}"
        );
    }

    #[test]
    fn check_case_runs_pinned_inputs() {
        check_case("pinned_ok", &vec![1u32, 2, 3], |v| assert_eq!(v.len(), 3));
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            check_case("pinned_bad", &7u32, |v| assert_eq!(*v, 8));
        }));
        let msg = panic_message(&*caught.expect_err("must fail"));
        assert!(msg.contains("pinned_bad"), "{msg}");
    }
}
