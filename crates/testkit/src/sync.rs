//! Poison-transparent wrappers over [`std::sync`] locks, instrumented
//! for lock-order validation.
//!
//! The workspace uses the guard-returning lock calling convention
//! everywhere:
//! `mutex.lock()` yields a guard, not a `Result`. These wrappers keep that
//! convention on top of `std::sync` by treating poisoning as transparent —
//! a panic while a lock is held does not wedge every later acquirer, it
//! simply hands them the inner data (exactly the semantics of the
//! external lock crate these wrappers replace,
//! which has no poisoning at all). Tests that kill threads mid-operation
//! rely on this: the crash/recovery storms must be able to re-inspect
//! state after a deliberate panic.
//!
//! Every lock additionally carries a [`crate::lockdep`] class — by
//! default keyed to its creation site (so the N cache shards built in
//! one loop share one class), or named explicitly:
//!
//! * [`Mutex::with_class`] / [`RwLock::with_class`] — a named class,
//!   *strict*: holding it across blocking device I/O trips
//!   [`crate::lockdep::assert_no_locks_held`].
//! * [`Mutex::with_class_io`] / [`RwLock::with_class_io`] — a named
//!   class that is allowed to span device writes (e.g. the append-state
//!   mutex the group-commit leader holds while committing).
//!
//! Tracking is entirely inert unless `CLIO_LOCKDEP=1` is set; see the
//! [`crate::lockdep`] module docs.
//!
//! Under a [`crate::check`] model run, every acquisition, release,
//! condvar wait/notify and [`ArcCell`] access on the current thread is
//! additionally a scheduling point of the cooperative model checker,
//! and contributes happens-before edges to its race detector. Outside a
//! checked run that instrumentation is one relaxed atomic load.

use std::fmt;
use std::panic::Location;
use std::sync::TryLockError;

use crate::check;
use crate::lockdep;
use crate::lockdep::LockMeta;

pub mod atomic;

/// Stable address used to identify a lock object within one model
/// schedule (`cast` drops any wide-pointer metadata for `?Sized` data).
fn obj_addr<T: ?Sized>(obj: &T) -> usize {
    (obj as *const T).cast::<()>() as usize
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out without
    // running this guard's release bookkeeping; `None` only transiently
    // inside `wait` and during drop.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    dep: lockdep::Held,
    // Back-pointer so a checked-mode `Condvar::wait` can re-acquire.
    owner: &'a Mutex<T>,
    // Model-lock address when this acquisition is checker-tracked.
    chk: Option<usize>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex. Its lockdep class is this call site.
    #[track_caller]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            meta: LockMeta::new(Location::caller(), None, false),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex in the named lockdep class.
    ///
    /// Strict: holding it across blocking device I/O is reported by
    /// [`lockdep::assert_no_locks_held`].
    #[track_caller]
    pub const fn with_class(value: T, class: &'static str) -> Mutex<T> {
        Mutex {
            meta: LockMeta::new(Location::caller(), Some(class), false),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a mutex in the named lockdep class, marked as safe to
    /// hold across blocking device I/O.
    #[track_caller]
    pub const fn with_class_io(value: T, class: &'static str) -> Mutex<T> {
        Mutex {
            meta: LockMeta::new(Location::caller(), Some(class), true),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Record the acquisition first: an acquisition that would close
        // an ordering cycle panics instead of deadlocking. Under a model
        // run the cooperative scheduler then serializes the acquisition,
        // so the std lock below never blocks a model thread.
        let dep = lockdep::on_acquire(&self.meta, Location::caller());
        let addr = obj_addr(self);
        let chk = check::mutex_lock(addr).then_some(addr);
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
            dep,
            owner: self,
            chk,
        }
    }

    /// Acquires the lock only if it is free right now.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let addr = obj_addr(self);
        if let Some(acquired) = check::mutex_try_lock(addr) {
            if !acquired {
                return None;
            }
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("invariant: a model-granted lock is free among model threads")
                }
            };
            return Some(MutexGuard {
                inner: Some(inner),
                dep: lockdep::on_acquire_try(&self.meta, Location::caller()),
                owner: self,
                chk: Some(addr),
            });
        }
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            dep: lockdep::on_acquire_try(&self.meta, Location::caller()),
            owner: self,
            chk: None,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before popping the held stack so the
        // stack never claims this thread is lock-free while it still
        // holds the std mutex.
        self.inner = None;
        if let Some(addr) = self.chk.take() {
            check::mutex_unlock(addr);
        }
        lockdep::on_release(&mut self.dep);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("invariant: a live MutexGuard always wraps the std guard")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("invariant: a live MutexGuard always wraps the std guard")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    dep: lockdep::Held,
    chk: Option<usize>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    dep: lockdep::Held,
    chk: Option<usize>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock. Its lockdep class is this call site.
    #[track_caller]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            meta: LockMeta::new(Location::caller(), None, false),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock in the named lockdep class (strict; see
    /// [`Mutex::with_class`]).
    #[track_caller]
    pub const fn with_class(value: T, class: &'static str) -> RwLock<T> {
        RwLock {
            meta: LockMeta::new(Location::caller(), Some(class), false),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Creates a lock in the named lockdep class, marked as safe to
    /// hold across blocking device I/O.
    #[track_caller]
    pub const fn with_class_io(value: T, class: &'static str) -> RwLock<T> {
        RwLock {
            meta: LockMeta::new(Location::caller(), Some(class), true),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let dep = lockdep::on_acquire(&self.meta, Location::caller());
        let addr = obj_addr(self);
        let chk = check::rw_lock(addr, false).then_some(addr);
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            dep,
            chk,
        }
    }

    /// Acquires exclusive access, blocking until available.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let dep = lockdep::on_acquire(&self.meta, Location::caller());
        let addr = obj_addr(self);
        let chk = check::rw_lock(addr, true).then_some(addr);
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            dep,
            chk,
        }
    }

    /// Acquires shared access only if no writer holds the lock.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let addr = obj_addr(self);
        let chk = match check::rw_try_lock(addr, false) {
            Some(false) => return None,
            Some(true) => Some(addr),
            None => None,
        };
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            inner,
            dep: lockdep::on_acquire_try(&self.meta, Location::caller()),
            chk,
        })
    }

    /// Acquires exclusive access only if the lock is free right now.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let addr = obj_addr(self);
        let chk = match check::rw_try_lock(addr, true) {
            Some(false) => return None,
            Some(true) => Some(addr),
            None => None,
        };
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            inner,
            dep: lockdep::on_acquire_try(&self.meta, Location::caller()),
            chk,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // Model release before the field drop frees the std lock: safe,
        // because no other model thread runs until this one yields.
        if let Some(addr) = self.chk.take() {
            check::rw_unlock(addr, false);
        }
        lockdep::on_release(&mut self.dep);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(addr) = self.chk.take() {
            check::rw_unlock(addr, true);
        }
        lockdep::on_release(&mut self.dep);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// An atomically swappable [`Arc`](std::sync::Arc) — a publish/subscribe
/// cell for immutable snapshots.
///
/// Writers build a fresh `Arc<T>` and [`ArcCell::set`] it; readers
/// [`ArcCell::get`] the current one. The internal mutex is held only long
/// enough to clone or replace the `Arc` (a refcount bump, never user
/// code), so readers never contend with whatever produced the snapshot —
/// the cell is safe to read while a writer holds unrelated locks.
pub struct ArcCell<T> {
    inner: Mutex<std::sync::Arc<T>>,
}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: std::sync::Arc<T>) -> ArcCell<T> {
        ArcCell {
            inner: Mutex::with_class(value, "testkit.arc_cell"),
        }
    }

    /// The current snapshot (a cheap refcount bump).
    pub fn get(&self) -> std::sync::Arc<T> {
        self.inner.lock().clone()
    }

    /// Publishes `value`, replacing the current snapshot.
    pub fn set(&self, value: std::sync::Arc<T>) {
        *self.inner.lock() = value;
    }

    /// Publishes `value` and returns the snapshot it replaced.
    pub fn swap(&self, value: std::sync::Arc<T>) -> std::sync::Arc<T> {
        std::mem::replace(&mut *self.inner.lock(), value)
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArcCell").field(&self.get()).finish()
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    ///
    /// Under a model run the wait is re-implemented at model level: the
    /// guard is dropped and the thread blocks in the scheduler until a
    /// notify targets this condvar (release+wait is still atomic — no
    /// scheduling point runs in between, so wakeups cannot be lost any
    /// more than with the real condvar). Lost-wakeup *bugs* in the
    /// model surface as scheduler deadlocks.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if check::is_model() {
            let owner = guard.owner;
            drop(guard);
            check::condvar_wait(obj_addr(self), false);
            return owner.lock();
        }
        let at = Location::caller();
        let owner = guard.owner;
        let (inner, class) = Self::part(&mut guard);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard {
            inner: Some(inner),
            dep: lockdep::on_wait_reacquire(class, at),
            owner,
            chk: None,
        }
    }

    /// Blocks until `cond` returns false, re-checking on every wakeup.
    #[track_caller]
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut cond: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        if check::is_model() {
            while cond(&mut *guard) {
                guard = self.wait(guard);
            }
            return guard;
        }
        let at = Location::caller();
        let owner = guard.owner;
        let (inner, class) = Self::part(&mut guard);
        let inner = self
            .inner
            .wait_while(inner, cond)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard {
            inner: Some(inner),
            dep: lockdep::on_wait_reacquire(class, at),
            owner,
            chk: None,
        }
    }

    /// Blocks until notified or `dur` elapses; returns the guard and
    /// whether the wait timed out.
    ///
    /// Under a model run the duration is ignored: a timed waiter simply
    /// stays schedulable, and the scheduler explores both the notified
    /// and the timed-out wakeup.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        if check::is_model() {
            let owner = guard.owner;
            drop(guard);
            let timed_out = check::condvar_wait(obj_addr(self), true);
            return (owner.lock(), timed_out);
        }
        let at = Location::caller();
        let owner = guard.owner;
        let (inner, class) = Self::part(&mut guard);
        let (inner, timeout) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (
            MutexGuard {
                inner: Some(inner),
                dep: lockdep::on_wait_reacquire(class, at),
                owner,
                chk: None,
            },
            timeout.timed_out(),
        )
    }

    /// Takes the std guard out of `guard` and pops its lockdep tracking:
    /// while blocked in `wait` the thread does not hold the mutex.
    fn part<'a, T>(guard: &mut MutexGuard<'a, T>) -> (std::sync::MutexGuard<'a, T>, Option<u32>) {
        let inner = guard
            .inner
            .take()
            .expect("invariant: a live MutexGuard always wraps the std guard");
        let class = lockdep::on_unlock_for_wait(&mut guard.dep);
        (inner, class)
    }

    /// Wakes one waiter.
    #[track_caller]
    pub fn notify_one(&self) {
        if check::condvar_notify(obj_addr(self), false) {
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    #[track_caller]
    pub fn notify_all(&self) {
        if check::condvar_notify(obj_addr(self), true) {
            return;
        }
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
            assert!(l.try_write().is_none());
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_stays_usable() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // Poison-transparent semantics: later lockers still get the data.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn arc_cell_publishes_snapshots() {
        let cell = Arc::new(ArcCell::new(Arc::new(1)));
        let pinned = cell.get();
        cell.set(Arc::new(2));
        // A pinned snapshot is unaffected by later publishes.
        assert_eq!(*pinned, 1);
        assert_eq!(*cell.get(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        // Readers on other threads see some published value, never a torn one.
        let c2 = cell.clone();
        let t = std::thread::spawn(move || *c2.get());
        assert!(matches!(t.join().unwrap(), 3));
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let g = cv.wait_while(m.lock(), |ready| !*ready);
        assert!(*g);
        t.join().unwrap();
    }
}
