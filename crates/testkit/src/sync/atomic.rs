//! Atomic wrappers instrumented for the [`crate::check`] model checker.
//!
//! Drop-in replacements for the `std::sync::atomic` integer/bool types
//! with the same explicit-[`Ordering`] APIs. Outside a checked run each
//! operation is the std operation plus one relaxed load; under a model
//! run each access is a scheduling point, and the declared ordering
//! feeds the vector-clock race detector exactly as the memory model
//! prescribes: `Release` (and stronger) stores publish the writer's
//! clock to the atomic, `Acquire` (and stronger) loads join it —
//! `Relaxed` accesses synchronize nothing, so data "published" over a
//! relaxed flag stays racy and is reported.
//!
//! The `raw-atomics-ratchet` lint rule holds direct `std::sync::atomic`
//! use per crate to a committed baseline; new code uses these wrappers
//! so its ordering claims are model-checkable.

pub use std::sync::atomic::Ordering;

use crate::check;

fn load_acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn store_releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn addr_of<T>(obj: &T) -> usize {
    obj as *const T as usize
}

macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        #[repr(transparent)]
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> $name {
                $name {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Loads the value with the given ordering.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $prim {
                check::atomic_access(addr_of(self), load_acquires(order), false);
                self.inner.load(order)
            }

            /// Stores `v` with the given ordering.
            #[track_caller]
            pub fn store(&self, v: $prim, order: Ordering) {
                check::atomic_access(addr_of(self), false, store_releases(order));
                self.inner.store(v, order)
            }

            /// Swaps in `v`, returning the previous value.
            #[track_caller]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.swap(v, order)
            }

            /// Adds `v`, returning the previous value.
            #[track_caller]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_add(v, order)
            }

            /// Subtracts `v`, returning the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_sub(v, order)
            }

            /// Bitwise-ands with `v`, returning the previous value.
            #[track_caller]
            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_and(v, order)
            }

            /// Bitwise-ors with `v`, returning the previous value.
            #[track_caller]
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_or(v, order)
            }

            /// Stores the maximum of the value and `v`, returning the
            /// previous value.
            #[track_caller]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_max(v, order)
            }

            /// Stores the minimum of the value and `v`, returning the
            /// previous value.
            #[track_caller]
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order);
                self.inner.fetch_min(v, order)
            }

            /// Compare-and-exchange; see
            /// [`std::sync::atomic::AtomicUsize::compare_exchange`].
            ///
            /// Model note: treated as a read-modify-write at `success`
            /// ordering whether or not it succeeds (a conservative
            /// over-approximation of the failure ordering).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.rmw(success);
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Weak compare-and-exchange (may spuriously fail); same
            /// model note as [`Self::compare_exchange`].
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.rmw(success);
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            /// Mutable access without atomics (requires exclusive
            /// ownership).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            fn rmw(&self, order: Ordering) {
                check::atomic_access(
                    addr_of(self),
                    load_acquires(order),
                    store_releases(order),
                );
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> $name {
                $name::new(v)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Direct inner load: Debug must not be a scheduling point.
                self.inner.load(Ordering::Relaxed).fmt(f)
            }
        }
    };
}

atomic_int!(
    /// An instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    AtomicU64,
    u64
);
atomic_int!(
    /// An instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    AtomicUsize,
    usize
);
atomic_int!(
    /// An instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64,
    AtomicI64,
    i64
);

/// An instrumented [`std::sync::atomic::AtomicBool`].
#[repr(transparent)]
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    /// Loads the value with the given ordering.
    #[track_caller]
    pub fn load(&self, order: Ordering) -> bool {
        check::atomic_access(addr_of(self), load_acquires(order), false);
        self.inner.load(order)
    }

    /// Stores `v` with the given ordering.
    #[track_caller]
    pub fn store(&self, v: bool, order: Ordering) {
        check::atomic_access(addr_of(self), false, store_releases(order));
        self.inner.store(v, order)
    }

    /// Swaps in `v`, returning the previous value.
    #[track_caller]
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order);
        self.inner.swap(v, order)
    }

    /// Bitwise-ands with `v`, returning the previous value.
    #[track_caller]
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order);
        self.inner.fetch_and(v, order)
    }

    /// Bitwise-ors with `v`, returning the previous value.
    #[track_caller]
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order);
        self.inner.fetch_or(v, order)
    }

    /// Compare-and-exchange; same model note as
    /// [`AtomicU64::compare_exchange`].
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.rmw(success);
        self.inner.compare_exchange(current, new, success, failure)
    }

    /// Mutable access without atomics (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    /// Consumes the atomic, returning the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    fn rmw(&self, order: Ordering) {
        check::atomic_access(addr_of(self), load_acquires(order), store_releases(order));
    }
}

impl From<bool> for AtomicBool {
    fn from(v: bool) -> AtomicBool {
        AtomicBool::new(v)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.load(Ordering::Relaxed).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: AtomicU64 = AtomicU64::new(7); // const-constructible

    #[test]
    fn int_ops_behave_like_std() {
        assert_eq!(GLOBAL.load(Ordering::Relaxed), 7);
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.fetch_sub(1, Ordering::AcqRel), 3);
        assert_eq!(a.swap(10, Ordering::SeqCst), 2);
        assert_eq!(a.fetch_max(4, Ordering::Relaxed), 10);
        assert_eq!(a.fetch_min(4, Ordering::Relaxed), 10);
        assert_eq!(a.load(Ordering::Acquire), 4);
        assert_eq!(
            a.compare_exchange(4, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(4)
        );
        assert_eq!(
            a.compare_exchange(4, 9, Ordering::AcqRel, Ordering::Acquire),
            Err(9)
        );
        let mut a = a;
        *a.get_mut() = 5;
        assert_eq!(a.into_inner(), 5);
        let i = AtomicI64::new(-3);
        assert_eq!(i.fetch_add(1, Ordering::Relaxed), -3);
        let u = AtomicUsize::from(2usize);
        assert_eq!(u.load(Ordering::SeqCst), 2);
        assert_eq!(format!("{u:?}"), "2");
    }

    #[test]
    fn bool_ops_behave_like_std() {
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::AcqRel));
        assert!(b.fetch_and(false, Ordering::Relaxed));
        assert!(!b.fetch_or(true, Ordering::Release));
        assert!(b.load(Ordering::Acquire));
        assert_eq!(
            b.compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst),
            Ok(true)
        );
        let mut b = b;
        *b.get_mut() = true;
        assert!(b.into_inner());
    }

    #[test]
    fn ordering_classification() {
        assert!(load_acquires(Ordering::Acquire));
        assert!(load_acquires(Ordering::SeqCst));
        assert!(!load_acquires(Ordering::Relaxed));
        assert!(!load_acquires(Ordering::Release));
        assert!(store_releases(Ordering::Release));
        assert!(store_releases(Ordering::AcqRel));
        assert!(!store_releases(Ordering::Acquire));
        assert!(!store_releases(Ordering::Relaxed));
    }
}
