//! Lock-order validator behavior with tracking force-enabled.
//!
//! Everything here runs with lockdep on (the force-enable is sticky and
//! process-wide, which is also why the disabled-mode checks live in
//! their own integration test binary, `lockdep_disabled.rs`). Each test
//! uses its own named classes so the recorded edges cannot interfere
//! across tests sharing the process-global graph.

use std::sync::Arc;
use std::thread;

use clio_testkit::lockdep;
use clio_testkit::sync::{Mutex, RwLock};

fn enable() {
    lockdep::force_enable();
}

/// Run `f` on a fresh thread and return the panic message it died with.
fn panic_message(f: impl FnOnce() + Send + 'static) -> String {
    // The panic is deliberate; keep the default hook from spamming the
    // test output but restore it for unrelated tests afterwards.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = thread::spawn(f)
        .join()
        .expect_err("the closure should have panicked");
    std::panic::set_hook(prev);
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => *err
            .downcast::<&'static str>()
            .map(|s| Box::new(s.to_string()))
            .expect("panic payload should be a string"),
    }
}

#[test]
fn inversion_across_threads_is_detected_with_both_sites() {
    enable();
    let a = Arc::new(Mutex::with_class(0u32, "lockdep.test.inv_a"));
    let b = Arc::new(Mutex::with_class(0u32, "lockdep.test.inv_b"));

    // Thread 1 records the ordering A -> B and exits cleanly.
    {
        let (a, b) = (a.clone(), b.clone());
        thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .unwrap();
    }

    // Thread 2 acquires B -> A: no deadlock in this schedule (thread 1
    // is long gone), but the inversion must still be reported.
    let msg = panic_message(move || {
        let _gb = b.lock();
        let _ga = a.lock();
    });

    assert!(msg.contains("lock-order inversion"), "message: {msg}");
    assert!(msg.contains("lockdep.test.inv_a"), "message: {msg}");
    assert!(msg.contains("lockdep.test.inv_b"), "message: {msg}");
    // Both acquisition sites: the prior A -> B edge and the current
    // B -> A acquisition all happened in this file.
    let mentions = msg.matches("tests/lockdep.rs").count();
    assert!(mentions >= 2, "want both acquisition sites, got: {msg}");
    assert!(msg.contains("backtrace"), "message: {msg}");
}

#[test]
fn consistent_ordering_passes_clean() {
    enable();
    let a = Arc::new(Mutex::with_class(0u32, "lockdep.test.ord_a"));
    let b = Arc::new(Mutex::with_class(0u32, "lockdep.test.ord_b"));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (a, b) = (a.clone(), b.clone());
        handles.push(thread::spawn(move || {
            for _ in 0..100 {
                let mut ga = a.lock();
                let mut gb = b.lock();
                *ga += 1;
                *gb += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*a.lock(), 400);
}

#[test]
fn three_lock_cycle_is_detected_through_the_graph() {
    enable();
    let a = Arc::new(Mutex::with_class(0u32, "lockdep.test.tri_a"));
    let b = Arc::new(Mutex::with_class(0u32, "lockdep.test.tri_b"));
    let c = Arc::new(Mutex::with_class(0u32, "lockdep.test.tri_c"));

    // Record A -> B and B -> C on separate threads.
    {
        let (a2, b2) = (a.clone(), b.clone());
        thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        })
        .join()
        .unwrap();
        let (b2, c2) = (b.clone(), c.clone());
        thread::spawn(move || {
            let _gb = b2.lock();
            let _gc = c2.lock();
        })
        .join()
        .unwrap();
    }

    // C -> A closes the cycle transitively even though no thread ever
    // held C and B together.
    let msg = panic_message(move || {
        let _gc = c.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order inversion"), "message: {msg}");
    assert!(msg.contains("lockdep.test.tri_a"), "message: {msg}");
    assert!(msg.contains("lockdep.test.tri_c"), "message: {msg}");
}

#[test]
fn same_class_nesting_is_not_an_inversion() {
    enable();
    // Shard pools create N locks at one creation site — one class. A
    // thread touching two shards in either order must not be flagged,
    // and RwLock read recursion within one class must stay legal.
    let shards: Vec<Mutex<u32>> = (0..4).map(Mutex::new).collect();
    {
        let _g0 = shards[0].lock();
        let _g1 = shards[1].lock();
    }
    {
        let _g1 = shards[1].lock();
        let _g0 = shards[0].lock();
    }
    let rw = RwLock::with_class(5u32, "lockdep.test.rw_recursive");
    let r1 = rw.read();
    let r2 = rw.read();
    assert_eq!(*r1 + *r2, 10);
}

#[test]
fn condvar_wait_releases_held_tracking() {
    enable();
    let gate = Arc::new((
        Mutex::with_class(false, "lockdep.test.cv_gate"),
        clio_testkit::sync::Condvar::new(),
    ));
    let other = Arc::new(Mutex::with_class(0u32, "lockdep.test.cv_other"));

    // Waiter: holds nothing while blocked in wait_while.
    let waiter = {
        let gate = gate.clone();
        thread::spawn(move || {
            let (m, cv) = &*gate;
            let g = cv.wait_while(m.lock(), |ready| !*ready);
            assert!(*g);
            drop(g);
            assert_eq!(lockdep::held_count(), 0);
        })
    };

    // Signaller: takes other -> gate; if wait did not release the
    // gate's tracking this ordering would look like gate -> other
    // versus other -> gate on some schedules. It must stay clean.
    {
        let mut g = other.lock();
        *g += 1;
        let (m, cv) = &*gate;
        *m.lock() = true;
        cv.notify_all();
    }
    waiter.join().unwrap();
}

#[test]
fn assert_no_locks_held_flags_strict_but_not_io_classes() {
    enable();
    // io-marked class: allowed across device writes.
    let io = Mutex::with_class_io(0u32, "lockdep.test.io_ok");
    {
        let _g = io.lock();
        lockdep::assert_no_locks_held("test io write");
    }

    // Strict class: must trip the assert, naming the class.
    let strict = Arc::new(Mutex::with_class(0u32, "lockdep.test.io_strict"));
    let msg = panic_message(move || {
        let _g = strict.lock();
        lockdep::assert_no_locks_held("test io write");
    });
    assert!(msg.contains("non-io lock"), "message: {msg}");
    assert!(msg.contains("lockdep.test.io_strict"), "message: {msg}");
    assert!(msg.contains("test io write"), "message: {msg}");
}

#[test]
fn trylock_is_tracked_on_the_held_stack() {
    enable();
    let m = Mutex::with_class(0u32, "lockdep.test.trylock");
    let g = m.try_lock().unwrap();
    assert!(lockdep::held_count() >= 1);
    drop(g);
    assert_eq!(lockdep::held_count(), 0);
    assert!(m.try_lock().is_some());
}
