//! With `CLIO_LOCKDEP` unset the validator must be inert: no held-stack
//! tracking, no edges, and inverted orderings go unreported (they cost
//! one relaxed atomic load each). Lives in its own test binary because
//! `force_enable` in the enabled-mode tests is sticky process-wide.

use std::sync::Arc;
use std::thread;

use clio_testkit::lockdep;
use clio_testkit::sync::Mutex;

#[test]
fn disabled_mode_tracks_nothing_and_stays_silent() {
    // The ci gate runs the workspace suite without CLIO_LOCKDEP; guard
    // anyway so a CLIO_LOCKDEP=1 full-workspace run skips rather than
    // fails this test.
    if std::env::var("CLIO_LOCKDEP").is_ok_and(|v| !v.is_empty() && v != "0") {
        return;
    }
    assert!(!lockdep::enabled());

    let a = Arc::new(Mutex::with_class(0u32, "lockdep.off.a"));
    let b = Arc::new(Mutex::with_class(0u32, "lockdep.off.b"));

    {
        let _ga = a.lock();
        assert_eq!(lockdep::held_count(), 0, "disabled mode must not track");
        let _gb = b.lock();
    }

    // The inverted ordering would panic under lockdep; disabled, it is
    // just a normal (non-deadlocking) schedule.
    let (a2, b2) = (a.clone(), b.clone());
    thread::spawn(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    })
    .join()
    .unwrap();

    // Strict class held across an assert: inert when disabled.
    let _g = a.lock();
    lockdep::assert_no_locks_held("disabled-mode check");
}
