//! Fault injection for log devices.
//!
//! §2.3.2: "Log volume corruption must be assumed to occur, since a log
//! volume may be written over a long period of time, during which hardware
//! and software failures may occur. A failure may cause a portion of the log
//! volume to be written with garbage." [`FaultyDevice`] wraps a device and
//! injects exactly those failures, deterministically (seeded), so the
//! recovery paths in `clio-core` can be tested and benchmarked.

use clio_testkit::rng::StdRng;
use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result};

use crate::traits::{LogDevice, SharedDevice};

/// What to inject, and how often.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that an appended block is written as garbage instead of
    /// the intended data (random bytes; trailer CRC will not verify).
    pub garbage_append_prob: f64,
    /// Probability that an appended block suffers a burst of flipped bits
    /// (simulating a marginal write that later fails its CRC).
    pub bitrot_append_prob: f64,
    /// Number of bit-bursts per bit-rotted block.
    pub bitrot_bursts: usize,
    /// RNG seed, so failures are reproducible.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            garbage_append_prob: 0.0,
            bitrot_append_prob: 0.0,
            bitrot_bursts: 3,
            seed: 0x0C11_0F17,
        }
    }
}

impl FaultPlan {
    /// A plan that corrupts roughly `prob` of appends with garbage.
    #[must_use]
    pub fn garbage(prob: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            garbage_append_prob: prob,
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan that bit-rots roughly `prob` of appends.
    #[must_use]
    pub fn bitrot(prob: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            bitrot_append_prob: prob,
            seed,
            ..FaultPlan::default()
        }
    }
}

/// A [`LogDevice`] wrapper that corrupts writes according to a [`FaultPlan`].
pub struct FaultyDevice {
    inner: SharedDevice,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    corrupted: Mutex<Vec<BlockNo>>,
    /// One-shot trigger: corrupt exactly the next append.
    force_next: Mutex<bool>,
    /// One-shot trigger: tear the next `append_blocks` batch after this
    /// many blocks have landed.
    tear_after: Mutex<Option<usize>>,
}

impl FaultyDevice {
    /// Wraps `inner` with the given plan.
    #[must_use]
    pub fn new(inner: SharedDevice, plan: FaultPlan) -> FaultyDevice {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyDevice {
            inner,
            plan,
            rng: Mutex::new(rng),
            corrupted: Mutex::new(Vec::new()),
            force_next: Mutex::new(false),
            tear_after: Mutex::new(None),
        }
    }

    /// Forces the next append to be written as garbage, regardless of the
    /// plan's probabilities. Useful for targeted tests.
    pub fn corrupt_next_append(&self) {
        *self.force_next.lock() = true;
    }

    /// Tears the next vectored `append_blocks` call after `k` blocks have
    /// landed: the first `k` blocks of the batch are written normally, the
    /// rest are dropped on the floor, and the call reports an I/O error —
    /// the crash-mid-batch a torn-batch recovery test needs. One-shot; if
    /// the next batch has `<= k` blocks it completes normally and the
    /// trigger is consumed.
    pub fn tear_next_batch_after(&self, k: usize) {
        *self.tear_after.lock() = Some(k);
    }

    /// Blocks that were written corrupted, in write order. Test oracle.
    #[must_use]
    pub fn corrupted_blocks(&self) -> Vec<BlockNo> {
        self.corrupted.lock().clone()
    }
}

impl LogDevice for FaultyDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.inner.query_end()
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        let mut rng = self.rng.lock();
        let forced = std::mem::take(&mut *self.force_next.lock());
        if forced || rng.gen_bool(self.plan.garbage_append_prob.clamp(0.0, 1.0)) {
            let mut garbage = vec![0u8; data.len()];
            rng.fill(&mut garbage[..]);
            drop(rng);
            self.inner.append_block(expected, &garbage)?;
            self.corrupted.lock().push(expected);
            return Ok(());
        }
        if rng.gen_bool(self.plan.bitrot_append_prob.clamp(0.0, 1.0)) {
            let mut rotted = data.to_vec();
            for _ in 0..self.plan.bitrot_bursts.max(1) {
                let at = rng.gen_range(0..rotted.len());
                rotted[at] ^= 1 << rng.gen_range(0..8u32);
            }
            drop(rng);
            self.inner.append_block(expected, &rotted)?;
            self.corrupted.lock().push(expected);
            return Ok(());
        }
        drop(rng);
        self.inner.append_block(expected, data)
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        let tear = self.tear_after.lock().take();
        let n = blocks.len();
        let stop = tear.map_or(n, |k| k.min(n));
        // Per-block so the plan's per-append faults stay live inside
        // batches (and so a tear leaves exactly `stop` blocks written).
        let mut at = expected;
        for b in &blocks[..stop] {
            self.append_block(at, b)?;
            at = at.next();
        }
        match tear {
            Some(k) if k < n => Err(ClioError::Io(format!(
                "fault injection tore batch after {k} of {n} blocks"
            ))),
            _ => Ok(()),
        }
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(block, buf)
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        self.inner.invalidate_block(block)
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        self.inner.rewrite_tail(block, data)
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.inner.supports_tail_rewrite()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    #[test]
    fn forced_corruption_garbles_exactly_one_block() {
        let dev = FaultyDevice::new(Arc::new(MemWormDevice::new(64, 16)), FaultPlan::default());
        let data = vec![0xAB; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        dev.corrupt_next_append();
        dev.append_block(BlockNo(1), &data).unwrap();
        dev.append_block(BlockNo(2), &data).unwrap();

        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, data);
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_ne!(buf, data);
        dev.read_block(BlockNo(2), &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dev.corrupted_blocks(), vec![BlockNo(1)]);
    }

    #[test]
    fn garbage_plan_is_deterministic_for_a_seed() {
        let run = |seed| {
            let dev = FaultyDevice::new(
                Arc::new(MemWormDevice::new(64, 256)),
                FaultPlan::garbage(0.25, seed),
            );
            let data = vec![0x55; 64];
            for i in 0..200 {
                dev.append_block(BlockNo(i), &data).unwrap();
            }
            dev.corrupted_blocks()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Roughly a quarter of appends corrupted.
        assert!(a.len() > 20 && a.len() < 90, "corrupted {} blocks", a.len());
    }

    #[test]
    fn bitrot_changes_but_resembles_data() {
        let dev = FaultyDevice::new(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::bitrot(1.0, 3),
        );
        let data = vec![0x00; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert!((1..=3 * 8).contains(&flipped), "{flipped} bits flipped");
    }
}
