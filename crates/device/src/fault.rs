//! Fault injection for log devices.
//!
//! §2.3.2: "Log volume corruption must be assumed to occur, since a log
//! volume may be written over a long period of time, during which hardware
//! and software failures may occur. A failure may cause a portion of the log
//! volume to be written with garbage." [`FaultyDevice`] wraps a device and
//! injects exactly those failures, deterministically (seeded), so the
//! recovery paths in `clio-core` can be tested and benchmarked.

use std::sync::Arc;

use clio_testkit::rng::StdRng;
use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result};

use crate::traits::{LogDevice, SharedDevice};

/// What a write operation should do, as decided by a [`CrashSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteFate {
    /// No crash pending: perform the write normally.
    Proceed,
    /// The device is already down: fail without touching the medium.
    Denied,
    /// The crash fires on this very operation; drop the write cleanly.
    CrashClean,
    /// The crash fires on this very operation; the half-finished write
    /// leaves seeded garbage on the medium (§2.3.2's "written with
    /// garbage") before the error surfaces.
    CrashGarbage,
}

#[derive(Debug)]
struct SwitchState {
    /// Write operations remaining before the crash fires (`None` = not
    /// armed).
    remaining: Option<u64>,
    /// Whether the crashing write leaves a garbage block behind.
    garbage_tail: bool,
    /// Set once the crash has fired; every device op fails until
    /// [`CrashSwitch::clear`].
    crashed: bool,
}

/// A seeded mid-run crash scheduler shared by every [`FaultyDevice`] of a
/// simulated server.
///
/// [`CrashSwitch::arm`] schedules a crash after the next N device *write*
/// operations (appends, tail rewrites, invalidations), counted across all
/// devices sharing the switch — so a crash can land between arbitrary
/// service operations, not only at append tear points. When it fires, the
/// triggering write is either dropped cleanly or replaced by a seeded
/// garbage block (a torn tail for recovery to invalidate), and every
/// subsequent operation — reads included — fails until the simulator
/// "restarts the server" by calling [`CrashSwitch::clear`] and running
/// recovery.
pub struct CrashSwitch {
    state: Mutex<SwitchState>,
    /// Source of garbage-tail bytes; seeded so torn tails replay exactly.
    rng: Mutex<StdRng>,
    /// Total write operations observed (test/sim oracle).
    ops: Mutex<u64>,
}

impl CrashSwitch {
    /// A disarmed switch whose garbage bytes derive from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Arc<CrashSwitch> {
        Arc::new(CrashSwitch {
            state: Mutex::new(SwitchState {
                remaining: None,
                garbage_tail: false,
                crashed: false,
            }),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            ops: Mutex::new(0),
        })
    }

    /// Arms the switch: the `after_ops`-th write operation from now
    /// crashes the device set. With `garbage_tail`, that operation leaves
    /// a garbage block on the medium first (a torn write); otherwise it
    /// is dropped cleanly. `after_ops` is clamped to at least 1.
    pub fn arm(&self, after_ops: u64, garbage_tail: bool) {
        let mut st = self.state.lock();
        st.remaining = Some(after_ops.max(1));
        st.garbage_tail = garbage_tail;
    }

    /// Whether the crash has fired (and [`clear`](CrashSwitch::clear) has
    /// not yet been called).
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Brings the devices back: disarms and un-crashes the switch so the
    /// simulator can run recovery against the surviving media.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.remaining = None;
        st.garbage_tail = false;
        st.crashed = false;
    }

    /// Total write operations ticked through this switch.
    #[must_use]
    pub fn write_ops(&self) -> u64 {
        *self.ops.lock()
    }

    /// Ticks one write operation and decides its fate.
    fn on_write_op(&self) -> WriteFate {
        let mut st = self.state.lock();
        if st.crashed {
            return WriteFate::Denied;
        }
        *self.ops.lock() += 1;
        match st.remaining {
            None => WriteFate::Proceed,
            Some(n) if n > 1 => {
                st.remaining = Some(n - 1);
                WriteFate::Proceed
            }
            Some(_) => {
                st.remaining = None;
                st.crashed = true;
                if st.garbage_tail {
                    WriteFate::CrashGarbage
                } else {
                    WriteFate::CrashClean
                }
            }
        }
    }

    /// Fails if the device set is down.
    fn check_up(&self) -> Result<()> {
        if self.state.lock().crashed {
            Err(ClioError::Io("simulated crash: device offline".to_owned()))
        } else {
            Ok(())
        }
    }

    fn fill_garbage(&self, buf: &mut [u8]) {
        self.rng.lock().fill(buf);
    }
}

/// What to inject, and how often.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability that an appended block is written as garbage instead of
    /// the intended data (random bytes; trailer CRC will not verify).
    pub garbage_append_prob: f64,
    /// Probability that an appended block suffers a burst of flipped bits
    /// (simulating a marginal write that later fails its CRC).
    pub bitrot_append_prob: f64,
    /// Number of bit-bursts per bit-rotted block.
    pub bitrot_bursts: usize,
    /// RNG seed, so failures are reproducible.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            garbage_append_prob: 0.0,
            bitrot_append_prob: 0.0,
            bitrot_bursts: 3,
            seed: 0x0C11_0F17,
        }
    }
}

impl FaultPlan {
    /// A plan that corrupts roughly `prob` of appends with garbage.
    #[must_use]
    pub fn garbage(prob: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            garbage_append_prob: prob,
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan that bit-rots roughly `prob` of appends.
    #[must_use]
    pub fn bitrot(prob: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            bitrot_append_prob: prob,
            seed,
            ..FaultPlan::default()
        }
    }
}

/// A [`LogDevice`] wrapper that corrupts writes according to a [`FaultPlan`].
pub struct FaultyDevice {
    inner: SharedDevice,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    corrupted: Mutex<Vec<BlockNo>>,
    /// One-shot trigger: corrupt exactly the next append.
    force_next: Mutex<bool>,
    /// One-shot trigger: tear the next `append_blocks` batch after this
    /// many blocks have landed.
    tear_after: Mutex<Option<usize>>,
    /// Shared mid-run crash scheduler, if any.
    switch: Option<Arc<CrashSwitch>>,
}

impl FaultyDevice {
    /// Wraps `inner` with the given plan.
    #[must_use]
    pub fn new(inner: SharedDevice, plan: FaultPlan) -> FaultyDevice {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyDevice {
            inner,
            plan,
            rng: Mutex::new(rng),
            corrupted: Mutex::new(Vec::new()),
            force_next: Mutex::new(false),
            tear_after: Mutex::new(None),
            switch: None,
        }
    }

    /// Wraps `inner` with the given plan and a shared [`CrashSwitch`] —
    /// how a simulated server's whole device set crashes at one seeded
    /// point mid-run.
    #[must_use]
    pub fn with_switch(
        inner: SharedDevice,
        plan: FaultPlan,
        switch: Arc<CrashSwitch>,
    ) -> FaultyDevice {
        let mut dev = FaultyDevice::new(inner, plan);
        dev.switch = Some(switch);
        dev
    }

    /// Forces the next append to be written as garbage, regardless of the
    /// plan's probabilities. Useful for targeted tests.
    pub fn corrupt_next_append(&self) {
        *self.force_next.lock() = true;
    }

    /// Tears the next vectored `append_blocks` call after `k` blocks have
    /// landed: the first `k` blocks of the batch are written normally, the
    /// rest are dropped on the floor, and the call reports an I/O error —
    /// the crash-mid-batch a torn-batch recovery test needs. One-shot; if
    /// the next batch has `<= k` blocks it completes normally and the
    /// trigger is consumed.
    pub fn tear_next_batch_after(&self, k: usize) {
        *self.tear_after.lock() = Some(k);
    }

    /// Blocks that were written corrupted, in write order. Test oracle.
    #[must_use]
    pub fn corrupted_blocks(&self) -> Vec<BlockNo> {
        self.corrupted.lock().clone()
    }
}

impl LogDevice for FaultyDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.inner.query_end()
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        if let Some(sw) = &self.switch {
            match sw.on_write_op() {
                WriteFate::Proceed => {}
                WriteFate::Denied => {
                    return Err(ClioError::Io("simulated crash: device offline".to_owned()));
                }
                WriteFate::CrashClean => {
                    return Err(ClioError::Io("simulated crash: append dropped".to_owned()));
                }
                WriteFate::CrashGarbage => {
                    // The torn write lands as garbage (recovery will CRC-fail
                    // and invalidate it), then the crash surfaces.
                    let mut garbage = vec![0u8; data.len()];
                    sw.fill_garbage(&mut garbage);
                    self.inner.append_block(expected, &garbage)?;
                    self.corrupted.lock().push(expected);
                    return Err(ClioError::Io(
                        "simulated crash: torn garbage tail".to_owned(),
                    ));
                }
            }
        }
        let mut rng = self.rng.lock();
        let forced = std::mem::take(&mut *self.force_next.lock());
        if forced || rng.gen_bool(self.plan.garbage_append_prob.clamp(0.0, 1.0)) {
            let mut garbage = vec![0u8; data.len()];
            rng.fill(&mut garbage[..]);
            drop(rng);
            self.inner.append_block(expected, &garbage)?;
            self.corrupted.lock().push(expected);
            return Ok(());
        }
        if rng.gen_bool(self.plan.bitrot_append_prob.clamp(0.0, 1.0)) {
            let mut rotted = data.to_vec();
            for _ in 0..self.plan.bitrot_bursts.max(1) {
                let at = rng.gen_range(0..rotted.len());
                rotted[at] ^= 1 << rng.gen_range(0..8u32);
            }
            drop(rng);
            self.inner.append_block(expected, &rotted)?;
            self.corrupted.lock().push(expected);
            return Ok(());
        }
        drop(rng);
        self.inner.append_block(expected, data)
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        let tear = self.tear_after.lock().take();
        let n = blocks.len();
        let stop = tear.map_or(n, |k| k.min(n));
        // Per-block so the plan's per-append faults stay live inside
        // batches (and so a tear leaves exactly `stop` blocks written).
        let mut at = expected;
        for b in &blocks[..stop] {
            self.append_block(at, b)?;
            at = at.next();
        }
        match tear {
            Some(k) if k < n => Err(ClioError::Io(format!(
                "fault injection tore batch after {k} of {n} blocks"
            ))),
            _ => Ok(()),
        }
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        if let Some(sw) = &self.switch {
            sw.check_up()?;
        }
        self.inner.read_block(block, buf)
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        if let Some(sw) = &self.switch {
            // Counts as a write op; a crash here drops the invalidation
            // cleanly (the old block content simply remains).
            if sw.on_write_op() != WriteFate::Proceed {
                return Err(ClioError::Io(
                    "simulated crash: invalidation dropped".to_owned(),
                ));
            }
        }
        self.inner.invalidate_block(block)
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        if let Some(sw) = &self.switch {
            // Counts as a write op; a crash here drops the rewrite cleanly
            // (the previously persisted tail image remains valid).
            if sw.on_write_op() != WriteFate::Proceed {
                return Err(ClioError::Io(
                    "simulated crash: tail rewrite dropped".to_owned(),
                ));
            }
        }
        self.inner.rewrite_tail(block, data)
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.inner.supports_tail_rewrite()
    }

    fn sync(&self) -> Result<()> {
        if let Some(sw) = &self.switch {
            sw.check_up()?;
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    #[test]
    fn forced_corruption_garbles_exactly_one_block() {
        let dev = FaultyDevice::new(Arc::new(MemWormDevice::new(64, 16)), FaultPlan::default());
        let data = vec![0xAB; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        dev.corrupt_next_append();
        dev.append_block(BlockNo(1), &data).unwrap();
        dev.append_block(BlockNo(2), &data).unwrap();

        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, data);
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_ne!(buf, data);
        dev.read_block(BlockNo(2), &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(dev.corrupted_blocks(), vec![BlockNo(1)]);
    }

    #[test]
    fn garbage_plan_is_deterministic_for_a_seed() {
        let run = |seed| {
            let dev = FaultyDevice::new(
                Arc::new(MemWormDevice::new(64, 256)),
                FaultPlan::garbage(0.25, seed),
            );
            let data = vec![0x55; 64];
            for i in 0..200 {
                dev.append_block(BlockNo(i), &data).unwrap();
            }
            dev.corrupted_blocks()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Roughly a quarter of appends corrupted.
        assert!(a.len() > 20 && a.len() < 90, "corrupted {} blocks", a.len());
    }

    #[test]
    fn crash_switch_fires_after_n_write_ops() {
        let sw = CrashSwitch::new(1);
        let dev = FaultyDevice::with_switch(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::default(),
            sw.clone(),
        );
        let data = vec![0xCD; 64];
        sw.arm(3, false);
        dev.append_block(BlockNo(0), &data).unwrap();
        dev.append_block(BlockNo(1), &data).unwrap();
        let err = dev.append_block(BlockNo(2), &data).unwrap_err();
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(sw.crashed());
        // Everything fails while down — including reads.
        let mut buf = vec![0u8; 64];
        assert!(dev.append_block(BlockNo(2), &data).is_err());
        assert!(dev.read_block(BlockNo(0), &mut buf).is_err());
        assert!(dev.sync().is_err());
        // Block 2 was dropped cleanly: nothing on the medium.
        sw.clear();
        assert!(!dev.is_written(BlockNo(2)).unwrap());
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, data);
        // The device works again after clear().
        dev.append_block(BlockNo(2), &data).unwrap();
    }

    #[test]
    fn crash_switch_garbage_tail_lands_then_fails() {
        let sw = CrashSwitch::new(44);
        let dev = FaultyDevice::with_switch(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::default(),
            sw.clone(),
        );
        let data = vec![0xEE; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        sw.arm(1, true);
        assert!(dev.append_block(BlockNo(1), &data).is_err());
        assert!(sw.crashed());
        sw.clear();
        // The torn block exists on the medium but holds garbage.
        assert!(dev.is_written(BlockNo(1)).unwrap());
        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_ne!(buf, data);
        assert_eq!(dev.corrupted_blocks(), vec![BlockNo(1)]);
    }

    #[test]
    fn crash_switch_is_shared_across_devices() {
        let sw = CrashSwitch::new(9);
        let a = FaultyDevice::with_switch(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::default(),
            sw.clone(),
        );
        let b = FaultyDevice::with_switch(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::default(),
            sw.clone(),
        );
        let data = vec![0x11; 64];
        sw.arm(2, false);
        a.append_block(BlockNo(0), &data).unwrap();
        assert!(b.append_block(BlockNo(0), &data).is_err());
        // The sibling device is down too.
        assert!(a.append_block(BlockNo(1), &data).is_err());
        assert_eq!(sw.write_ops(), 2);
    }

    #[test]
    fn crash_switch_counts_tail_rewrites_and_invalidations() {
        let sw = CrashSwitch::new(3);
        let dev = FaultyDevice::with_switch(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::default(),
            sw.clone(),
        );
        let data = vec![0x77; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        sw.arm(1, true);
        // Crash fires on the invalidation; even with garbage_tail armed it
        // is dropped cleanly, leaving the old content intact.
        assert!(dev.invalidate_block(BlockNo(0)).is_err());
        assert!(sw.crashed());
        sw.clear();
        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn bitrot_changes_but_resembles_data() {
        let dev = FaultyDevice::new(
            Arc::new(MemWormDevice::new(64, 16)),
            FaultPlan::bitrot(1.0, 3),
        );
        let data = vec![0x00; 64];
        dev.append_block(BlockNo(0), &data).unwrap();
        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert!((1..=3 * 8).contains(&flipped), "{flipped} bits flipped");
    }
}
