//! Device-level replication.
//!
//! §5.1, footnote 11: "our design does not preclude the possibility of
//! replication occurring at the log device level (that is, with mirrored
//! disks)." [`MirroredDevice`] presents `k` write-once replicas as one log
//! device: appends go to every replica; reads are served by the first
//! replica whose copy passes a validity check, falling over to the
//! others — so a block corrupted on one medium is transparently read from
//! its mirror, and invalidation (§2.3.2) is only needed when *every*
//! replica is bad.
//!
//! The default validity check only screens invalidated (all-1s) copies;
//! install a real one with [`MirroredDevice::with_validator`] (the log
//! service's block CRC makes a natural validator) to also fail garbage
//! corruption over to the surviving replica.

use clio_types::{BlockNo, ClioError, Result};

use crate::traits::{check_len, LogDevice, SharedDevice};

/// Decides whether a block image read from a replica is intact.
pub type BlockValidator = Box<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// A set of write-once replicas behaving as one device.
pub struct MirroredDevice {
    replicas: Vec<SharedDevice>,
    validator: Option<BlockValidator>,
}

impl MirroredDevice {
    /// Mirrors over `replicas` (at least one; identical geometry).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or geometries disagree — mirror
    /// membership is a configuration, not runtime input.
    #[must_use]
    pub fn new(replicas: Vec<SharedDevice>) -> MirroredDevice {
        assert!(!replicas.is_empty(), "a mirror needs at least one replica");
        let bs = replicas[0].block_size();
        let cap = replicas[0].capacity_blocks();
        for r in &replicas {
            assert_eq!(r.block_size(), bs, "replica block sizes disagree");
            assert_eq!(r.capacity_blocks(), cap, "replica capacities disagree");
        }
        MirroredDevice {
            replicas,
            validator: None,
        }
    }

    /// Installs a block validator; reads fail over to the next replica
    /// when a copy does not validate (not just when it is all-1s).
    #[must_use]
    pub fn with_validator(mut self, validator: BlockValidator) -> MirroredDevice {
        self.validator = Some(validator);
        self
    }

    /// Number of replicas.
    #[must_use]
    pub fn width(&self) -> usize {
        self.replicas.len()
    }

    /// Direct access to replica `i` (test hook for injecting divergence).
    #[must_use]
    pub fn replica(&self, i: usize) -> &SharedDevice {
        &self.replicas[i]
    }
}

/// A quick plausibility check: all-1s blocks are invalidated copies; the
/// full CRC check happens at the format layer, so the mirror only screens
/// out blocks its own invalidation wrote.
fn looks_invalidated(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == clio_types::INVALIDATED_BYTE)
}

impl LogDevice for MirroredDevice {
    fn block_size(&self) -> usize {
        self.replicas[0].block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.replicas[0].capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        // The mirror is as long as its shortest replica (a replica that
        // missed an append is behind; its copy of the tail is absent).
        self.replicas
            .iter()
            .map(|r| r.query_end())
            .collect::<Option<Vec<_>>>()
            .map(|ends| {
                ends.into_iter()
                    .min()
                    .expect("invariant: Mirror::new rejects an empty replica set")
            })
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        for r in &self.replicas {
            if !r.is_written(block)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        check_len(self.block_size(), data.len())?;
        // All replicas receive the append; the first hard failure aborts
        // (the already-written replicas simply run ahead, which
        // `query_end`'s min() masks until the append is retried).
        let mut accepted = false;
        let mut ahead_end = None;
        for r in &self.replicas {
            match r.append_block(expected, data) {
                Ok(()) => accepted = true,
                // A replica that already has this block (from a previous
                // partially-failed attempt) is fine — same data, same slot.
                Err(ClioError::NotAppendOnly { end, .. }) if end > expected => {
                    ahead_end = Some(end);
                }
                Err(e) => return Err(e),
            }
        }
        if !accepted {
            // No replica was missing the block: this is a genuine attempt
            // to rewrite written storage, not a catch-up retry.
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: ahead_end.unwrap_or(expected),
            });
        }
        Ok(())
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        for b in blocks {
            check_len(self.block_size(), b.len())?;
        }
        let n = blocks.len() as u64;
        let mut accepted = false;
        let mut ahead_end = None;
        for r in &self.replicas {
            match r.append_blocks(expected, blocks) {
                Ok(()) => accepted = true,
                // A replica ahead of `expected` already has a prefix of the
                // batch from a previous partially-failed attempt: same
                // data, same slots. Complete its missing suffix, or leave
                // it alone if it already has the whole batch.
                Err(ClioError::NotAppendOnly { end, .. }) if end > expected => {
                    if end.0 >= expected.0 + n {
                        ahead_end = Some(end);
                    } else {
                        let have = (end.0 - expected.0) as usize;
                        r.append_blocks(end, &blocks[have..])?;
                        accepted = true;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if !accepted {
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: ahead_end.unwrap_or(expected),
            });
        }
        Ok(())
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        let mut last_err = None;
        let mut fallback: Option<Vec<u8>> = None;
        for r in &self.replicas {
            match r.read_block(block, buf) {
                Ok(()) => {
                    let intact =
                        !looks_invalidated(buf) && self.validator.as_ref().is_none_or(|v| v(buf));
                    if intact {
                        return Ok(());
                    }
                    // Keep a coherent copy as the fallback (label block 0
                    // and other non-log blocks may legitimately fail a log
                    // validator) — a later replica's *failed* read may
                    // partially clobber `buf`, so snapshot it now.
                    if fallback.is_none() {
                        fallback = Some(buf.to_vec());
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        if let Some(copy) = fallback {
            // Every readable copy failed validation; return the first one
            // coherently and let the format layer classify it.
            buf.copy_from_slice(&copy);
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| ClioError::Internal("mirror with no replicas".into())))
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        for r in &self.replicas {
            r.invalidate_block(block)?;
        }
        Ok(())
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        for r in &self.replicas {
            r.rewrite_tail(block, data)?;
        }
        Ok(())
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.replicas.iter().all(|r| r.supports_tail_rewrite())
    }

    fn sync(&self) -> Result<()> {
        for r in &self.replicas {
            r.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    fn mirror(width: usize) -> (Vec<Arc<MemWormDevice>>, MirroredDevice) {
        let raw: Vec<Arc<MemWormDevice>> = (0..width)
            .map(|_| Arc::new(MemWormDevice::new(64, 32)))
            .collect();
        let shared: Vec<SharedDevice> = raw.iter().map(|r| r.clone() as SharedDevice).collect();
        (raw, MirroredDevice::new(shared))
    }

    #[test]
    fn appends_reach_every_replica() {
        let (raw, m) = mirror(3);
        m.append_block(BlockNo(0), &[7u8; 64]).unwrap();
        for r in &raw {
            let mut buf = vec![0u8; 64];
            r.read_block(BlockNo(0), &mut buf).unwrap();
            assert_eq!(buf, vec![7u8; 64]);
        }
        assert_eq!(m.query_end(), Some(BlockNo(1)));
    }

    #[test]
    fn read_falls_over_to_a_good_replica() {
        let (raw, m) = mirror(2);
        m.append_block(BlockNo(0), &[9u8; 64]).unwrap();
        // Replica 0's copy rots away (scribbled to all-1s — the state our
        // invalidation would leave).
        raw[0].invalidate_block(BlockNo(0)).unwrap();
        let mut buf = vec![0u8; 64];
        m.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![9u8; 64], "served from the surviving mirror");
    }

    #[test]
    fn all_replicas_bad_reads_invalidated() {
        let (raw, m) = mirror(2);
        m.append_block(BlockNo(0), &[9u8; 64]).unwrap();
        for r in &raw {
            r.invalidate_block(BlockNo(0)).unwrap();
        }
        let mut buf = vec![0u8; 64];
        m.read_block(BlockNo(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn append_only_still_enforced() {
        let (_, m) = mirror(2);
        m.append_block(BlockNo(0), &[1u8; 64]).unwrap();
        assert!(matches!(
            m.append_block(BlockNo(0), &[2u8; 64]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        assert!(matches!(
            m.append_block(BlockNo(5), &[2u8; 64]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
    }

    #[test]
    fn partial_append_retries_converge() {
        // Simulate a torn mirror append: replica 0 got the block, replica 1
        // did not (we model it by appending to replica 0 directly).
        let (raw, m) = mirror(2);
        raw[0].append_block(BlockNo(0), &[3u8; 64]).unwrap();
        assert_eq!(m.query_end(), Some(BlockNo(0)), "mirror end is the min");
        // Retrying through the mirror completes the lagging replica and is
        // a no-op on the one that ran ahead.
        m.append_block(BlockNo(0), &[3u8; 64]).unwrap();
        assert_eq!(m.query_end(), Some(BlockNo(1)));
        let mut buf = vec![0u8; 64];
        raw[1].read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 64]);
    }
}
