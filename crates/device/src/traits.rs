//! The write-once log device abstraction.

use std::sync::Arc;

use clio_types::{BlockNo, ClioError, Result};

/// A shared, thread-safe handle to a log device.
pub type SharedDevice = Arc<dyn LogDevice>;

/// A non-volatile, block-oriented storage device that supports random access
/// for reading and append-only write access (§2).
///
/// All methods take `&self`; implementations use interior mutability so a
/// device can be shared between the writer, the block cache and recovery
/// code. Blocks are fixed-size; `append_block` may only ever write the first
/// unwritten block, which keeps the written portion a prefix of the device.
///
/// Two operations extend the strict WORM model, both with physical
/// justification in the paper:
///
/// - [`LogDevice::invalidate_block`] burns a block to all 1s. On real
///   write-once media this is always possible, because bits only transition
///   one way; Clio uses it to invalidate corrupted blocks (§2.3.2).
/// - [`LogDevice::rewrite_tail`] rewrites the *last written* block only.
///   It is unsupported on pure WORM devices and provided by
///   [`crate::RamTailDevice`], which models the battery-backed RAM the paper
///   proposes for the tail of the log (§2.3.1).
pub trait LogDevice: Send + Sync {
    /// The block size in bytes. Constant for the life of the device.
    fn block_size(&self) -> usize;

    /// Total number of blocks on the medium.
    fn capacity_blocks(&self) -> u64;

    /// The number of written blocks, if the device can be queried for it
    /// directly.
    ///
    /// Some drives cannot report their write position; recovery then finds
    /// the end by binary search over [`LogDevice::is_written`] (§2.3.1:
    /// "if this block cannot be found by directly querying the device, then
    /// binary search is used").
    fn query_end(&self) -> Option<BlockNo>;

    /// Whether the given block has been written (readable without error
    /// other than corruption). Used by the binary-search end locator.
    fn is_written(&self, block: BlockNo) -> Result<bool>;

    /// Appends one block of exactly [`LogDevice::block_size`] bytes.
    ///
    /// `expected` must equal the current append point (the first unwritten
    /// block); otherwise [`ClioError::NotAppendOnly`] is returned. This is
    /// the software analogue of a drive "physically incapable of writing
    /// anywhere except at the end of the written portion" (§2).
    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()>;

    /// Appends a batch of blocks starting at the current append point.
    ///
    /// `expected` must equal the append point exactly as for
    /// [`LogDevice::append_block`]; the blocks land contiguously in order.
    /// The default implementation loops over `append_block`, so a crash or
    /// fault mid-batch can leave any prefix of the batch written — callers
    /// that need to know how much landed must re-locate the end. Native
    /// implementations may write the whole batch in one device operation
    /// (one syscall + one sync for the file device), which is what the
    /// group-commit write path exploits.
    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        let mut at = expected;
        for b in blocks {
            self.append_block(at, b)?;
            at = at.next();
        }
        Ok(())
    }

    /// Reads a written block into `buf` (length [`LogDevice::block_size`]).
    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()>;

    /// Burns a block to all 1s, marking it invalid (§2.3.2).
    ///
    /// Unlike appends this is permitted on *any* block at or before the
    /// append point, because on write-once media turning remaining bits on
    /// is always physically possible.
    fn invalidate_block(&self, block: BlockNo) -> Result<()>;

    /// Rewrites the last written block in place.
    ///
    /// Only devices with rewriteable tail storage support this; the default
    /// implementation reports [`ClioError::Unsupported`].
    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        let _ = (block, data);
        Err(ClioError::Unsupported("tail rewrite on pure WORM device"))
    }

    /// Whether [`LogDevice::rewrite_tail`] is available.
    fn supports_tail_rewrite(&self) -> bool {
        false
    }

    /// Forces buffered state to stable storage.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Locates the append point (first unwritten block) of a device.
///
/// Uses [`LogDevice::query_end`] when available, otherwise binary search over
/// the written-prefix property, costing `O(log2 capacity)` probes (§2.3.1).
/// Returns the number of probes performed alongside the end, so recovery
/// benchmarks can account for them.
pub fn locate_end(dev: &dyn LogDevice) -> Result<(BlockNo, u64)> {
    if let Some(end) = dev.query_end() {
        return Ok((end, 0));
    }
    // The written blocks form a prefix [0, end). Find the least unwritten
    // block by binary search.
    let mut probes = 0u64;
    let (mut lo, mut hi) = (0u64, dev.capacity_blocks());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if dev.is_written(BlockNo(mid))? {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok((BlockNo(lo), probes))
}

/// Validates a buffer length against the device block size.
///
/// Shared helper for implementations.
pub(crate) fn check_len(dev_block_size: usize, len: usize) -> Result<()> {
    if len != dev_block_size {
        return Err(ClioError::Internal(format!(
            "buffer of {len} bytes does not match block size {dev_block_size}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemWormDevice;

    #[test]
    fn locate_end_with_query() {
        let dev = MemWormDevice::new(64, 100);
        let blk = vec![1u8; 64];
        for i in 0..5 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let (end, probes) = locate_end(&dev).unwrap();
        assert_eq!(end, BlockNo(5));
        assert_eq!(probes, 0);
    }

    #[test]
    fn locate_end_by_binary_search() {
        let dev = MemWormDevice::new(64, 1000).without_end_query();
        let blk = vec![2u8; 64];
        for i in 0..137 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let (end, probes) = locate_end(&dev).unwrap();
        assert_eq!(end, BlockNo(137));
        assert!(probes > 0 && probes <= 10, "probes = {probes}");
    }

    #[test]
    fn locate_end_empty_and_full() {
        let dev = MemWormDevice::new(64, 8).without_end_query();
        assert_eq!(locate_end(&dev).unwrap().0, BlockNo(0));
        let blk = vec![0u8; 64];
        for i in 0..8 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        assert_eq!(locate_end(&dev).unwrap().0, BlockNo(8));
    }
}
