//! In-memory write-once device.

use clio_testkit::lockdep;
use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result, INVALIDATED_BYTE};

use crate::traits::{check_len, LogDevice};

/// An in-memory write-once (WORM) device.
///
/// The written portion is a prefix of the block array; [`MemWormDevice::
/// append_block`] rejects any write that is not at the append point, which is
/// the defining property the Clio algorithms rely on. The device survives a
/// simulated server crash simply by outliving the server structures (its
/// contents model the non-volatile medium).
pub struct MemWormDevice {
    inner: Mutex<Inner>,
    block_size: usize,
    capacity: u64,
    end_query: bool,
}

struct Inner {
    /// Concatenated block contents; `end` counts written blocks.
    data: Vec<u8>,
    end: u64,
    /// Blocks burned to all 1s (kept for cheap `is_invalidated` checks in
    /// tests; the data itself is also overwritten).
    invalidated: Vec<u64>,
}

impl MemWormDevice {
    /// Creates a device of `capacity` blocks of `block_size` bytes.
    #[must_use]
    pub fn new(block_size: usize, capacity: u64) -> MemWormDevice {
        MemWormDevice {
            inner: Mutex::with_class(
                Inner {
                    data: Vec::new(),
                    end: 0,
                    invalidated: Vec::new(),
                },
                "device.mem",
            ),
            block_size,
            capacity,
            end_query: true,
        }
    }

    /// Disables the direct end-of-written-portion query, forcing recovery to
    /// locate the end by binary search (§2.3.1).
    #[must_use]
    pub fn without_end_query(mut self) -> MemWormDevice {
        self.end_query = false;
        self
    }

    /// Blocks invalidated so far, in invalidation order. Test hook.
    #[must_use]
    pub fn invalidated_blocks(&self) -> Vec<BlockNo> {
        self.inner
            .lock()
            .invalidated
            .iter()
            .map(|&b| BlockNo(b))
            .collect()
    }

    /// Directly scribbles garbage into a block, bypassing the append-only
    /// check — the hardware/software failure of §2.3.2 ("a failure may cause
    /// a portion of the log volume to be written with garbage").
    ///
    /// If the block lies beyond the current end, the written region is
    /// extended to cover it, modelling a runaway write head: the blocks in
    /// between read back as garbage (zero-filled here, undetectable magic).
    pub fn scribble(&self, block: BlockNo, garbage: &[u8]) -> Result<()> {
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.inner.lock();
        let needed = (block.0 + 1) * self.block_size as u64;
        if (g.data.len() as u64) < needed {
            g.data.resize(needed as usize, 0);
        }
        if block.0 >= g.end {
            g.end = block.0 + 1;
        }
        let off = block.0 as usize * self.block_size;
        let n = garbage.len().min(self.block_size);
        g.data[off..off + n].copy_from_slice(&garbage[..n]);
        Ok(())
    }
}

impl LogDevice for MemWormDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.end_query.then(|| BlockNo(self.inner.lock().end))
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        Ok(block.0 < self.inner.lock().end)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        lockdep::assert_no_locks_held("MemWormDevice::append_block");
        check_len(self.block_size, data.len())?;
        let mut g = self.inner.lock();
        if g.end >= self.capacity {
            return Err(ClioError::VolumeFull);
        }
        if expected.0 != g.end {
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: BlockNo(g.end),
            });
        }
        g.data.extend_from_slice(data);
        g.end += 1;
        Ok(())
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        lockdep::assert_no_locks_held("MemWormDevice::append_blocks");
        for b in blocks {
            check_len(self.block_size, b.len())?;
        }
        let n = blocks.len() as u64;
        let mut g = self.inner.lock();
        if g.end + n > self.capacity {
            return Err(ClioError::VolumeFull);
        }
        if expected.0 != g.end {
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: BlockNo(g.end),
            });
        }
        for b in blocks {
            g.data.extend_from_slice(b);
        }
        g.end += n;
        Ok(())
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        check_len(self.block_size, buf.len())?;
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let g = self.inner.lock();
        if block.0 >= g.end {
            return Err(ClioError::UnwrittenBlock(block));
        }
        let off = block.0 as usize * self.block_size;
        buf.copy_from_slice(&g.data[off..off + self.block_size]);
        Ok(())
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        lockdep::assert_no_locks_held("MemWormDevice::invalidate_block");
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.inner.lock();
        if block.0 >= g.end {
            return Err(ClioError::UnwrittenBlock(block));
        }
        let off = block.0 as usize * self.block_size;
        g.data[off..off + self.block_size].fill(INVALIDATED_BYTE);
        g.invalidated.push(block.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(b: u8, size: usize) -> Vec<u8> {
        vec![b; size]
    }

    #[test]
    fn append_then_read_round_trips() {
        let dev = MemWormDevice::new(32, 4);
        dev.append_block(BlockNo(0), &blk(0xAA, 32)).unwrap();
        dev.append_block(BlockNo(1), &blk(0xBB, 32)).unwrap();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, blk(0xAA, 32));
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_eq!(buf, blk(0xBB, 32));
    }

    #[test]
    fn append_only_is_enforced() {
        let dev = MemWormDevice::new(32, 4);
        dev.append_block(BlockNo(0), &blk(1, 32)).unwrap();
        // Rewriting block 0 is refused.
        let err = dev.append_block(BlockNo(0), &blk(2, 32)).unwrap_err();
        assert!(matches!(err, ClioError::NotAppendOnly { .. }));
        // Skipping ahead is refused.
        let err = dev.append_block(BlockNo(2), &blk(2, 32)).unwrap_err();
        assert!(matches!(err, ClioError::NotAppendOnly { .. }));
        // The original data is intact.
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, blk(1, 32));
    }

    #[test]
    fn reading_unwritten_fails() {
        let dev = MemWormDevice::new(32, 4);
        let mut buf = vec![0u8; 32];
        assert_eq!(
            dev.read_block(BlockNo(0), &mut buf).unwrap_err(),
            ClioError::UnwrittenBlock(BlockNo(0))
        );
        assert_eq!(
            dev.read_block(BlockNo(9), &mut buf).unwrap_err(),
            ClioError::OutOfRange(BlockNo(9))
        );
    }

    #[test]
    fn volume_fills_up() {
        let dev = MemWormDevice::new(16, 2);
        dev.append_block(BlockNo(0), &blk(0, 16)).unwrap();
        dev.append_block(BlockNo(1), &blk(0, 16)).unwrap();
        assert_eq!(
            dev.append_block(BlockNo(2), &blk(0, 16)).unwrap_err(),
            ClioError::VolumeFull
        );
    }

    #[test]
    fn invalidation_burns_to_ones() {
        let dev = MemWormDevice::new(16, 4);
        dev.append_block(BlockNo(0), &blk(0x12, 16)).unwrap();
        dev.invalidate_block(BlockNo(0)).unwrap();
        let mut buf = vec![0u8; 16];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == INVALIDATED_BYTE));
        assert_eq!(dev.invalidated_blocks(), vec![BlockNo(0)]);
        // Cannot invalidate unwritten blocks.
        assert!(dev.invalidate_block(BlockNo(3)).is_err());
    }

    #[test]
    fn tail_rewrite_unsupported_on_pure_worm() {
        let dev = MemWormDevice::new(16, 4);
        dev.append_block(BlockNo(0), &blk(0, 16)).unwrap();
        assert!(!dev.supports_tail_rewrite());
        assert!(matches!(
            dev.rewrite_tail(BlockNo(0), &blk(1, 16)).unwrap_err(),
            ClioError::Unsupported(_)
        ));
    }

    #[test]
    fn scribble_extends_end_and_overwrites() {
        let dev = MemWormDevice::new(16, 8);
        dev.append_block(BlockNo(0), &blk(1, 16)).unwrap();
        dev.scribble(BlockNo(3), &blk(0xEE, 16)).unwrap();
        assert_eq!(dev.query_end(), Some(BlockNo(4)));
        let mut buf = vec![0u8; 16];
        dev.read_block(BlockNo(3), &mut buf).unwrap();
        assert_eq!(buf, blk(0xEE, 16));
        // Block 0 is untouched, blocks 1–2 read as zero garbage.
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, blk(1, 16));
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_eq!(buf, blk(0, 16));
    }

    #[test]
    fn wrong_buffer_length_is_an_internal_error() {
        let dev = MemWormDevice::new(16, 2);
        assert!(matches!(
            dev.append_block(BlockNo(0), &[0u8; 15]).unwrap_err(),
            ClioError::Internal(_)
        ));
    }
}
