//! Rewriteable block stores.
//!
//! The conventional file server that Clio extends (§2) — and the
//! indirect-block file system baseline of §1 — run on ordinary rewriteable
//! disks. [`BlockStore`] is that abstraction: fixed-size blocks, random read
//! *and write* access.

use std::fs::File;
use std::path::Path;

use clio_testkit::lockdep;
use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result};

/// The one place in the device layer allowed to touch raw host-file
/// primitives.
///
/// Everything position- or extent-changing (`OpenOptions`, `seek`,
/// `set_len`, positioned writes) funnels through these helpers so the
/// write-once discipline of the devices built on top can be audited in
/// one screen of code; the `worm-writes` rule in `clio-lint` rejects
/// those primitives anywhere else under `crates/device/src`.
pub(crate) mod raw {
    use std::fs::{File, OpenOptions};
    use std::io::{self, Read, Seek, SeekFrom, Write};
    use std::path::Path;

    /// Opens `path` read-write, creating or truncating it.
    pub(crate) fn create_rw(path: &Path) -> io::Result<File> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
    }

    /// Opens an existing `path` read-write.
    pub(crate) fn open_rw(path: &Path) -> io::Result<File> {
        OpenOptions::new().read(true).write(true).open(path)
    }

    /// Extends (or shrinks) the file to exactly `len` bytes.
    pub(crate) fn set_extent(file: &File, len: u64) -> io::Result<()> {
        file.set_len(len)
    }

    /// Reads exactly `buf.len()` bytes at absolute offset `off`.
    pub(crate) fn read_at(file: &mut File, off: u64, buf: &mut [u8]) -> io::Result<()> {
        file.seek(SeekFrom::Start(off))?;
        file.read_exact(buf)
    }

    /// Writes all of `data` at absolute offset `off`.
    pub(crate) fn write_at(file: &mut File, off: u64, data: &[u8]) -> io::Result<()> {
        file.seek(SeekFrom::Start(off))?;
        file.write_all(data)
    }

    /// Appends all of `data` at the file's current end.
    pub(crate) fn append_at_end(file: &mut File, data: &[u8]) -> io::Result<()> {
        file.seek(SeekFrom::End(0))?;
        file.write_all(data)
    }
}

/// A rewriteable, block-oriented storage device (a conventional disk).
pub trait BlockStore: Send + Sync {
    /// The block size in bytes.
    fn block_size(&self) -> usize;

    /// Total number of blocks.
    fn capacity_blocks(&self) -> u64;

    /// Reads block `block` into `buf`.
    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()>;

    /// Writes block `block` from `data` (any block, any number of times).
    fn write_block(&self, block: BlockNo, data: &[u8]) -> Result<()>;

    /// Flushes to stable storage.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

impl<T: BlockStore + ?Sized> BlockStore for std::sync::Arc<T> {
    fn block_size(&self) -> usize {
        (**self).block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        (**self).capacity_blocks()
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        (**self).read_block(block, buf)
    }

    fn write_block(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        (**self).write_block(block, data)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
}

/// An in-memory rewriteable block store.
pub struct MemBlockStore {
    block_size: usize,
    capacity: u64,
    data: Mutex<Vec<u8>>,
}

impl MemBlockStore {
    /// Creates a zero-filled store of `capacity` blocks.
    #[must_use]
    pub fn new(block_size: usize, capacity: u64) -> MemBlockStore {
        MemBlockStore {
            block_size,
            capacity,
            data: Mutex::with_class(vec![0; block_size * capacity as usize], "device.store.mem"),
        }
    }

    fn check(&self, block: BlockNo, len: usize) -> Result<usize> {
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        if len != self.block_size {
            return Err(ClioError::Internal(format!(
                "buffer of {len} bytes does not match block size {}",
                self.block_size
            )));
        }
        Ok(block.0 as usize * self.block_size)
    }
}

impl BlockStore for MemBlockStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        let off = self.check(block, buf.len())?;
        buf.copy_from_slice(&self.data.lock()[off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        lockdep::assert_no_locks_held("MemBlockStore::write_block");
        let off = self.check(block, data.len())?;
        self.data.lock()[off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }
}

/// A host-file-backed rewriteable block store.
pub struct FileBlockStore {
    block_size: usize,
    capacity: u64,
    file: Mutex<File>,
}

impl FileBlockStore {
    /// Creates (or truncates) a store file of the full capacity.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        capacity: u64,
    ) -> Result<FileBlockStore> {
        let file = raw::create_rw(path.as_ref())?;
        raw::set_extent(&file, block_size as u64 * capacity)?;
        Ok(FileBlockStore {
            block_size,
            capacity,
            file: Mutex::with_class(file, "device.store.file"),
        })
    }

    /// Opens an existing store file.
    pub fn open<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        capacity: u64,
    ) -> Result<FileBlockStore> {
        let file = raw::open_rw(path.as_ref())?;
        Ok(FileBlockStore {
            block_size,
            capacity,
            file: Mutex::with_class(file, "device.store.file"),
        })
    }

    fn check(&self, block: BlockNo, len: usize) -> Result<u64> {
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        if len != self.block_size {
            return Err(ClioError::Internal(format!(
                "buffer of {len} bytes does not match block size {}",
                self.block_size
            )));
        }
        Ok(block.0 * self.block_size as u64)
    }
}

impl BlockStore for FileBlockStore {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        let off = self.check(block, buf.len())?;
        raw::read_at(&mut self.file.lock(), off, buf)?;
        Ok(())
    }

    fn write_block(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        lockdep::assert_no_locks_held("FileBlockStore::write_block");
        let off = self.check(block, data.len())?;
        raw::write_at(&mut self.file.lock(), off, data)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        lockdep::assert_no_locks_held("FileBlockStore::sync");
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_read_write() {
        let st = MemBlockStore::new(32, 4);
        st.write_block(BlockNo(2), &[9u8; 32]).unwrap();
        st.write_block(BlockNo(2), &[10u8; 32]).unwrap(); // rewriteable
        let mut buf = vec![0u8; 32];
        st.read_block(BlockNo(2), &mut buf).unwrap();
        assert_eq!(buf, vec![10u8; 32]);
        st.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; 32]); // zero-filled initially
    }

    #[test]
    fn mem_store_bounds() {
        let st = MemBlockStore::new(32, 4);
        let mut buf = vec![0u8; 32];
        assert!(st.read_block(BlockNo(4), &mut buf).is_err());
        assert!(st.write_block(BlockNo(4), &buf).is_err());
        assert!(st.write_block(BlockNo(0), &[0u8; 31]).is_err());
    }

    #[test]
    fn file_store_round_trip() {
        let mut p = std::env::temp_dir();
        p.push(format!("clio-block-store-{}", std::process::id()));
        let st = FileBlockStore::create(&p, 64, 8).unwrap();
        st.write_block(BlockNo(7), &[0x42; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        st.read_block(BlockNo(7), &mut buf).unwrap();
        assert_eq!(buf, vec![0x42; 64]);
        drop(st);
        let st = FileBlockStore::open(&p, 64, 8).unwrap();
        st.read_block(BlockNo(7), &mut buf).unwrap();
        assert_eq!(buf, vec![0x42; 64]);
        std::fs::remove_file(&p).unwrap();
    }
}
