#![warn(missing_docs)]
//! Log devices and block stores for the Clio log service.
//!
//! The paper requires the log device only to be "a non-volatile,
//! block-oriented storage device that supports random access for reading,
//! and append-only write access" (§2). We do not have a write-once optical
//! drive, so — exactly as the authors themselves did during development
//! (§3.1: "the current configuration uses magnetic disk to simulate
//! write-once storage") — this crate provides devices that *enforce* the
//! append-only contract in software:
//!
//! - [`MemWormDevice`]: an in-memory write-once device, the workhorse for
//!   tests and benchmarks;
//! - [`FileWormDevice`]: a host-file-backed write-once device;
//! - [`RamTailDevice`]: a wrapper modelling battery-backed RAM at the tail of
//!   the device, so the most recent partial block stays rewriteable until
//!   sealed (§2.3.1);
//! - [`InstrumentedDevice`]: a wrapper counting block reads, appends and
//!   seeks, which benchmarks convert into modelled 1987 latencies;
//! - [`FaultyDevice`]: a fault-injection wrapper that corrupts blocks, to
//!   exercise the recovery paths of §2.3.
//!
//! The crate also defines [`BlockStore`], the *rewriteable* block device used
//! by the conventional file system substrate (`clio-fs`), with in-memory and
//! file-backed implementations.

pub mod fault;
pub mod file;
pub mod mem;
pub mod mirror;
pub mod ram_tail;
pub mod stats;
pub mod store;
pub mod traits;

pub use fault::{CrashSwitch, FaultPlan, FaultyDevice};
pub use file::FileWormDevice;
pub use mem::MemWormDevice;
pub use mirror::MirroredDevice;
pub use ram_tail::RamTailDevice;
pub use stats::{DeviceStats, InstrumentedDevice, StatsSnapshot};
pub use store::{BlockStore, FileBlockStore, MemBlockStore};
pub use traits::{LogDevice, SharedDevice};
