//! Battery-backed RAM staging for the tail of the log.
//!
//! On a purely write-once device, frequent forced writes cause internal
//! fragmentation because a partially filled block, once written, can never
//! be completed. The paper therefore proposes that "the tail end of the log
//! device is implemented as rewriteable non-volatile storage, such as
//! battery backed-up RAM" (§2.3.1). [`RamTailDevice`] models exactly that:
//! the block at the append point may be rewritten any number of times, and
//! is burned to the underlying WORM device only when sealed.
//!
//! # Torn burns
//!
//! A burn that fails midway can leave the WORM slot "written with garbage"
//! (§2.3.2). A write-once slot can never be re-burned, so if the staged
//! image were discarded whenever the slot reads as written, a torn burn
//! would destroy the only good copy of forced-acknowledged data — the
//! whole-system simulator found exactly that loss. The battery-backed RAM
//! therefore retires a staged image only after verifying the medium holds
//! the intended bytes; a garbage burn instead *orphans* the image: it
//! stays pinned in NV RAM for the volume's lifetime, shadowing the
//! unusable slot, so reads (and crash recovery) keep seeing the
//! authoritative content.

use std::collections::BTreeMap;

use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result, INVALIDATED_BYTE};

use crate::traits::{check_len, LogDevice, SharedDevice};

/// A log device with a rewriteable, non-volatile tail block.
///
/// The wrapper is itself non-volatile: in simulations a server "crash"
/// destroys the server's in-memory structures but keeps the device (and with
/// it the battery-backed tail buffer) alive, so no forced data is lost.
pub struct RamTailDevice {
    inner: SharedDevice,
    tail: Mutex<TailState>,
}

struct TailState {
    /// The rewriteable block at the append point, if staged.
    tail: Option<Tail>,
    /// Images whose WORM burn was torn (the medium slot holds garbage):
    /// the battery-backed RAM serves them forever, keyed by block number.
    orphans: BTreeMap<u64, Vec<u8>>,
}

struct Tail {
    block: BlockNo,
    data: Vec<u8>,
}

impl RamTailDevice {
    /// Wraps `inner` with a battery-backed tail buffer.
    #[must_use]
    pub fn new(inner: SharedDevice) -> RamTailDevice {
        RamTailDevice {
            inner,
            // Held across the inner device's appends by design: sealing
            // the staged tail block must be atomic w.r.t. other appenders.
            tail: Mutex::with_class_io(
                TailState {
                    tail: None,
                    orphans: BTreeMap::new(),
                },
                "device.ram_tail",
            ),
        }
    }

    /// The underlying device's append point (first block not burned to WORM).
    fn inner_end(&self) -> Result<BlockNo> {
        match self.inner.query_end() {
            Some(e) => Ok(e),
            None => Ok(crate::traits::locate_end(&*self.inner)?.0),
        }
    }

    /// Whether a tail buffer currently holds an unsealed block. Test hook.
    #[must_use]
    pub fn has_tail(&self) -> bool {
        self.tail.lock().tail.is_some()
    }

    /// Blocks pinned in NV RAM because their burn was torn. Test hook.
    #[must_use]
    pub fn orphaned_blocks(&self) -> Vec<BlockNo> {
        self.tail
            .lock()
            .orphans
            .keys()
            .copied()
            .map(BlockNo)
            .collect()
    }

    /// True if the medium holds exactly `intended` at `block`.
    fn medium_matches(&self, block: BlockNo, intended: &[u8]) -> bool {
        let mut buf = vec![0u8; self.inner.block_size()];
        self.inner
            .read_block(block, &mut buf)
            .map(|()| buf == intended)
            .unwrap_or(false)
    }

    /// Settles the staged image after a burn of `intended` at its block
    /// failed. Three cases: nothing landed (keep the image staged for a
    /// retry), the intended bytes landed despite the error (retire the
    /// image), or the slot was torn with garbage (orphan the image — the
    /// slot is unusable, the NV copy is now the authoritative content).
    fn settle_failed_burn(&self, st: &mut TailState, block: BlockNo, intended: &[u8]) {
        if !self.inner.is_written(block).unwrap_or(false) {
            return;
        }
        let landed_ok = self.medium_matches(block, intended);
        if let Some(t) = st.tail.take() {
            if !landed_ok {
                st.orphans.insert(t.block.0, t.data);
            }
        }
    }

    /// Burns the staged image through to WORM (the "drain" when an append
    /// moves past a staged block). On a torn burn the image is orphaned
    /// and draining counts as done; a burn that wrote nothing keeps the
    /// image staged and surfaces the error.
    fn drain_staged(&self, st: &mut TailState) -> Result<()> {
        let Some(t) = &st.tail else {
            return Ok(());
        };
        let (block, r) = (t.block, self.inner.append_block(t.block, &t.data));
        match r {
            Ok(()) => {
                st.tail = None;
                Ok(())
            }
            Err(e) => {
                if self.inner.is_written(block).unwrap_or(false) {
                    let data = st.tail.take().map(|t| t.data).unwrap_or_default();
                    if !self.medium_matches(block, &data) {
                        st.orphans.insert(block.0, data);
                    }
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}

impl LogDevice for RamTailDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        let end = self.inner.query_end()?;
        let g = self.tail.lock();
        Some(match &g.tail {
            Some(t) if t.block == end => end.next(),
            _ => end,
        })
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        let g = self.tail.lock();
        if let Some(t) = &g.tail {
            if t.block == block {
                return Ok(true);
            }
        }
        if g.orphans.contains_key(&block.0) {
            return Ok(true);
        }
        drop(g);
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        check_len(self.block_size(), data.len())?;
        let mut g = self.tail.lock();
        match &g.tail {
            // Sealing the staged block: the append burns the *new* (final)
            // contents through to WORM and retires the buffer — but only
            // once the burn verifiably landed (see module docs: torn
            // burns).
            Some(t) if t.block == expected => match self.inner.append_block(expected, data) {
                Ok(()) => {
                    g.tail = None;
                    Ok(())
                }
                Err(e) => {
                    self.settle_failed_burn(&mut g, expected, data);
                    Err(e)
                }
            },
            // Appending past a staged block (e.g. after a crash recovered
            // the staged tail as-is): flush the buffer to WORM first, then
            // append — the battery-backed RAM drains to the medium.
            Some(t) if t.block.next() == expected => {
                self.drain_staged(&mut g)?;
                self.inner.append_block(expected, data)
            }
            Some(t) => Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: t.block.next(),
            }),
            None => self.inner.append_block(expected, data),
        }
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        for b in blocks {
            check_len(self.block_size(), b.len())?;
        }
        let mut g = self.tail.lock();
        match &g.tail {
            // The batch starts at the staged block: its first element is the
            // sealed (final) contents of the tail, so burn the whole batch
            // through and retire the buffer. On failure the buffer is kept
            // unless the intended first block verifiably landed; a slot
            // torn with garbage orphans the image instead (module docs).
            Some(t) if t.block == expected => {
                let r = self.inner.append_blocks(expected, blocks);
                match &r {
                    Ok(()) => g.tail = None,
                    Err(_) => self.settle_failed_burn(&mut g, expected, blocks[0]),
                }
                r
            }
            // Appending past a staged block: drain the battery-backed RAM
            // to the medium first, then write the batch.
            Some(t) if t.block.next() == expected => {
                self.drain_staged(&mut g)?;
                self.inner.append_blocks(expected, blocks)
            }
            Some(t) => Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: t.block.next(),
            }),
            None => self.inner.append_blocks(expected, blocks),
        }
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        check_len(self.block_size(), buf.len())?;
        let g = self.tail.lock();
        if let Some(t) = &g.tail {
            if t.block == block {
                buf.copy_from_slice(&t.data);
                return Ok(());
            }
        }
        if let Some(d) = g.orphans.get(&block.0) {
            buf.copy_from_slice(d);
            return Ok(());
        }
        drop(g);
        self.inner.read_block(block, buf)
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        let mut g = self.tail.lock();
        if let Some(t) = &mut g.tail {
            if t.block == block {
                t.data.fill(INVALIDATED_BYTE);
                return Ok(());
            }
        }
        if let Some(d) = g.orphans.get_mut(&block.0) {
            d.fill(INVALIDATED_BYTE);
            return Ok(());
        }
        drop(g);
        self.inner.invalidate_block(block)
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        check_len(self.block_size(), data.len())?;
        if block.0 >= self.capacity_blocks() {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.tail.lock();
        // Opening the next tail while the previous one is still staged
        // (e.g. right after a crash recovery) drains the old buffer to the
        // WORM medium first.
        if let Some(t) = &g.tail {
            if t.block.next() == block {
                self.drain_staged(&mut g)?;
            }
        }
        let end = self.inner_end()?;
        if block != end {
            return Err(ClioError::NotAppendOnly {
                attempted: block,
                end,
            });
        }
        g.tail = Some(Tail {
            block,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn supports_tail_rewrite(&self) -> bool {
        true
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    fn device() -> (Arc<MemWormDevice>, RamTailDevice) {
        let worm = Arc::new(MemWormDevice::new(32, 16));
        let dev = RamTailDevice::new(worm.clone());
        (worm, dev)
    }

    #[test]
    fn tail_is_rewriteable_until_sealed() {
        let (worm, dev) = device();
        assert!(dev.supports_tail_rewrite());
        dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap();
        dev.rewrite_tail(BlockNo(0), &[2u8; 32]).unwrap();
        dev.rewrite_tail(BlockNo(0), &[3u8; 32]).unwrap();
        // Visible through reads, but not yet on the WORM medium.
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 32]);
        assert_eq!(worm.query_end(), Some(BlockNo(0)));
        assert_eq!(dev.query_end(), Some(BlockNo(1)));
        // Sealing burns the final contents.
        dev.append_block(BlockNo(0), &[4u8; 32]).unwrap();
        assert!(!dev.has_tail());
        assert_eq!(worm.query_end(), Some(BlockNo(1)));
        let mut buf = vec![0u8; 32];
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![4u8; 32]);
    }

    #[test]
    fn rewrite_is_only_allowed_at_the_append_point() {
        let (_worm, dev) = device();
        dev.append_block(BlockNo(0), &[9u8; 32]).unwrap();
        // Rewriting a sealed block is refused.
        assert!(matches!(
            dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        // Rewriting beyond the append point is refused.
        assert!(matches!(
            dev.rewrite_tail(BlockNo(2), &[1u8; 32]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        // At the append point it succeeds.
        dev.rewrite_tail(BlockNo(1), &[1u8; 32]).unwrap();
    }

    #[test]
    fn tail_survives_while_device_lives() {
        // A server crash drops server state, not the device; the tail buffer
        // models battery-backed RAM and must still be readable.
        let (_worm, dev) = device();
        let dev = Arc::new(dev);
        dev.rewrite_tail(BlockNo(0), &[0x77; 32]).unwrap();
        // "Crash": all we keep is the device handle.
        let recovered = dev.clone();
        let mut buf = vec![0u8; 32];
        recovered.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![0x77; 32]);
        assert!(recovered.is_written(BlockNo(0)).unwrap());
    }

    #[test]
    fn invalidate_hits_tail_buffer_when_present() {
        let (_worm, dev) = device();
        dev.rewrite_tail(BlockNo(0), &[5u8; 32]).unwrap();
        dev.invalidate_block(BlockNo(0)).unwrap();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == INVALIDATED_BYTE));
    }

    #[test]
    fn appends_without_tail_pass_through() {
        let (worm, dev) = device();
        dev.append_block(BlockNo(0), &[1u8; 32]).unwrap();
        dev.append_block(BlockNo(1), &[2u8; 32]).unwrap();
        assert_eq!(worm.query_end(), Some(BlockNo(2)));
    }
}

#[cfg(test)]
mod seal_tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    /// The whole-system simulator's first counterexample (seed 1 of the
    /// initial storm): a forced append staged block N in battery RAM;
    /// group commit later sealed N and burned it via `append_blocks`; the
    /// burn was torn, landing garbage on the WORM slot. The old error
    /// path retired the staged buffer because the slot read as "written",
    /// destroying the only good copy of forced-acknowledged data —
    /// recovery then invalidated the garbage and the durable entry was
    /// gone. The staged image must instead be orphaned into NV RAM and
    /// keep shadowing the unusable slot.
    #[test]
    fn regression_torn_seal_burn_keeps_staged_image() {
        use crate::fault::{CrashSwitch, FaultPlan, FaultyDevice};

        let worm = Arc::new(MemWormDevice::new(32, 16));
        let sw = CrashSwitch::new(0xBAD_B02);
        let faulty = Arc::new(FaultyDevice::with_switch(
            worm.clone(),
            FaultPlan::default(),
            sw.clone(),
        ));
        let dev = RamTailDevice::new(faulty);

        // Forced data staged in the battery-backed tail.
        let staged = vec![0xF0; 32];
        dev.rewrite_tail(BlockNo(0), &staged).unwrap();
        // The seal burn is torn: garbage lands on the slot, then the error.
        sw.arm(1, true);
        let sealed = vec![0xF1; 32];
        assert!(dev.append_blocks(BlockNo(0), &[&sealed]).is_err());
        sw.clear();

        // The slot is burned (with garbage), but the staged image shadows
        // it: reads — and therefore crash recovery — see the forced data.
        assert_eq!(dev.orphaned_blocks(), vec![BlockNo(0)]);
        assert!(!dev.has_tail());
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, staged, "torn burn must not lose the staged image");
        // The medium itself really does hold garbage underneath.
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_ne!(buf, staged);
        assert_ne!(buf, sealed);

        // Life goes on: the device keeps appending past the orphaned slot.
        dev.append_block(BlockNo(1), &[0xF2; 32]).unwrap();
        dev.rewrite_tail(BlockNo(2), &[0xF3; 32]).unwrap();
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, staged, "orphan survives later appends");
    }

    /// Companion to the torn-burn regression: when the crash drops the
    /// seal burn cleanly (nothing lands), the image must stay *staged* —
    /// not orphaned — so a recovered server can still burn it properly.
    #[test]
    fn clean_crash_during_seal_keeps_image_staged() {
        use crate::fault::{CrashSwitch, FaultPlan, FaultyDevice};

        let worm = Arc::new(MemWormDevice::new(32, 16));
        let sw = CrashSwitch::new(0xBAD_B03);
        let faulty = Arc::new(FaultyDevice::with_switch(
            worm.clone(),
            FaultPlan::default(),
            sw.clone(),
        ));
        let dev = RamTailDevice::new(faulty);

        let staged = vec![0xA0; 32];
        dev.rewrite_tail(BlockNo(0), &staged).unwrap();
        sw.arm(1, false);
        assert!(dev.append_blocks(BlockNo(0), &[&[0xA1; 32]]).is_err());
        sw.clear();

        assert!(dev.has_tail());
        assert!(dev.orphaned_blocks().is_empty());
        assert_eq!(worm.query_end(), Some(BlockNo(0)), "nothing burned");
        // A later append past the tail drains the staged image to WORM.
        dev.append_block(BlockNo(1), &[0xA2; 32]).unwrap();
        let mut buf = vec![0u8; 32];
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, staged);
    }

    #[test]
    fn appending_past_a_staged_tail_flushes_it() {
        let worm = Arc::new(MemWormDevice::new(32, 16));
        let dev = RamTailDevice::new(worm.clone());
        dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap();
        // A recovered server continues at block 1 without re-sealing.
        dev.append_block(BlockNo(1), &[2u8; 32]).unwrap();
        assert!(!dev.has_tail());
        let mut buf = vec![0u8; 32];
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 32]);
        worm.read_block(BlockNo(1), &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; 32]);
        // Appending far past the tail is still refused.
        dev.rewrite_tail(BlockNo(2), &[3u8; 32]).unwrap();
        assert!(dev.append_block(BlockNo(5), &[0u8; 32]).is_err());
    }
}
