//! Battery-backed RAM staging for the tail of the log.
//!
//! On a purely write-once device, frequent forced writes cause internal
//! fragmentation because a partially filled block, once written, can never
//! be completed. The paper therefore proposes that "the tail end of the log
//! device is implemented as rewriteable non-volatile storage, such as
//! battery backed-up RAM" (§2.3.1). [`RamTailDevice`] models exactly that:
//! the block at the append point may be rewritten any number of times, and
//! is burned to the underlying WORM device only when sealed.

use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result, INVALIDATED_BYTE};

use crate::traits::{check_len, LogDevice, SharedDevice};

/// A log device with a rewriteable, non-volatile tail block.
///
/// The wrapper is itself non-volatile: in simulations a server "crash"
/// destroys the server's in-memory structures but keeps the device (and with
/// it the battery-backed tail buffer) alive, so no forced data is lost.
pub struct RamTailDevice {
    inner: SharedDevice,
    tail: Mutex<Option<Tail>>,
}

struct Tail {
    block: BlockNo,
    data: Vec<u8>,
}

impl RamTailDevice {
    /// Wraps `inner` with a battery-backed tail buffer.
    #[must_use]
    pub fn new(inner: SharedDevice) -> RamTailDevice {
        RamTailDevice {
            inner,
            // Held across the inner device's appends by design: sealing
            // the staged tail block must be atomic w.r.t. other appenders.
            tail: Mutex::with_class_io(None, "device.ram_tail"),
        }
    }

    /// The underlying device's append point (first block not burned to WORM).
    fn inner_end(&self) -> Result<BlockNo> {
        match self.inner.query_end() {
            Some(e) => Ok(e),
            None => Ok(crate::traits::locate_end(&*self.inner)?.0),
        }
    }

    /// Whether a tail buffer currently holds an unsealed block. Test hook.
    #[must_use]
    pub fn has_tail(&self) -> bool {
        self.tail.lock().is_some()
    }
}

impl LogDevice for RamTailDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        let end = self.inner.query_end()?;
        let g = self.tail.lock();
        Some(match &*g {
            Some(t) if t.block == end => end.next(),
            _ => end,
        })
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        if let Some(t) = &*self.tail.lock() {
            if t.block == block {
                return Ok(true);
            }
        }
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        check_len(self.block_size(), data.len())?;
        let mut g = self.tail.lock();
        match &*g {
            // Sealing the staged block: the append burns the *new* (final)
            // contents through to WORM and retires the buffer.
            Some(t) if t.block == expected => {
                self.inner.append_block(expected, data)?;
                *g = None;
                Ok(())
            }
            // Appending past a staged block (e.g. after a crash recovered
            // the staged tail as-is): flush the buffer to WORM first, then
            // append — the battery-backed RAM drains to the medium.
            Some(t) if t.block.next() == expected => {
                self.inner.append_block(t.block, &t.data)?;
                *g = None;
                self.inner.append_block(expected, data)
            }
            Some(t) => Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: t.block.next(),
            }),
            None => self.inner.append_block(expected, data),
        }
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        for b in blocks {
            check_len(self.block_size(), b.len())?;
        }
        let mut g = self.tail.lock();
        match &*g {
            // The batch starts at the staged block: its first element is the
            // sealed (final) contents of the tail, so burn the whole batch
            // through and retire the buffer. On failure the buffer is kept
            // unless the first block actually landed on the medium.
            Some(t) if t.block == expected => {
                let r = self.inner.append_blocks(expected, blocks);
                let first_landed = match &r {
                    Ok(()) => true,
                    Err(_) => self.inner.is_written(expected).unwrap_or(false),
                };
                if first_landed {
                    *g = None;
                }
                r
            }
            // Appending past a staged block: drain the battery-backed RAM
            // to the medium first, then write the batch.
            Some(t) if t.block.next() == expected => {
                self.inner.append_block(t.block, &t.data)?;
                *g = None;
                self.inner.append_blocks(expected, blocks)
            }
            Some(t) => Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: t.block.next(),
            }),
            None => self.inner.append_blocks(expected, blocks),
        }
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        check_len(self.block_size(), buf.len())?;
        if let Some(t) = &*self.tail.lock() {
            if t.block == block {
                buf.copy_from_slice(&t.data);
                return Ok(());
            }
        }
        self.inner.read_block(block, buf)
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        let mut g = self.tail.lock();
        if let Some(t) = &mut *g {
            if t.block == block {
                t.data.fill(INVALIDATED_BYTE);
                return Ok(());
            }
        }
        self.inner.invalidate_block(block)
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        check_len(self.block_size(), data.len())?;
        if block.0 >= self.capacity_blocks() {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.tail.lock();
        // Opening the next tail while the previous one is still staged
        // (e.g. right after a crash recovery) drains the old buffer to the
        // WORM medium first.
        if let Some(t) = &*g {
            if t.block.next() == block {
                self.inner.append_block(t.block, &t.data)?;
                *g = None;
            }
        }
        let end = self.inner_end()?;
        if block != end {
            return Err(ClioError::NotAppendOnly {
                attempted: block,
                end,
            });
        }
        *g = Some(Tail {
            block,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn supports_tail_rewrite(&self) -> bool {
        true
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    fn device() -> (Arc<MemWormDevice>, RamTailDevice) {
        let worm = Arc::new(MemWormDevice::new(32, 16));
        let dev = RamTailDevice::new(worm.clone());
        (worm, dev)
    }

    #[test]
    fn tail_is_rewriteable_until_sealed() {
        let (worm, dev) = device();
        assert!(dev.supports_tail_rewrite());
        dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap();
        dev.rewrite_tail(BlockNo(0), &[2u8; 32]).unwrap();
        dev.rewrite_tail(BlockNo(0), &[3u8; 32]).unwrap();
        // Visible through reads, but not yet on the WORM medium.
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 32]);
        assert_eq!(worm.query_end(), Some(BlockNo(0)));
        assert_eq!(dev.query_end(), Some(BlockNo(1)));
        // Sealing burns the final contents.
        dev.append_block(BlockNo(0), &[4u8; 32]).unwrap();
        assert!(!dev.has_tail());
        assert_eq!(worm.query_end(), Some(BlockNo(1)));
        let mut buf = vec![0u8; 32];
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![4u8; 32]);
    }

    #[test]
    fn rewrite_is_only_allowed_at_the_append_point() {
        let (_worm, dev) = device();
        dev.append_block(BlockNo(0), &[9u8; 32]).unwrap();
        // Rewriting a sealed block is refused.
        assert!(matches!(
            dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        // Rewriting beyond the append point is refused.
        assert!(matches!(
            dev.rewrite_tail(BlockNo(2), &[1u8; 32]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        // At the append point it succeeds.
        dev.rewrite_tail(BlockNo(1), &[1u8; 32]).unwrap();
    }

    #[test]
    fn tail_survives_while_device_lives() {
        // A server crash drops server state, not the device; the tail buffer
        // models battery-backed RAM and must still be readable.
        let (_worm, dev) = device();
        let dev = Arc::new(dev);
        dev.rewrite_tail(BlockNo(0), &[0x77; 32]).unwrap();
        // "Crash": all we keep is the device handle.
        let recovered = dev.clone();
        let mut buf = vec![0u8; 32];
        recovered.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![0x77; 32]);
        assert!(recovered.is_written(BlockNo(0)).unwrap());
    }

    #[test]
    fn invalidate_hits_tail_buffer_when_present() {
        let (_worm, dev) = device();
        dev.rewrite_tail(BlockNo(0), &[5u8; 32]).unwrap();
        dev.invalidate_block(BlockNo(0)).unwrap();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == INVALIDATED_BYTE));
    }

    #[test]
    fn appends_without_tail_pass_through() {
        let (worm, dev) = device();
        dev.append_block(BlockNo(0), &[1u8; 32]).unwrap();
        dev.append_block(BlockNo(1), &[2u8; 32]).unwrap();
        assert_eq!(worm.query_end(), Some(BlockNo(2)));
    }
}

#[cfg(test)]
mod seal_tests {
    use std::sync::Arc;

    use super::*;
    use crate::mem::MemWormDevice;

    #[test]
    fn appending_past_a_staged_tail_flushes_it() {
        let worm = Arc::new(MemWormDevice::new(32, 16));
        let dev = RamTailDevice::new(worm.clone());
        dev.rewrite_tail(BlockNo(0), &[1u8; 32]).unwrap();
        // A recovered server continues at block 1 without re-sealing.
        dev.append_block(BlockNo(1), &[2u8; 32]).unwrap();
        assert!(!dev.has_tail());
        let mut buf = vec![0u8; 32];
        worm.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 32]);
        worm.read_block(BlockNo(1), &mut buf).unwrap();
        assert_eq!(buf, vec![2u8; 32]);
        // Appending far past the tail is still refused.
        dev.rewrite_tail(BlockNo(2), &[3u8; 32]).unwrap();
        assert!(dev.append_block(BlockNo(5), &[0u8; 32]).is_err());
    }
}
