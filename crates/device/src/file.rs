//! Host-file-backed write-once device.

use std::fs::File;
use std::path::Path;

use clio_testkit::lockdep;
use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, ClioError, Result, INVALIDATED_BYTE};

use crate::store::raw;
use crate::traits::{check_len, LogDevice};

/// A write-once device backed by an ordinary host file.
///
/// The append-only discipline is enforced by this wrapper: the written
/// portion is exactly the file's current extent, so the append point is
/// `file_len / block_size` and persists across process restarts. This mirrors
/// the paper's own development configuration, which simulated write-once
/// storage on magnetic disk (§3.1).
pub struct FileWormDevice {
    file: Mutex<File>,
    block_size: usize,
    capacity: u64,
    end_query: bool,
}

impl FileWormDevice {
    /// Creates (or truncates) a device file at `path`.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        capacity: u64,
    ) -> Result<FileWormDevice> {
        let file = raw::create_rw(path.as_ref())?;
        Ok(FileWormDevice {
            file: Mutex::with_class(file, "device.file"),
            block_size,
            capacity,
            end_query: true,
        })
    }

    /// Opens an existing device file, preserving its written contents.
    ///
    /// Fails with [`ClioError::Io`] if the file length is not a multiple of
    /// the block size (a torn final write; see `FaultPlan::torn_append` for
    /// how Clio handles those on recovery).
    pub fn open<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        capacity: u64,
    ) -> Result<FileWormDevice> {
        let file = raw::open_rw(path.as_ref())?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(ClioError::Io(format!(
                "device file length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(FileWormDevice {
            file: Mutex::with_class(file, "device.file"),
            block_size,
            capacity,
            end_query: true,
        })
    }

    /// Disables the end query, forcing binary-search end location.
    #[must_use]
    pub fn without_end_query(mut self) -> FileWormDevice {
        self.end_query = false;
        self
    }

    fn end_blocks(&self, file: &File) -> Result<u64> {
        Ok(file.metadata()?.len() / self.block_size as u64)
    }
}

impl LogDevice for FileWormDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    fn query_end(&self) -> Option<BlockNo> {
        if !self.end_query {
            return None;
        }
        let g = self.file.lock();
        self.end_blocks(&g).ok().map(BlockNo)
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let g = self.file.lock();
        Ok(block.0 < self.end_blocks(&g)?)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        lockdep::assert_no_locks_held("FileWormDevice::append_block");
        check_len(self.block_size, data.len())?;
        let mut g = self.file.lock();
        let end = self.end_blocks(&g)?;
        if end >= self.capacity {
            return Err(ClioError::VolumeFull);
        }
        if expected.0 != end {
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: BlockNo(end),
            });
        }
        raw::append_at_end(&mut g, data)?;
        Ok(())
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        lockdep::assert_no_locks_held("FileWormDevice::append_blocks");
        for b in blocks {
            check_len(self.block_size, b.len())?;
        }
        let n = blocks.len() as u64;
        let mut g = self.file.lock();
        let end = self.end_blocks(&g)?;
        if end + n > self.capacity {
            return Err(ClioError::VolumeFull);
        }
        if expected.0 != end {
            return Err(ClioError::NotAppendOnly {
                attempted: expected,
                end: BlockNo(end),
            });
        }
        // One syscall for the whole batch, then one durability barrier —
        // this is the physical write the group-commit path amortises over
        // every logical append in the batch.
        let mut batch = Vec::with_capacity(blocks.len() * self.block_size);
        for b in blocks {
            batch.extend_from_slice(b);
        }
        raw::append_at_end(&mut g, &batch)?;
        g.sync_data()?;
        Ok(())
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        check_len(self.block_size, buf.len())?;
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.file.lock();
        if block.0 >= self.end_blocks(&g)? {
            return Err(ClioError::UnwrittenBlock(block));
        }
        raw::read_at(&mut g, block.0 * self.block_size as u64, buf)?;
        Ok(())
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        lockdep::assert_no_locks_held("FileWormDevice::invalidate_block");
        if block.0 >= self.capacity {
            return Err(ClioError::OutOfRange(block));
        }
        let mut g = self.file.lock();
        if block.0 >= self.end_blocks(&g)? {
            return Err(ClioError::UnwrittenBlock(block));
        }
        raw::write_at(
            &mut g,
            block.0 * self.block_size as u64,
            &vec![INVALIDATED_BYTE; self.block_size],
        )?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        lockdep::assert_no_locks_held("FileWormDevice::sync");
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("clio-file-worm-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn create_append_read() {
        let path = tmp("basic");
        let dev = FileWormDevice::create(&path, 64, 10).unwrap();
        dev.append_block(BlockNo(0), &[7u8; 64]).unwrap();
        dev.append_block(BlockNo(1), &[8u8; 64]).unwrap();
        let mut buf = vec![0u8; 64];
        dev.read_block(BlockNo(1), &mut buf).unwrap();
        assert_eq!(buf, vec![8u8; 64]);
        assert_eq!(dev.query_end(), Some(BlockNo(2)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contents_survive_reopen() {
        let path = tmp("reopen");
        {
            let dev = FileWormDevice::create(&path, 32, 10).unwrap();
            dev.append_block(BlockNo(0), &[0x5A; 32]).unwrap();
            dev.sync().unwrap();
        }
        let dev = FileWormDevice::open(&path, 32, 10).unwrap();
        assert_eq!(dev.query_end(), Some(BlockNo(1)));
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert_eq!(buf, vec![0x5A; 32]);
        // Append point carries on correctly.
        dev.append_block(BlockNo(1), &[0x6B; 32]).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_only_enforced() {
        let path = tmp("worm");
        let dev = FileWormDevice::create(&path, 32, 10).unwrap();
        dev.append_block(BlockNo(0), &[1u8; 32]).unwrap();
        assert!(matches!(
            dev.append_block(BlockNo(0), &[2u8; 32]).unwrap_err(),
            ClioError::NotAppendOnly { .. }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalidate_persists() {
        let path = tmp("invalidate");
        let dev = FileWormDevice::create(&path, 32, 10).unwrap();
        dev.append_block(BlockNo(0), &[3u8; 32]).unwrap();
        dev.invalidate_block(BlockNo(0)).unwrap();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == INVALIDATED_BYTE));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_torn_file() {
        let path = tmp("torn");
        std::fs::write(&path, vec![0u8; 48]).unwrap();
        assert!(FileWormDevice::open(&path, 32, 10).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
