//! Device instrumentation.
//!
//! Every evaluation number in the paper reduces to counts of physical device
//! operations (block reads, appends, seeks) times per-operation costs.
//! [`InstrumentedDevice`] wraps any [`LogDevice`] and counts those operations
//! so that the benchmark harness can report both raw counts and modelled
//! latencies (see `clio-sim`). Successful and failed operations are counted
//! separately — fault-injection runs assert on the error counters — and
//! each op kind feeds a wall-clock latency [`Histogram`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use clio_obs::{Histogram, MetricsRegistry, TraceRing};
use clio_types::{BlockNo, Result};

use crate::traits::{LogDevice, SharedDevice};

/// Shared operation counters for one device.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// When attached, device writes (single-block and vectored) record
    /// `device_write` spans here, nesting under whatever operation span is
    /// open on the writing thread. Write-once only; reads are traced at
    /// the service layer (per-block read spans would flood the ring).
    trace: OnceLock<Arc<TraceRing>>,
    reads: AtomicU64,
    appends: AtomicU64,
    invalidations: AtomicU64,
    tail_rewrites: AtomicU64,
    end_probes: AtomicU64,
    read_errors: AtomicU64,
    append_errors: AtomicU64,
    invalidate_errors: AtomicU64,
    tail_rewrite_errors: AtomicU64,
    probe_errors: AtomicU64,
    /// Number of operations whose block was not at or adjacent to the
    /// previous operation's block (a head seek on a physical drive).
    seeks: AtomicU64,
    /// Sum of absolute seek distances in blocks.
    seek_distance: AtomicU64,
    /// Position of the last access; -1 means "no access yet".
    last_pos: AtomicI64,
    /// Vectored `append_blocks` batches issued (each is one physical device
    /// write regardless of how many blocks it carries).
    batch_appends: AtomicU64,
    /// Blocks written through vectored batches (also counted in `appends`).
    batch_blocks: AtomicU64,
    /// Wall-clock latency of successful block reads, in nanoseconds.
    pub read_latency_ns: Arc<Histogram>,
    /// Wall-clock latency of successful block appends, in nanoseconds.
    pub append_latency_ns: Arc<Histogram>,
    /// Wall-clock latency of `is_written` probes, in nanoseconds.
    pub probe_latency_ns: Arc<Histogram>,
    /// Blocks per successful vectored batch.
    pub append_batch_blocks: Arc<Histogram>,
    /// Wall-clock latency of successful vectored batches, in nanoseconds.
    pub append_batch_latency_ns: Arc<Histogram>,
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Block reads served by the device.
    pub reads: u64,
    /// Blocks appended.
    pub appends: u64,
    /// Blocks invalidated.
    pub invalidations: u64,
    /// Tail-buffer rewrites.
    pub tail_rewrites: u64,
    /// `is_written` probes (binary-search end location).
    pub end_probes: u64,
    /// Failed block reads.
    pub read_errors: u64,
    /// Failed block appends.
    pub append_errors: u64,
    /// Failed invalidations.
    pub invalidate_errors: u64,
    /// Failed tail rewrites.
    pub tail_rewrite_errors: u64,
    /// Failed `is_written` probes.
    pub probe_errors: u64,
    /// Non-sequential accesses (head seeks).
    pub seeks: u64,
    /// Total seek distance in blocks.
    pub seek_distance: u64,
    /// Vectored batches issued.
    pub batch_appends: u64,
    /// Blocks written through vectored batches.
    pub batch_blocks: u64,
}

impl StatsSnapshot {
    /// Total physical block accesses (reads + appends + probes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.appends + self.end_probes
    }

    /// Physical write operations to the device: single-block appends plus
    /// one per vectored batch, however many blocks the batch carried. The
    /// group-commit benchmark's appends-per-device-write ratio divides
    /// logical appends by the delta of this.
    #[must_use]
    pub fn write_ops(&self) -> u64 {
        self.appends - self.batch_blocks + self.batch_appends
    }

    /// Total failed operations of any kind.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.read_errors
            + self.append_errors
            + self.invalidate_errors
            + self.tail_rewrite_errors
            + self.probe_errors
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads={} appends={} probes={} invalidations={} tail_rewrites={} \
             seeks={} seek_dist={} errors={}",
            self.reads,
            self.appends,
            self.end_probes,
            self.invalidations,
            self.tail_rewrites,
            self.seeks,
            self.seek_distance,
            self.errors()
        )
    }
}

impl DeviceStats {
    /// Creates a fresh, zeroed stats block.
    #[must_use]
    pub fn new() -> Arc<DeviceStats> {
        Arc::new(DeviceStats {
            last_pos: AtomicI64::new(-1),
            ..DeviceStats::default()
        })
    }

    /// Attaches the service's trace ring so device writes record
    /// `device_write` spans. First attach wins; later calls are ignored
    /// (the stats block is shared across every device of one service).
    pub fn attach_trace(&self, ring: Arc<TraceRing>) {
        let _ = self.trace.set(ring);
    }

    /// Opens a `device_write` span when a trace ring is attached.
    fn write_span(&self, blocks: u64) -> Option<clio_obs::SpanGuard<'_>> {
        let ring = self.trace.get()?;
        let mut span = ring.span("device_write");
        span.attr("blocks", blocks);
        Some(span)
    }

    fn touch(&self, block: BlockNo) {
        let pos = block.0 as i64;
        let prev = self.last_pos.swap(pos, Ordering::Relaxed);
        if prev >= 0 {
            let dist = (pos - prev).unsigned_abs();
            // Sequential (same or next block) accesses do not seek.
            if dist > 1 {
                self.seeks.fetch_add(1, Ordering::Relaxed);
                self.seek_distance.fetch_add(dist, Ordering::Relaxed);
            }
        }
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            tail_rewrites: self.tail_rewrites.load(Ordering::Relaxed),
            end_probes: self.end_probes.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            invalidate_errors: self.invalidate_errors.load(Ordering::Relaxed),
            tail_rewrite_errors: self.tail_rewrite_errors.load(Ordering::Relaxed),
            probe_errors: self.probe_errors.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            seek_distance: self.seek_distance.load(Ordering::Relaxed),
            batch_appends: self.batch_appends.load(Ordering::Relaxed),
            batch_blocks: self.batch_blocks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (and forgets the head position). Latency
    /// histograms are reset too.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.tail_rewrites.store(0, Ordering::Relaxed);
        self.end_probes.store(0, Ordering::Relaxed);
        self.read_errors.store(0, Ordering::Relaxed);
        self.append_errors.store(0, Ordering::Relaxed);
        self.invalidate_errors.store(0, Ordering::Relaxed);
        self.tail_rewrite_errors.store(0, Ordering::Relaxed);
        self.probe_errors.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.seek_distance.store(0, Ordering::Relaxed);
        self.last_pos.store(-1, Ordering::Relaxed);
        self.batch_appends.store(0, Ordering::Relaxed);
        self.batch_blocks.store(0, Ordering::Relaxed);
        self.read_latency_ns.reset();
        self.append_latency_ns.reset();
        self.probe_latency_ns.reset();
        self.append_batch_blocks.reset();
        self.append_batch_latency_ns.reset();
    }

    /// Registers every counter and latency histogram into `reg` under the
    /// `clio_device_*` namespace.
    pub fn register_into(self: &Arc<DeviceStats>, reg: &MetricsRegistry) {
        type Field = fn(&StatsSnapshot) -> u64;
        let counters: [(&str, Field); 12] = [
            ("clio_device_reads_total", |s| s.reads),
            ("clio_device_appends_total", |s| s.appends),
            ("clio_device_invalidations_total", |s| s.invalidations),
            ("clio_device_tail_rewrites_total", |s| s.tail_rewrites),
            ("clio_device_end_probes_total", |s| s.end_probes),
            ("clio_device_read_errors_total", |s| s.read_errors),
            ("clio_device_append_errors_total", |s| s.append_errors),
            ("clio_device_invalidate_errors_total", |s| {
                s.invalidate_errors
            }),
            ("clio_device_tail_rewrite_errors_total", |s| {
                s.tail_rewrite_errors
            }),
            ("clio_device_probe_errors_total", |s| s.probe_errors),
            ("clio_device_seeks_total", |s| s.seeks),
            ("clio_device_batch_appends_total", |s| s.batch_appends),
        ];
        for (name, read) in counters {
            let stats = self.clone();
            reg.register_counter_fn(name, move || read(&stats.snapshot()));
        }
        let stats = self.clone();
        reg.register_counter_fn("clio_device_seek_distance_blocks", move || {
            stats.snapshot().seek_distance
        });
        reg.register_histogram("clio_device_read_latency_ns", self.read_latency_ns.clone());
        reg.register_histogram(
            "clio_device_append_latency_ns",
            self.append_latency_ns.clone(),
        );
        reg.register_histogram(
            "clio_device_probe_latency_ns",
            self.probe_latency_ns.clone(),
        );
        reg.register_histogram(
            "clio_device_append_batch_blocks",
            self.append_batch_blocks.clone(),
        );
        reg.register_histogram(
            "clio_device_append_batch_latency_ns",
            self.append_batch_latency_ns.clone(),
        );
    }
}

/// A [`LogDevice`] wrapper that records operation counts, error counts and
/// per-op latency in a shared [`DeviceStats`].
pub struct InstrumentedDevice {
    inner: SharedDevice,
    stats: Arc<DeviceStats>,
}

impl InstrumentedDevice {
    /// Wraps `inner`; callers keep a clone of `stats` to read the counters.
    #[must_use]
    pub fn new(inner: SharedDevice, stats: Arc<DeviceStats>) -> InstrumentedDevice {
        InstrumentedDevice { inner, stats }
    }

    /// The shared counters.
    #[must_use]
    pub fn stats(&self) -> Arc<DeviceStats> {
        self.stats.clone()
    }
}

impl LogDevice for InstrumentedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.inner.query_end()
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        let start = clio_obs::clock::now();
        let r = self.inner.is_written(block);
        if r.is_ok() {
            self.stats.probe_latency_ns.record_duration(start.elapsed());
            self.stats.end_probes.fetch_add(1, Ordering::Relaxed);
            self.stats.touch(block);
        } else {
            self.stats.probe_errors.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        let mut span = self.stats.write_span(1);
        let start = clio_obs::clock::now();
        match self.inner.append_block(expected, data) {
            Ok(()) => {
                self.stats
                    .append_latency_ns
                    .record_duration(start.elapsed());
                self.stats.appends.fetch_add(1, Ordering::Relaxed);
                self.stats.touch(expected);
                Ok(())
            }
            Err(e) => {
                if let Some(s) = &mut span {
                    s.fail("io_error");
                }
                self.stats.append_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn append_blocks(&self, expected: BlockNo, blocks: &[&[u8]]) -> Result<()> {
        if blocks.is_empty() {
            return Ok(());
        }
        let n = blocks.len() as u64;
        let mut span = self.stats.write_span(n);
        let start = clio_obs::clock::now();
        match self.inner.append_blocks(expected, blocks) {
            Ok(()) => {
                self.stats
                    .append_batch_latency_ns
                    .record_duration(start.elapsed());
                self.stats.append_batch_blocks.record(n);
                self.stats.batch_appends.fetch_add(1, Ordering::Relaxed);
                self.stats.batch_blocks.fetch_add(n, Ordering::Relaxed);
                self.stats.appends.fetch_add(n, Ordering::Relaxed);
                self.stats.touch(expected);
                self.stats
                    .last_pos
                    .store((expected.0 + n - 1) as i64, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                if let Some(s) = &mut span {
                    s.fail("io_error");
                }
                self.stats.append_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        let start = clio_obs::clock::now();
        match self.inner.read_block(block, buf) {
            Ok(()) => {
                self.stats.read_latency_ns.record_duration(start.elapsed());
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                self.stats.touch(block);
                Ok(())
            }
            Err(e) => {
                self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        match self.inner.invalidate_block(block) {
            Ok(()) => {
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                self.stats.touch(block);
                Ok(())
            }
            Err(e) => {
                self.stats.invalidate_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        match self.inner.rewrite_tail(block, data) {
            Ok(()) => {
                self.stats.tail_rewrites.fetch_add(1, Ordering::Relaxed);
                // Tail rewrites hit NV-RAM, not the disk head: no seek accounting.
                Ok(())
            }
            Err(e) => {
                self.stats
                    .tail_rewrite_errors
                    .fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.inner.supports_tail_rewrite()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemWormDevice;

    fn instrumented() -> (InstrumentedDevice, Arc<DeviceStats>) {
        let stats = DeviceStats::new();
        let dev = InstrumentedDevice::new(Arc::new(MemWormDevice::new(32, 64)), stats.clone());
        (dev, stats)
    }

    #[test]
    fn counts_reads_and_appends() {
        let (dev, stats) = instrumented();
        let blk = vec![0u8; 32];
        for i in 0..4 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(2), &mut buf).unwrap();
        dev.read_block(BlockNo(3), &mut buf).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.appends, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.accesses(), 6);
        assert_eq!(s.errors(), 0);
        // Every successful op also recorded a latency sample.
        assert_eq!(stats.append_latency_ns.snapshot().count, 4);
        assert_eq!(stats.read_latency_ns.snapshot().count, 2);
    }

    #[test]
    fn failed_ops_count_as_errors_not_successes() {
        let (dev, stats) = instrumented();
        let mut buf = vec![0u8; 32];
        assert!(dev.read_block(BlockNo(0), &mut buf).is_err());
        assert!(dev.append_block(BlockNo(5), &[0u8; 32]).is_err());
        let s = stats.snapshot();
        assert_eq!(s.reads, 0);
        assert_eq!(s.appends, 0);
        assert_eq!(s.read_errors, 1);
        assert_eq!(s.append_errors, 1);
        assert_eq!(s.errors(), 2);
        // Failures do not pollute the latency distributions.
        assert!(stats.read_latency_ns.snapshot().is_empty());
        assert!(stats.append_latency_ns.snapshot().is_empty());
    }

    #[test]
    fn seeks_count_nonsequential_accesses() {
        let (dev, stats) = instrumented();
        let blk = vec![0u8; 32];
        for i in 0..10 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        stats.reset();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap(); // first access: no seek
        dev.read_block(BlockNo(1), &mut buf).unwrap(); // sequential
        dev.read_block(BlockNo(9), &mut buf).unwrap(); // seek of 8
        dev.read_block(BlockNo(2), &mut buf).unwrap(); // seek of 7
        let s = stats.snapshot();
        assert_eq!(s.seeks, 2);
        assert_eq!(s.seek_distance, 15);
    }

    #[test]
    fn reset_zeroes_everything() {
        let (dev, stats) = instrumented();
        dev.append_block(BlockNo(0), &[0u8; 32]).unwrap();
        stats.reset();
        assert_eq!(stats.snapshot(), StatsSnapshot::default());
        assert!(stats.append_latency_ns.snapshot().is_empty());
    }

    #[test]
    fn registers_into_a_registry() {
        let (dev, stats) = instrumented();
        let reg = MetricsRegistry::new();
        stats.register_into(&reg);
        dev.append_block(BlockNo(0), &[0u8; 32]).unwrap();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap();
        let text = clio_obs::expo::render_prometheus(&reg);
        assert!(text.contains("clio_device_reads_total 1"));
        assert!(text.contains("clio_device_appends_total 1"));
        assert!(text.contains("clio_device_read_latency_ns_count 1"));
    }

    #[test]
    fn attached_trace_records_device_write_spans() {
        let (dev, stats) = instrumented();
        let ring = Arc::new(TraceRing::new(8));
        stats.attach_trace(ring.clone());
        dev.append_block(BlockNo(0), &[0u8; 32]).unwrap();
        dev.append_blocks(BlockNo(1), &[&[0u8; 32], &[0u8; 32]])
            .unwrap();
        assert!(dev.append_block(BlockNo(9), &[0u8; 32]).is_err());
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.name == "device_write"));
        assert_eq!(
            spans[1].attrs,
            vec![("blocks", clio_obs::AttrValue::U64(2))]
        );
        assert_eq!(spans[2].outcome, "io_error");
    }

    #[test]
    fn snapshot_display_is_one_line() {
        let (dev, stats) = instrumented();
        dev.append_block(BlockNo(0), &[0u8; 32]).unwrap();
        let line = format!("{}", stats.snapshot());
        assert!(line.contains("appends=1"));
        assert!(line.contains("errors=0"));
        assert!(!line.contains('\n'));
    }
}
