//! Device instrumentation.
//!
//! Every evaluation number in the paper reduces to counts of physical device
//! operations (block reads, appends, seeks) times per-operation costs.
//! [`InstrumentedDevice`] wraps any [`LogDevice`] and counts those operations
//! so that the benchmark harness can report both raw counts and modelled
//! latencies (see `clio-sim`).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use clio_types::{BlockNo, Result};

use crate::traits::{LogDevice, SharedDevice};

/// Shared operation counters for one device.
#[derive(Debug, Default)]
pub struct DeviceStats {
    reads: AtomicU64,
    appends: AtomicU64,
    invalidations: AtomicU64,
    tail_rewrites: AtomicU64,
    end_probes: AtomicU64,
    /// Number of operations whose block was not at or adjacent to the
    /// previous operation's block (a head seek on a physical drive).
    seeks: AtomicU64,
    /// Sum of absolute seek distances in blocks.
    seek_distance: AtomicU64,
    /// Position of the last access; -1 means "no access yet".
    last_pos: AtomicI64,
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Block reads served by the device.
    pub reads: u64,
    /// Blocks appended.
    pub appends: u64,
    /// Blocks invalidated.
    pub invalidations: u64,
    /// Tail-buffer rewrites.
    pub tail_rewrites: u64,
    /// `is_written` probes (binary-search end location).
    pub end_probes: u64,
    /// Non-sequential accesses (head seeks).
    pub seeks: u64,
    /// Total seek distance in blocks.
    pub seek_distance: u64,
}

impl StatsSnapshot {
    /// Total physical block accesses (reads + appends + probes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.appends + self.end_probes
    }
}

impl DeviceStats {
    /// Creates a fresh, zeroed stats block.
    #[must_use]
    pub fn new() -> Arc<DeviceStats> {
        Arc::new(DeviceStats {
            last_pos: AtomicI64::new(-1),
            ..DeviceStats::default()
        })
    }

    fn touch(&self, block: BlockNo) {
        let pos = block.0 as i64;
        let prev = self.last_pos.swap(pos, Ordering::Relaxed);
        if prev >= 0 {
            let dist = (pos - prev).unsigned_abs();
            // Sequential (same or next block) accesses do not seek.
            if dist > 1 {
                self.seeks.fetch_add(1, Ordering::Relaxed);
                self.seek_distance.fetch_add(dist, Ordering::Relaxed);
            }
        }
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            tail_rewrites: self.tail_rewrites.load(Ordering::Relaxed),
            end_probes: self.end_probes.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            seek_distance: self.seek_distance.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (and forgets the head position).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.tail_rewrites.store(0, Ordering::Relaxed);
        self.end_probes.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.seek_distance.store(0, Ordering::Relaxed);
        self.last_pos.store(-1, Ordering::Relaxed);
    }
}

/// A [`LogDevice`] wrapper that records operation counts in a shared
/// [`DeviceStats`].
pub struct InstrumentedDevice {
    inner: SharedDevice,
    stats: Arc<DeviceStats>,
}

impl InstrumentedDevice {
    /// Wraps `inner`; callers keep a clone of `stats` to read the counters.
    #[must_use]
    pub fn new(inner: SharedDevice, stats: Arc<DeviceStats>) -> InstrumentedDevice {
        InstrumentedDevice { inner, stats }
    }

    /// The shared counters.
    #[must_use]
    pub fn stats(&self) -> Arc<DeviceStats> {
        self.stats.clone()
    }
}

impl LogDevice for InstrumentedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.inner.query_end()
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        self.stats.end_probes.fetch_add(1, Ordering::Relaxed);
        self.stats.touch(block);
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        self.inner.append_block(expected, data)?;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats.touch(expected);
        Ok(())
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        self.inner.read_block(block, buf)?;
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats.touch(block);
        Ok(())
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        self.inner.invalidate_block(block)?;
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        self.stats.touch(block);
        Ok(())
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        self.inner.rewrite_tail(block, data)?;
        self.stats.tail_rewrites.fetch_add(1, Ordering::Relaxed);
        // Tail rewrites hit NV-RAM, not the disk head: no seek accounting.
        Ok(())
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.inner.supports_tail_rewrite()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemWormDevice;

    fn instrumented() -> (InstrumentedDevice, Arc<DeviceStats>) {
        let stats = DeviceStats::new();
        let dev = InstrumentedDevice::new(Arc::new(MemWormDevice::new(32, 64)), stats.clone());
        (dev, stats)
    }

    #[test]
    fn counts_reads_and_appends() {
        let (dev, stats) = instrumented();
        let blk = vec![0u8; 32];
        for i in 0..4 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(2), &mut buf).unwrap();
        dev.read_block(BlockNo(3), &mut buf).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.appends, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.accesses(), 6);
    }

    #[test]
    fn failed_ops_are_not_counted() {
        let (dev, stats) = instrumented();
        let mut buf = vec![0u8; 32];
        assert!(dev.read_block(BlockNo(0), &mut buf).is_err());
        assert!(dev.append_block(BlockNo(5), &[0u8; 32]).is_err());
        let s = stats.snapshot();
        assert_eq!(s.reads, 0);
        assert_eq!(s.appends, 0);
    }

    #[test]
    fn seeks_count_nonsequential_accesses() {
        let (dev, stats) = instrumented();
        let blk = vec![0u8; 32];
        for i in 0..10 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        stats.reset();
        let mut buf = vec![0u8; 32];
        dev.read_block(BlockNo(0), &mut buf).unwrap(); // first access: no seek
        dev.read_block(BlockNo(1), &mut buf).unwrap(); // sequential
        dev.read_block(BlockNo(9), &mut buf).unwrap(); // seek of 8
        dev.read_block(BlockNo(2), &mut buf).unwrap(); // seek of 7
        let s = stats.snapshot();
        assert_eq!(s.seeks, 2);
        assert_eq!(s.seek_distance, 15);
    }

    #[test]
    fn reset_zeroes_everything() {
        let (dev, stats) = instrumented();
        dev.append_block(BlockNo(0), &[0u8; 32]).unwrap();
        stats.reset();
        assert_eq!(stats.snapshot(), StatsSnapshot::default());
    }
}
