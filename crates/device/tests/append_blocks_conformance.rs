//! Byte-for-byte conformance of every `append_blocks` implementation with
//! a loop of `append_block`, driven by the shared schedules in
//! `clio_testkit::devcheck`, plus targeted tests for the behaviours that
//! only exist on the vectored path (mid-batch tears, replica catch-up,
//! batch accounting, staged-tail sealing).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clio_device::traits::locate_end;
use clio_device::{
    DeviceStats, FaultPlan, FaultyDevice, FileWormDevice, InstrumentedDevice, LogDevice,
    MemWormDevice, MirroredDevice, RamTailDevice, SharedDevice,
};
use clio_testkit::devcheck::{check_batch_append_conformance, BatchDevice};
use clio_types::{BlockNo, ClioError, Result};

const BLOCK: usize = 32;
const CAPACITY: u64 = 64;

/// Adapts any `LogDevice` to the harness's closure interface.
fn adapt(dev: SharedDevice) -> BatchDevice {
    let (d1, d2, d3, d4) = (dev.clone(), dev.clone(), dev.clone(), dev);
    BatchDevice {
        append_batch: Box::new(move |expected, imgs| {
            let refs: Vec<&[u8]> = imgs.iter().map(Vec::as_slice).collect();
            d1.append_blocks(BlockNo(expected), &refs)
                .map_err(|e| e.to_string())
        }),
        append_one: Box::new(move |expected, img| {
            d2.append_block(BlockNo(expected), img)
                .map_err(|e| e.to_string())
        }),
        read: Box::new(move |b| {
            let mut buf = vec![0u8; d3.block_size()];
            d3.read_block(BlockNo(b), &mut buf)
                .map(|()| buf)
                .map_err(|e| e.to_string())
        }),
        end: Box::new(move || match d4.query_end() {
            Some(e) => e.0,
            None => locate_end(&*d4).expect("locate end").0 .0,
        }),
    }
}

/// A wrapper that deliberately does NOT override `append_blocks`, so the
/// trait's default loop fallback is what the harness exercises.
struct DefaultFallbackOnly(SharedDevice);

impl LogDevice for DefaultFallbackOnly {
    fn block_size(&self) -> usize {
        self.0.block_size()
    }
    fn capacity_blocks(&self) -> u64 {
        self.0.capacity_blocks()
    }
    fn query_end(&self) -> Option<BlockNo> {
        self.0.query_end()
    }
    fn is_written(&self, block: BlockNo) -> Result<bool> {
        self.0.is_written(block)
    }
    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        self.0.append_block(expected, data)
    }
    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        self.0.read_block(block, buf)
    }
    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        self.0.invalidate_block(block)
    }
}

fn tmp_path() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "clio-batch-conf-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

#[test]
fn default_fallback_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(DefaultFallbackOnly(Arc::new(MemWormDevice::new(
            BLOCK, CAPACITY,
        )))))
    });
}

#[test]
fn mem_device_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(MemWormDevice::new(BLOCK, CAPACITY)))
    });
}

#[test]
fn file_device_conforms() {
    let mut paths = Vec::new();
    {
        let paths = std::cell::RefCell::new(&mut paths);
        check_batch_append_conformance(BLOCK, || {
            let p = tmp_path();
            let dev = FileWormDevice::create(&p, BLOCK, CAPACITY).expect("create device file");
            paths.borrow_mut().push(p);
            adapt(Arc::new(dev))
        });
    }
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn ram_tail_device_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(RamTailDevice::new(Arc::new(MemWormDevice::new(
            BLOCK, CAPACITY,
        )))))
    });
}

#[test]
fn mirror_device_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(MirroredDevice::new(vec![
            Arc::new(MemWormDevice::new(BLOCK, CAPACITY)) as SharedDevice,
            Arc::new(MemWormDevice::new(BLOCK, CAPACITY)) as SharedDevice,
        ])))
    });
}

#[test]
fn fault_device_with_quiet_plan_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(FaultyDevice::new(
            Arc::new(MemWormDevice::new(BLOCK, CAPACITY)),
            FaultPlan::default(),
        )))
    });
}

#[test]
fn instrumented_device_conforms() {
    check_batch_append_conformance(BLOCK, || {
        adapt(Arc::new(InstrumentedDevice::new(
            Arc::new(MemWormDevice::new(BLOCK, CAPACITY)),
            DeviceStats::new(),
        )))
    });
}

#[test]
fn fault_tear_leaves_exactly_k_blocks() {
    for k in 0..=4usize {
        let dev = FaultyDevice::new(
            Arc::new(MemWormDevice::new(BLOCK, CAPACITY)),
            FaultPlan::default(),
        );
        let images: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; BLOCK]).collect();
        let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
        dev.tear_next_batch_after(k);
        let r = dev.append_blocks(BlockNo(0), &refs);
        if k < images.len() {
            assert!(matches!(r, Err(ClioError::Io(_))), "k={k}: {r:?}");
        } else {
            // The whole batch fits under the tear point: no fault fires.
            r.unwrap_or_else(|e| panic!("k={k}: {e}"));
        }
        let end = dev.query_end().unwrap().0;
        assert_eq!(end, k.min(images.len()) as u64, "k={k}");
        let mut buf = vec![0u8; BLOCK];
        for b in 0..end {
            dev.read_block(BlockNo(b), &mut buf).unwrap();
            assert_eq!(buf, images[b as usize], "k={k}: block {b}");
        }
        // The trigger is one-shot: the next batch goes through untorn.
        let rest: Vec<&[u8]> = images[end as usize..].iter().map(Vec::as_slice).collect();
        dev.append_blocks(BlockNo(end), &rest).unwrap();
        assert_eq!(dev.query_end().unwrap().0, images.len() as u64, "k={k}");
    }
}

#[test]
fn mirror_batch_completes_a_lagging_replica() {
    let a = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    let b = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    // Replica `a` already has the first block of the batch from a previous
    // partially-failed attempt.
    a.append_block(BlockNo(0), &[7u8; BLOCK]).unwrap();
    let m = MirroredDevice::new(vec![a.clone() as SharedDevice, b.clone() as SharedDevice]);
    let images = [vec![7u8; BLOCK], vec![8u8; BLOCK], vec![9u8; BLOCK]];
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    m.append_blocks(BlockNo(0), &refs).unwrap();
    assert_eq!(m.query_end(), Some(BlockNo(3)));
    let mut buf = vec![0u8; BLOCK];
    for (i, img) in images.iter().enumerate() {
        for r in [&a, &b] {
            r.read_block(BlockNo(i as u64), &mut buf).unwrap();
            assert_eq!(&buf, img, "replica copy of block {i}");
        }
    }
}

#[test]
fn mirror_batch_skips_a_replica_that_has_it_all() {
    let a = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    let b = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    let images = [vec![1u8; BLOCK], vec![2u8; BLOCK]];
    for (i, img) in images.iter().enumerate() {
        a.append_block(BlockNo(i as u64), img).unwrap();
    }
    let m = MirroredDevice::new(vec![a as SharedDevice, b.clone() as SharedDevice]);
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    m.append_blocks(BlockNo(0), &refs).unwrap();
    assert_eq!(m.query_end(), Some(BlockNo(2)));
    let mut buf = vec![0u8; BLOCK];
    b.read_block(BlockNo(1), &mut buf).unwrap();
    assert_eq!(buf, images[1]);
}

#[test]
fn instrumented_batches_count_once_per_physical_write() {
    let stats = DeviceStats::new();
    let dev = InstrumentedDevice::new(Arc::new(MemWormDevice::new(BLOCK, CAPACITY)), stats.clone());
    let images: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; BLOCK]).collect();
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    dev.append_blocks(BlockNo(0), &refs).unwrap();
    dev.append_block(BlockNo(5), &[9u8; BLOCK]).unwrap();
    let s = stats.snapshot();
    assert_eq!(s.appends, 6, "logical appends: 5 batched + 1 single");
    assert_eq!(s.batch_appends, 1);
    assert_eq!(s.batch_blocks, 5);
    assert_eq!(s.write_ops(), 2, "one batch write + one single write");
    assert_eq!(stats.append_batch_blocks.snapshot().count, 1);
    assert_eq!(stats.append_batch_latency_ns.snapshot().count, 1);
    // An empty batch is a no-op, not a device write.
    dev.append_blocks(BlockNo(6), &[]).unwrap();
    assert_eq!(stats.snapshot().batch_appends, 1);
    // A failed batch counts one append error and no writes.
    assert!(dev.append_blocks(BlockNo(9), &refs).is_err());
    let s = stats.snapshot();
    assert_eq!(s.append_errors, 1);
    assert_eq!(s.write_ops(), 2);
}

#[test]
fn ram_tail_batch_seals_the_staged_block() {
    let worm = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    let dev = RamTailDevice::new(worm.clone());
    dev.rewrite_tail(BlockNo(0), &[1u8; BLOCK]).unwrap();
    dev.rewrite_tail(BlockNo(0), &[2u8; BLOCK]).unwrap();
    // The batch's first block is the sealed contents of the staged tail.
    let images = [vec![3u8; BLOCK], vec![4u8; BLOCK]];
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    dev.append_blocks(BlockNo(0), &refs).unwrap();
    assert!(!dev.has_tail(), "tail buffer retired by the sealing batch");
    assert_eq!(worm.query_end(), Some(BlockNo(2)));
    let mut buf = vec![0u8; BLOCK];
    worm.read_block(BlockNo(0), &mut buf).unwrap();
    assert_eq!(buf, images[0], "batch contents supersede the staged tail");
    worm.read_block(BlockNo(1), &mut buf).unwrap();
    assert_eq!(buf, images[1]);
}

#[test]
fn ram_tail_batch_past_a_staged_tail_drains_it_first() {
    let worm = Arc::new(MemWormDevice::new(BLOCK, CAPACITY));
    let dev = RamTailDevice::new(worm.clone());
    dev.rewrite_tail(BlockNo(0), &[1u8; BLOCK]).unwrap();
    let images = [vec![2u8; BLOCK], vec![3u8; BLOCK]];
    let refs: Vec<&[u8]> = images.iter().map(Vec::as_slice).collect();
    dev.append_blocks(BlockNo(1), &refs).unwrap();
    assert!(!dev.has_tail());
    assert_eq!(worm.query_end(), Some(BlockNo(3)));
    let mut buf = vec![0u8; BLOCK];
    worm.read_block(BlockNo(0), &mut buf).unwrap();
    assert_eq!(buf, vec![1u8; BLOCK], "staged tail drained to the medium");
}
