//! Acceptance test for the ops plane: a forced append's causal span tree
//! is visible over `GET /trace`, `GET /metrics` is valid Prometheus text
//! with per-log labels, and `/health` answers — all scraped with a plain
//! `std::net::TcpStream` (the same way the CI smoke does it).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use clio_core::server::{LogServer, Request, Response};
use clio_core::service::LogService;
use clio_core::ServiceConfig;
use clio_obs::json::{self, Value};
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn spawn_server() -> LogServer {
    // Group commit pinned on (not left to the CLIO_GROUP_COMMIT A/B
    // env): the span-tree acceptance below is about the commit-gate
    // pipeline, which the legacy path doesn't have. Two append domains,
    // so the per-shard series carry both labels.
    let cfg = ServiceConfig::small()
        .with_shards(2)
        .with_group_commit(true)
        .with_http_addr("127.0.0.1:0");
    let svc = LogService::create(
        VolumeSeqId(9),
        Arc::new(MemDevicePool::new(256, 4096)),
        cfg,
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .expect("create service");
    LogServer::spawn(svc)
}

/// One HTTP GET over a raw TcpStream; returns (head, body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    (head.to_owned(), body.to_owned())
}

/// Finds the first span node named `name` among `nodes` (breadth only).
fn child<'a>(nodes: &'a [Value], name: &str) -> Option<&'a Value> {
    nodes
        .iter()
        .find(|n| n.get("name").and_then(Value::as_str) == Some(name))
}

fn children(node: &Value) -> &[Value] {
    node.get("children").and_then(Value::as_arr).unwrap_or(&[])
}

fn dur_us(node: &Value) -> i64 {
    node.get("dur_us").and_then(Value::as_i64).expect("dur_us")
}

/// A forced append produces one span tree whose phases — stage, seal,
/// commit-gate wait with leader attribution, vectored device write,
/// snapshot publish — nest under the `append` root and fit inside the
/// observed end-to-end latency.
#[test]
fn forced_append_span_tree_is_served_over_http() {
    let server = spawn_server();
    let addr = server.http_addr().expect("endpoint is configured");
    let client = server.client();

    match client.call(Request::CreateLog {
        path: "/t".to_owned(),
    }) {
        Response::Created(_) => {}
        other => panic!("create failed: {other:?}"),
    }
    let t0 = clio_obs::clock::now_us();
    client.append_sync("/t", b"traced payload").expect("append");
    let e2e_us = clio_obs::clock::now_us() - t0;

    let (head, body) = get(addr, "/trace");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let doc = json::parse(&body).expect("trace body parses as JSON");
    let traces = doc.get("traces").and_then(Value::as_arr).expect("traces");

    // Find the forced append's tree: an `append` root with a commit_gate
    // child (catalog writes and the create don't go through the gate
    // with a root span open).
    let mut found = None;
    for t in traces {
        let spans = t.get("spans").and_then(Value::as_arr).expect("spans");
        if let Some(root) = child(spans, "append") {
            if child(children(root), "commit_gate").is_some() {
                found = Some(root);
            }
        }
    }
    let root = found.expect("a forced append trace with a commit gate");
    assert!(
        root.get("target").and_then(Value::as_i64).is_some(),
        "append span carries the log id"
    );
    let attrs = root.get("attrs").expect("append attrs");
    assert_eq!(
        attrs.get("bytes").and_then(Value::as_i64),
        Some(b"traced payload".len() as i64)
    );
    let shard = attrs
        .get("shard")
        .and_then(Value::as_i64)
        .expect("append span carries its shard");

    let kids = children(root);
    let stage = child(kids, "stage").expect("stage phase");
    let gate = child(kids, "commit_gate").expect("commit gate phase");
    let gate_attrs = gate.get("attrs").expect("gate attrs");
    let role = gate_attrs
        .get("role")
        .and_then(Value::as_str)
        .expect("role attribution");
    assert_eq!(role, "leader", "a lone forced append leads its own batch");
    assert_eq!(
        gate_attrs.get("shard").and_then(Value::as_i64),
        Some(shard),
        "commit gate span carries the same shard as its append"
    );

    let gate_kids = children(gate);
    let seal = child(gate_kids, "seal").expect("seal phase");
    let write = child(gate_kids, "device_write").expect("device write phase");
    let publish = child(gate_kids, "publish").expect("publish phase");

    // Phases are disjoint subintervals measured on one clock: they sum
    // to at most their parent, which fits inside the e2e latency.
    assert!(dur_us(seal) + dur_us(write) + dur_us(publish) <= dur_us(gate));
    assert!(dur_us(stage) + dur_us(gate) <= dur_us(root));
    assert!(
        dur_us(root) <= i64::try_from(e2e_us).expect("e2e fits"),
        "server-side span ({}us) cannot exceed e2e latency ({e2e_us}us)",
        dur_us(root)
    );
}

/// `/metrics` is a valid Prometheus text exposition — every line is a
/// comment or `name[{labels}] value` — and carries the per-log series.
#[test]
fn metrics_exposition_is_valid_prometheus_with_per_log_labels() {
    let server = spawn_server();
    let addr = server.http_addr().expect("endpoint is configured");
    let client = server.client();

    let id = match client.call(Request::CreateLog {
        path: "/t".to_owned(),
    }) {
        Response::Created(id) => id,
        other => panic!("create failed: {other:?}"),
    };
    client.append_sync("/t", b"one").expect("append");
    client.append_sync("/t", b"two").expect("append");
    // A second top-level log: consecutive ids route to the *other* of
    // the two append domains, so both shard labels carry appends.
    let id2 = match client.call(Request::CreateLog {
        path: "/u".to_owned(),
    }) {
        Response::Created(id) => id,
        other => panic!("create failed: {other:?}"),
    };
    client.append_sync("/u", b"three").expect("append");

    let (head, body) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {head}"
    );

    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("SERIES VALUE");
        let name = series.split('{').next().expect("metric name");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "malformed labels in line: {line}"
                );
            }
        }
        assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        samples += 1;
    }
    assert!(samples > 10, "exposition looks empty:\n{body}");

    // Per-log series, labeled with the created log's id.
    let labeled = format!("clio_log_appends_total{{log=\"{}\"}} 2", id.0);
    assert!(body.contains(&labeled), "missing {labeled} in:\n{body}");
    assert!(body.contains(&format!(
        "clio_log_append_latency_ns_bucket{{log=\"{}\",le=\"+Inf\"}} 2",
        id.0
    )));
    // The scrape counted itself (this is the first scrape, so 1).
    assert!(body.contains("clio_http_scrapes_total 1"), "{body}");

    // Per-shard series: top-level routing is id & (shards-1), so the two
    // logs hit different append domains with their own counters.
    let (s_t, s_u) = (id.0 & 1, id2.0 & 1);
    assert_ne!(s_t, s_u, "consecutive top-level logs must split shards");
    let shard_t = format!("clio_shard_appends_total{{shard=\"{s_t}\"}} 2");
    assert!(body.contains(&shard_t), "missing {shard_t} in:\n{body}");
    let shard_u = format!("clio_shard_appends_total{{shard=\"{s_u}\"}} 1");
    assert!(body.contains(&shard_u), "missing {shard_u} in:\n{body}");
    for s in [s_t, s_u] {
        for series in [
            format!("clio_shard_commits_total{{shard=\"{s}\"}}"),
            format!("clio_shard_leader_elections_total{{shard=\"{s}\"}}"),
            format!("clio_shard_commit_batch_blocks_bucket{{shard=\"{s}\""),
        ] {
            assert!(body.contains(&series), "missing {series} in:\n{body}");
        }
    }

    // The JSON form serves the same labeled series.
    let (_, body) = get(addr, "/metrics.json");
    let doc = json::parse(&body).expect("metrics.json parses");
    let key = format!("clio_log_appends_total{{log=\"{}\"}}", id.0);
    assert_eq!(doc.get(&key).and_then(Value::as_i64), Some(2));
    let key = format!("clio_shard_appends_total{{shard=\"{s_t}\"}}");
    assert_eq!(doc.get(&key).and_then(Value::as_i64), Some(2));
}

/// `/health` answers, unknown routes 404, and an unconfigured server
/// exposes no endpoint at all.
#[test]
fn health_and_absence() {
    let server = spawn_server();
    let addr = server.http_addr().expect("endpoint is configured");
    let (head, body) = get(addr, "/health");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(body.contains("\"status\":\"ok\""));
    let (head, _) = get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    server.shutdown();

    let svc = LogService::create(
        VolumeSeqId(10),
        Arc::new(MemDevicePool::new(256, 4096)),
        ServiceConfig::small(),
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .expect("create service");
    let server = LogServer::spawn(svc);
    assert!(server.http_addr().is_none(), "no knob, no socket");
}
