//! Model check: the per-shard sealed-block drain queue.
//!
//! Appenders seal fixed-size chunks under the shard state lock; drainers
//! claim the `draining` flag, take the whole queue, and "write the
//! device" — advancing a plain [`RaceCell`] device tail with a
//! contiguity assert per chunk. The checker proves the flag hand-off
//! through the state mutex is what makes the tail's unsynchronized
//! accesses safe (two concurrent drains would be reported as a race),
//! and the contiguity asserts prove full-batch FIFO drains never leave
//! a gap: the queue always holds exactly `[device_end, next_start)`.

use std::sync::Arc;

use clio_testkit::check::{schedule_target, spawn, Checker, RaceCell};
use clio_testkit::sync::Mutex;

struct Shard {
    state: Mutex<State>,
    device_end: RaceCell<u64>,
}

struct State {
    next_start: u64,
    queue: Vec<(u64, u64)>,
    draining: bool,
}

fn append_chunks(s: &Shard, n: u64) {
    for _ in 0..n {
        let mut st = s.state.lock();
        let chunk = (st.next_start, 1);
        st.next_start += 1;
        st.queue.push(chunk);
    }
}

/// One drain attempt; returns how many chunks it wrote.
fn drain(s: &Shard) -> usize {
    let batch = {
        let mut st = s.state.lock();
        if st.draining || st.queue.is_empty() {
            return 0;
        }
        st.draining = true;
        std::mem::take(&mut st.queue)
    };
    // Exclusive by the draining flag: the state mutex carries the
    // happens-before edge from the previous drain's tail write.
    let mut end = s.device_end.read();
    for &(start, len) in &batch {
        assert_eq!(start, end, "gap or reorder in the drained batch");
        end += len;
    }
    s.device_end.write(end);
    s.state.lock().draining = false;
    batch.len()
}

#[test]
fn sealed_queue_drains_are_exclusive_and_contiguous() {
    let r = Checker::new("sealed-queue").check(|| {
        let s = Arc::new(Shard {
            state: Mutex::new(State {
                next_start: 0,
                queue: Vec::new(),
                draining: false,
            }),
            device_end: RaceCell::new(0u64),
        });
        let (a1, a2, d1) = (s.clone(), s.clone(), s.clone());
        let t1 = spawn(move || append_chunks(&a1, 2));
        let t2 = spawn(move || append_chunks(&a2, 2));
        let t3 = spawn(move || {
            drain(&d1);
            drain(&d1);
        });
        drain(&s);
        t1.join().expect("appender 1");
        t2.join().expect("appender 2");
        t3.join().expect("drainer");
        // Final flush of anything the racing drains missed, then the
        // tail must cover every sealed chunk.
        drain(&s);
        assert_eq!(s.device_end.read(), 4, "all four chunks on the device");
        assert!(s.state.lock().queue.is_empty());
    });
    println!("model sealed-queue: {r}");
    assert!(r.dfs_complete || r.distinct >= schedule_target(), "{r}");
}
