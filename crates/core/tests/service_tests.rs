//! End-to-end tests of the Clio log service.

use std::sync::Arc;

use clio_core::service::{AppendOpts, Durability, LogService};
use clio_core::{ServiceConfig, Uio, UioSeek};
use clio_device::{FaultPlan, FaultyDevice, MemWormDevice, RamTailDevice, SharedDevice};
use clio_types::{ClioError, LogFileId, ManualClock, SeqNo, Timestamp, VolumeSeqId};
use clio_volume::{DevicePool, MemDevicePool, RecordingPool};

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

fn small_service() -> LogService {
    LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(256, 4096)),
        ServiceConfig::small(),
        clock(),
    )
    .unwrap()
}

#[test]
fn create_append_read_round_trip() {
    let svc = small_service();
    svc.create_log("/audit").unwrap();
    for i in 0..100u32 {
        svc.append_path(
            "/audit",
            format!("event-{i}").as_bytes(),
            AppendOpts::standard(),
        )
        .unwrap();
    }
    let mut cur = svc.cursor("/audit").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert_eq!(all.len(), 100);
    for (i, e) in all.iter().enumerate() {
        assert_eq!(e.data, format!("event-{i}").into_bytes());
        assert!(e.timestamp.is_some());
    }
    // Timestamps are strictly increasing (service clock ticks per call).
    for w in all.windows(2) {
        assert!(w[0].effective_ts() < w[1].effective_ts());
    }
}

#[test]
fn reading_backwards_from_the_end() {
    let svc = small_service();
    svc.create_log("/log").unwrap();
    for i in 0..20u32 {
        svc.append_path("/log", &i.to_le_bytes(), AppendOpts::standard())
            .unwrap();
    }
    let mut cur = svc.cursor_from_end("/log").unwrap();
    let mut seen = Vec::new();
    while let Some(e) = cur.prev().unwrap() {
        seen.push(u32::from_le_bytes(e.data[..4].try_into().unwrap()));
    }
    assert_eq!(seen, (0..20u32).rev().collect::<Vec<_>>());
    // And forward again from the start anchor.
    assert!(cur.prev().unwrap().is_none());
    let first = cur.next().unwrap().unwrap();
    assert_eq!(u32::from_le_bytes(first.data[..4].try_into().unwrap()), 0);
}

#[test]
fn sublogs_belong_to_parents() {
    let svc = small_service();
    svc.create_log("/mail").unwrap();
    svc.create_log("/mail/smith").unwrap();
    svc.create_log("/mail/jones").unwrap();
    svc.append_path("/mail/smith", b"to smith", AppendOpts::standard())
        .unwrap();
    svc.append_path("/mail/jones", b"to jones", AppendOpts::standard())
        .unwrap();
    svc.append_path("/mail", b"to the list", AppendOpts::standard())
        .unwrap();

    // Reading /mail sees all three (§2.1).
    let mut cur = svc.cursor("/mail").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert_eq!(all.len(), 3);
    // Reading a sublog sees only its own.
    let mut cur = svc.cursor("/mail/smith").unwrap();
    let smith = cur.collect_remaining().unwrap();
    assert_eq!(smith.len(), 1);
    assert_eq!(smith[0].data, b"to smith");
    // The volume sequence log sees client and service entries alike.
    let mut cur = svc.cursor("/").unwrap();
    let everything = cur.collect_remaining().unwrap();
    assert!(everything.len() >= 3 + 3, "got {}", everything.len()); // 3 creates logged too
}

#[test]
fn time_based_cursors() {
    let svc = small_service();
    svc.create_log("/t").unwrap();
    let mut stamps = Vec::new();
    for i in 0..50u32 {
        let r = svc
            .append_path("/t", &i.to_le_bytes(), AppendOpts::standard())
            .unwrap();
        stamps.push(r.timestamp);
    }
    // From the 25th entry's timestamp onwards.
    let mut cur = svc.cursor_from_time("/t", stamps[25]).unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 25);
    assert_eq!(u32::from_le_bytes(got[0].data[..4].try_into().unwrap()), 25);
    // prev() from that point gives entry 24.
    let mut cur = svc.cursor_from_time("/t", stamps[25]).unwrap();
    let before = cur.prev().unwrap().unwrap();
    assert_eq!(u32::from_le_bytes(before.data[..4].try_into().unwrap()), 24);
    // A time far in the future yields nothing forward, everything backward.
    let mut cur = svc
        .cursor_from_time("/t", Timestamp::from_secs(9999))
        .unwrap();
    assert!(cur.next().unwrap().is_none());
    assert!(cur.prev().unwrap().is_some());
    // A time before the epoch of the log starts at entry 0.
    let mut cur = svc.cursor_from_time("/t", Timestamp(0)).unwrap();
    let first = cur.next().unwrap().unwrap();
    assert_eq!(u32::from_le_bytes(first.data[..4].try_into().unwrap()), 0);
}

#[test]
fn receipts_locate_entries_directly() {
    let svc = small_service();
    svc.create_log("/k").unwrap();
    let mut receipts = Vec::new();
    for i in 0..30u32 {
        receipts.push(
            svc.append_path("/k", &i.to_le_bytes(), AppendOpts::forced())
                .unwrap(),
        );
    }
    for (i, r) in receipts.iter().enumerate() {
        let e = svc.read_entry(r.addr).unwrap();
        assert_eq!(
            u32::from_le_bytes(e.data[..4].try_into().unwrap()),
            i as u32
        );
        assert_eq!(e.timestamp, Some(r.timestamp));
    }
}

#[test]
fn large_entries_fragment_and_reassemble() {
    let svc = small_service(); // 256-byte blocks
    svc.create_log("/big").unwrap();
    let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    let r = svc
        .append_path("/big", &payload, AppendOpts::forced())
        .unwrap();
    let e = svc.read_entry(r.addr).unwrap();
    assert_eq!(e.data, payload);
    // And via cursor.
    let mut cur = svc.cursor("/big").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].data, payload);
    // Entries after the big one still work.
    svc.append_path("/big", b"small-after", AppendOpts::standard())
        .unwrap();
    let mut cur = svc.cursor("/big").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 2);
}

#[test]
fn mixed_sizes_interleaved_with_other_logs() {
    let svc = small_service();
    svc.create_log("/a").unwrap();
    svc.create_log("/b").unwrap();
    let mut expect_a = Vec::new();
    for i in 0..40usize {
        let data = vec![i as u8; (i * 37) % 600];
        if i % 3 == 0 {
            expect_a.push(data.clone());
            svc.append_path("/a", &data, AppendOpts::standard())
                .unwrap();
        } else {
            svc.append_path("/b", &data, AppendOpts::standard())
                .unwrap();
        }
    }
    let mut cur = svc.cursor("/a").unwrap();
    let got: Vec<Vec<u8>> = cur
        .collect_remaining()
        .unwrap()
        .into_iter()
        .map(|e| e.data)
        .collect();
    assert_eq!(got, expect_a);
}

#[test]
fn unique_id_lookup() {
    let svc = small_service();
    svc.create_log("/txn").unwrap();
    let mut wanted = None;
    for i in 0..30u32 {
        let r = svc
            .append_path("/txn", &i.to_le_bytes(), AppendOpts::with_seqno(SeqNo(i)))
            .unwrap();
        if i == 17 {
            wanted = Some(r.timestamp);
        }
    }
    let approx = Timestamp(wanted.unwrap().0 + 1_000); // a skewed client clock
    let hit = svc
        .find_by_unique_id("/txn", approx, SeqNo(17))
        .unwrap()
        .expect("entry 17 should be found");
    assert_eq!(u32::from_le_bytes(hit.data[..4].try_into().unwrap()), 17);
    assert!(svc
        .find_by_unique_id("/txn", approx, SeqNo(999))
        .unwrap()
        .is_none());
}

#[test]
fn catalog_errors() {
    let svc = small_service();
    assert!(matches!(
        svc.append_path("/nosuch", b"x", AppendOpts::standard()),
        Err(ClioError::NoSuchLogFile(_))
    ));
    svc.create_log("/x").unwrap();
    assert!(matches!(
        svc.create_log("/x"),
        Err(ClioError::LogFileExists(_))
    ));
    assert!(svc.create_log("/missing/child").is_err());
    assert!(svc.create_log("/.hidden").is_err());
    // Sealed log files refuse appends.
    let id = svc.resolve("/x").unwrap();
    svc.seal_log(id).unwrap();
    assert!(matches!(
        svc.append_path("/x", b"x", AppendOpts::standard()),
        Err(ClioError::ReadOnly)
    ));
    // Reserved ids refuse client appends.
    assert!(svc
        .append(LogFileId::CATALOG, b"x", AppendOpts::standard())
        .is_err());
}

#[test]
fn rename_and_list() {
    let svc = small_service();
    svc.create_log("/mail").unwrap();
    svc.create_log("/mail/smith").unwrap();
    svc.create_log("/mail/jones").unwrap();
    assert_eq!(svc.list("/mail").unwrap(), vec!["jones", "smith"]);
    let id = svc.resolve("/mail/smith").unwrap();
    svc.rename(id, "smythe").unwrap();
    assert_eq!(svc.list("/mail").unwrap(), vec!["jones", "smythe"]);
    assert_eq!(svc.path_of(id).unwrap(), "/mail/smythe");
}

// ---------------------------------------------------------------------
// Durability and recovery.
// ---------------------------------------------------------------------

/// The shared crash-simulation pool (see `clio_volume::RecordingPool`).
fn capturing_pool(block_size: usize, cap: u64, ram_tail: bool) -> Arc<RecordingPool> {
    let inner = Arc::new(MemDevicePool::new(block_size, cap));
    Arc::new(if ram_tail {
        RecordingPool::wrapping(inner, |base| {
            Arc::new(RamTailDevice::new(base)) as SharedDevice
        })
    } else {
        RecordingPool::new(inner)
    })
}

#[test]
fn forced_entries_survive_a_crash_pure_worm() {
    let pool = capturing_pool(256, 4096, false);
    let ck = clock();
    let svc = LogService::create(
        VolumeSeqId(9),
        pool.clone(),
        ServiceConfig::small(),
        ck.clone(),
    )
    .unwrap();
    svc.create_log("/wal").unwrap();
    for i in 0..25u32 {
        svc.append_path("/wal", &i.to_le_bytes(), AppendOpts::forced())
            .unwrap();
    }
    // Buffered entry that will be lost (never forced, never sealed).
    svc.append_path("/wal", b"volatile", AppendOpts::standard())
        .unwrap();
    drop(svc); // crash: all RAM state gone

    let (svc, report) =
        LogService::recover(pool.devices(), pool.clone(), ServiceConfig::small(), ck).unwrap();
    assert_eq!(report.volumes, 1);
    assert!(report.catalog_records >= 1);
    let mut cur = svc.cursor("/wal").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 25, "forced entries survive, buffered one lost");
    for (i, e) in got.iter().enumerate() {
        assert_eq!(
            u32::from_le_bytes(e.data[..4].try_into().unwrap()),
            i as u32
        );
    }
    // The recovered service keeps appending where it left off.
    svc.append_path("/wal", b"after-recovery", AppendOpts::forced())
        .unwrap();
    let mut cur = svc.cursor("/wal").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 26);
}

#[test]
fn ram_tail_staging_avoids_fragmentation_and_survives() {
    let pool = capturing_pool(256, 4096, true);
    let ck = clock();
    let svc = LogService::create(
        VolumeSeqId(9),
        pool.clone(),
        ServiceConfig::small(),
        ck.clone(),
    )
    .unwrap();
    svc.create_log("/wal").unwrap();
    for i in 0..25u32 {
        svc.append_path("/wal", &i.to_le_bytes(), AppendOpts::forced())
            .unwrap();
    }
    // Forced writes staged in NV RAM: far fewer sealed blocks than forced
    // writes (on pure WORM every force seals a block).
    let sealed = svc.report().blocks_sealed;
    assert!(sealed < 25, "sealed {sealed} blocks for 25 forced writes");
    drop(svc);

    let (svc, _) =
        LogService::recover(pool.devices(), pool.clone(), ServiceConfig::small(), ck).unwrap();
    let mut cur = svc.cursor("/wal").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 25);
}

#[test]
fn recovery_reconstructs_entrymap_equivalently() {
    // Write a log whose entries are sparse, crash, recover, and verify the
    // recovered service can still find distant entries via its rebuilt
    // entrymap state.
    let pool = capturing_pool(256, 4096, false);
    let ck = clock();
    let svc = LogService::create(
        VolumeSeqId(3),
        pool.clone(),
        ServiceConfig::small(),
        ck.clone(),
    )
    .unwrap();
    svc.create_log("/sparse").unwrap();
    svc.create_log("/noise").unwrap();
    svc.append_path("/sparse", b"first", AppendOpts::forced())
        .unwrap();
    for _ in 0..400 {
        svc.append_path("/noise", &[0u8; 40], AppendOpts::standard())
            .unwrap();
    }
    svc.append_path("/sparse", b"second", AppendOpts::forced())
        .unwrap();
    svc.flush().unwrap();
    drop(svc);

    let (svc, report) =
        LogService::recover(pool.devices(), pool.clone(), ServiceConfig::small(), ck).unwrap();
    assert!(report.rebuild_blocks_read > 0);
    let mut cur = svc.cursor("/sparse").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].data, b"first");
    assert_eq!(got[1].data, b"second");
}

#[test]
fn multi_volume_spanning() {
    // Tiny volumes force several successor loads (§2.1).
    let pool = capturing_pool(256, 24, false);
    let ck = clock();
    let svc = LogService::create(
        VolumeSeqId(5),
        pool.clone(),
        ServiceConfig::small(),
        ck.clone(),
    )
    .unwrap();
    svc.create_log("/span").unwrap();
    for i in 0..120u32 {
        let mut payload = format!("e{i}:").into_bytes();
        payload.resize(100, b'.');
        svc.append_path("/span", &payload, AppendOpts::standard())
            .unwrap();
    }
    svc.flush().unwrap();
    assert!(
        svc.volumes().volume_count() >= 3,
        "expected several volumes, got {}",
        svc.volumes().volume_count()
    );
    let mut cur = svc.cursor("/span").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert_eq!(all.len(), 120);
    for (i, e) in all.iter().enumerate() {
        assert!(e.data.starts_with(format!("e{i}:").as_bytes()));
    }
    // Backward reading crosses volumes too.
    let mut cur = svc.cursor_from_end("/span").unwrap();
    let last = cur.prev().unwrap().unwrap();
    assert!(last.data.starts_with(b"e119:"));

    // Crash and recover the whole chain.
    drop(svc);
    let (svc, report) =
        LogService::recover(pool.devices(), pool.clone(), ServiceConfig::small(), ck).unwrap();
    assert!(report.volumes >= 3);
    let mut cur = svc.cursor("/span").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 120);
    // The catalog came from the newest volume's checkpoint.
    assert!(svc.resolve("/span").is_ok());
}

#[test]
fn corruption_is_invalidated_and_other_data_survives() {
    // A fault injector corrupts one append; with verification on, the
    // service invalidates the block, re-places it, and logs a bad block.
    struct OneShotPool {
        dev: clio_testkit::sync::Mutex<Option<SharedDevice>>,
        faulty: clio_testkit::sync::Mutex<Option<Arc<FaultyDevice>>>,
    }
    impl DevicePool for OneShotPool {
        fn next_device(&self) -> clio_types::Result<SharedDevice> {
            let base: SharedDevice = Arc::new(MemWormDevice::new(256, 4096));
            let faulty = Arc::new(FaultyDevice::new(base, FaultPlan::default()));
            *self.faulty.lock() = Some(faulty.clone());
            let dev: SharedDevice = faulty;
            *self.dev.lock() = Some(dev.clone());
            Ok(dev)
        }
    }
    let pool = Arc::new(OneShotPool {
        dev: clio_testkit::sync::Mutex::new(None),
        faulty: clio_testkit::sync::Mutex::new(None),
    });
    let cfg = ServiceConfig::small().with_verified_appends();
    let svc = LogService::create(VolumeSeqId(6), pool.clone(), cfg.clone(), clock()).unwrap();
    svc.create_log("/d").unwrap();
    svc.append_path("/d", b"before", AppendOpts::forced())
        .unwrap();

    // Corrupt exactly the next device append.
    pool.faulty.lock().as_ref().unwrap().corrupt_next_append();
    let r = svc
        .append_path("/d", b"critical", AppendOpts::forced())
        .unwrap();
    // The forced entry is still readable (it was re-placed).
    let e = svc.read_entry(r.addr).unwrap();
    assert_eq!(e.data, b"critical");
    svc.append_path("/d", b"after", AppendOpts::forced())
        .unwrap();

    let mut cur = svc.cursor("/d").unwrap();
    let all: Vec<Vec<u8>> = cur
        .collect_remaining()
        .unwrap()
        .into_iter()
        .map(|e| e.data)
        .collect();
    assert_eq!(
        all,
        vec![b"before".to_vec(), b"critical".to_vec(), b"after".to_vec()]
    );

    // The bad block was recorded in the bad-block log (§2.3.2).
    svc.flush().unwrap();
    let mut cur = svc.cursor("/").unwrap();
    let bad_entries: Vec<_> = cur
        .collect_remaining()
        .unwrap()
        .into_iter()
        .filter(|e| e.id == LogFileId::BAD_BLOCK)
        .collect();
    assert_eq!(bad_entries.len(), 1);
}

#[test]
fn flush_is_idempotent_and_cheap_when_nothing_pending() {
    let svc = small_service();
    svc.create_log("/f").unwrap();
    svc.flush().unwrap();
    svc.flush().unwrap();
    svc.append_path("/f", b"x", AppendOpts::standard()).unwrap();
    svc.flush().unwrap();
    let sealed_before = svc.report().blocks_sealed;
    svc.flush().unwrap();
    svc.flush().unwrap();
    // Pure WORM flush seals; repeated flushes with no new data must not
    // keep sealing blocks.
    assert_eq!(svc.report().blocks_sealed, sealed_before);
}

#[test]
fn space_report_tracks_overheads() {
    let svc = small_service();
    svc.create_log("/s").unwrap();
    for _ in 0..200 {
        svc.append_path("/s", &[7u8; 36], AppendOpts::minimal())
            .unwrap();
    }
    svc.flush().unwrap();
    let r = svc.report();
    assert_eq!(r.entries, 200);
    assert_eq!(r.client_bytes, 200 * 36);
    // §2.2: minimal header overhead is 4 bytes/entry — under 10% at 36 B.
    // (Entries that straddle a block boundary fragment and pay a little
    // more, so the average sits just above 4.)
    assert!(
        r.avg_header_overhead >= 4.0 && r.avg_header_overhead < 7.0,
        "avg header overhead = {}",
        r.avg_header_overhead
    );
    assert!(r.header_overhead_pct() < 16.0);
    // Entrymap overhead per entry is far below the header cost (§3.5).
    assert!(r.avg_entrymap_overhead < r.avg_header_overhead);
}

// ---------------------------------------------------------------------
// UIO and the server boundary.
// ---------------------------------------------------------------------

#[test]
fn uio_round_trip_and_time_seek() {
    let svc = small_service();
    svc.create_log("/u").unwrap();
    let mut f = clio_core::uio::LogUio::open(&svc, "/u").unwrap();
    f.uio_write(b"hello ").unwrap();
    f.uio_write(b"world").unwrap();
    let mut buf = [0u8; 64];
    let n = f.uio_read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"hello world");
    assert_eq!(f.uio_read(&mut buf).unwrap(), 0);
    // Seek back to the start and read in tiny chunks.
    f.uio_seek(UioSeek::Start).unwrap();
    let mut tiny = [0u8; 4];
    assert_eq!(f.uio_read(&mut tiny).unwrap(), 4);
    assert_eq!(&tiny, b"hell");
    // Byte offsets are not meaningful for log files.
    assert!(f.uio_seek(UioSeek::Offset(3)).is_err());
}

#[test]
fn server_boundary_round_trip() {
    use clio_core::server::{LogServer, Request};
    let svc = small_service();
    let server = LogServer::spawn(svc);
    let client = server.client();

    match client.call(Request::CreateLog {
        path: "/remote".into(),
    }) {
        clio_core::server::Response::Created(_) => {}
        other => panic!("create failed: {other:?}"),
    }
    for i in 0..10u32 {
        client
            .append_sync("/remote", format!("m{i}").as_bytes())
            .unwrap();
    }
    let entries = client
        .call(Request::ReadFrom {
            path: "/remote".into(),
            from: Timestamp::ZERO,
            max: 100,
        })
        .entries()
        .unwrap();
    assert_eq!(entries.len(), 10);
    let last = client
        .call(Request::ReadLast {
            path: "/remote".into(),
            max: 3,
        })
        .entries()
        .unwrap();
    assert_eq!(last.len(), 3);
    assert_eq!(last[0].data, b"m9");
    assert!(server.ipc_round_trips() >= 12);
    server.shutdown();
}

#[test]
fn server_append_batch_is_one_round_trip() {
    use clio_core::server::{LogServer, Request, Response};
    let server = LogServer::spawn(small_service());
    let client = server.client();
    for path in ["/a", "/b"] {
        match client.call(Request::CreateLog { path: path.into() }) {
            Response::Created(_) => {}
            other => panic!("create failed: {other:?}"),
        }
    }
    let before = server.ipc_round_trips();
    let items: Vec<(String, Vec<u8>)> = (0..6u32)
        .map(|i| {
            let path = if i % 2 == 0 { "/a" } else { "/b" };
            (path.to_owned(), format!("batch{i}").into_bytes())
        })
        .collect();
    let receipts = client.append_batch(items.clone(), true).unwrap();
    assert_eq!(receipts.len(), 6);
    assert_eq!(
        server.ipc_round_trips(),
        before + 1,
        "a whole batch costs exactly one IPC round trip"
    );
    // Every receipt resolves to its payload, in order.
    let entries = client
        .call(Request::ReadFrom {
            path: "/a".into(),
            from: Timestamp::ZERO,
            max: 10,
        })
        .entries()
        .unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[0].data, b"batch0");
    assert_eq!(entries[2].data, b"batch4");
    // An unknown path fails the whole call without a panic.
    let bad = client.append_batch(vec![("/nope".into(), b"x".to_vec())], false);
    assert!(bad.is_err());
    server.shutdown();
}

#[test]
fn buffered_vs_forced_durability() {
    let svc = small_service();
    svc.create_log("/x").unwrap();
    let r1 = svc
        .append_path("/x", b"buffered", AppendOpts::standard())
        .unwrap();
    let r2 = svc
        .append_path("/x", b"forced", AppendOpts::forced())
        .unwrap();
    // Both readable through the service (read-your-writes).
    assert_eq!(svc.read_entry(r1.addr).unwrap().data, b"buffered");
    assert_eq!(svc.read_entry(r2.addr).unwrap().data, b"forced");
    assert!(matches!(
        AppendOpts::default().durability,
        Durability::Buffered
    ));
}

#[test]
fn time_cursor_crosses_volumes() {
    let pool = capturing_pool(256, 32, false);
    let svc = LogService::create(VolumeSeqId(11), pool, ServiceConfig::small(), clock()).unwrap();
    svc.create_log("/t").unwrap();
    let mut stamps = Vec::new();
    for i in 0..120u32 {
        let mut payload = format!("e{i}:").into_bytes();
        payload.resize(90, b't');
        let r = svc
            .append_path("/t", &payload, AppendOpts::standard())
            .unwrap();
        stamps.push(r.timestamp);
    }
    svc.flush().unwrap();
    assert!(svc.volumes().volume_count() >= 2, "needs several volumes");
    // Seek to a timestamp that lives in a non-first volume.
    let mut cur = svc.cursor_from_time("/t", stamps[100]).unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 20);
    assert!(got[0].data.starts_with(b"e100:"));
    // And to one in the first volume, reading across the boundary.
    let mut cur = svc.cursor_from_time("/t", stamps[10]).unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 110);
}

#[test]
fn read_permission_is_enforced() {
    use clio_format::records::PERM_APPEND;
    let svc = small_service();
    svc.create_log("/secret").unwrap();
    svc.append_path("/secret", b"classified", AppendOpts::standard())
        .unwrap();
    let id = svc.resolve("/secret").unwrap();
    // Drop the read bit; cursors are refused, appends still work.
    svc.set_perms(id, PERM_APPEND).unwrap();
    assert!(matches!(
        svc.cursor("/secret"),
        Err(ClioError::PermissionDenied(_))
    ));
    assert!(matches!(
        svc.cursor_from_time("/secret", Timestamp::ZERO),
        Err(ClioError::PermissionDenied(_))
    ));
    svc.append_path("/secret", b"more", AppendOpts::standard())
        .unwrap();
    // Drop the append bit instead.
    use clio_format::records::PERM_READ;
    svc.set_perms(id, PERM_READ).unwrap();
    assert!(matches!(
        svc.append_path("/secret", b"x", AppendOpts::standard()),
        Err(ClioError::PermissionDenied(_))
    ));
    let mut cur = svc.cursor("/secret").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 2);
}

#[test]
fn long_volume_chains_recover() {
    // The paper expects sequences "several hundred volumes long" (§3);
    // exercise a few dozen tiny volumes and a full recovery over them.
    let pool = capturing_pool(256, 8, false); // 7 data blocks per volume
    let ck = clock();
    let cfg = ServiceConfig::small();
    let total = 300u32;
    {
        let svc =
            LogService::create(VolumeSeqId(12), pool.clone(), cfg.clone(), ck.clone()).unwrap();
        svc.create_log("/chain").unwrap();
        for i in 0..total {
            let mut payload = format!("c{i}:").into_bytes();
            payload.resize(100, b'c');
            svc.append_path("/chain", &payload, AppendOpts::standard())
                .unwrap();
        }
        svc.flush().unwrap();
        assert!(
            svc.volumes().volume_count() >= 20,
            "only {} volumes",
            svc.volumes().volume_count()
        );
    }
    let (svc, report) = LogService::recover(pool.devices(), pool.clone(), cfg, ck).unwrap();
    assert!(report.volumes >= 20);
    let mut cur = svc.cursor("/chain").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), total as usize);
    for (i, e) in got.iter().enumerate() {
        assert!(e.data.starts_with(format!("c{i}:").as_bytes()));
    }
    // Backward over the whole chain too.
    let mut cur = svc.cursor_from_end("/chain").unwrap();
    let mut n = 0;
    while cur.prev().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, total as usize);
}

#[test]
fn server_admin_requests() {
    use clio_core::server::{LogServer, Request, Response};
    use clio_format::records::PERM_READ;
    let server = LogServer::spawn(small_service());
    let client = server.client();
    client.call(Request::CreateLog {
        path: "/adm".into(),
    });
    client.append_sync("/adm", b"one").unwrap();

    // Stat reflects catalog attributes.
    match client.call(Request::Stat {
        path: "/adm".into(),
    }) {
        Response::Attrs(a) => {
            assert_eq!(a.name, "adm");
            assert!(!a.sealed);
        }
        other => panic!("stat failed: {other:?}"),
    }
    // SetPerms to read-only, then appends fail through the boundary.
    match client.call(Request::SetPerms {
        path: "/adm".into(),
        perms: PERM_READ,
    }) {
        Response::Done => {}
        other => panic!("setperms failed: {other:?}"),
    }
    assert!(client.append_sync("/adm", b"two").is_err());
    // Seal is visible via Stat.
    client.call(Request::SetPerms {
        path: "/adm".into(),
        perms: 3,
    });
    match client.call(Request::Seal {
        path: "/adm".into(),
    }) {
        Response::Done => {}
        other => panic!("seal failed: {other:?}"),
    }
    match client.call(Request::Stat {
        path: "/adm".into(),
    }) {
        Response::Attrs(a) => assert!(a.sealed),
        other => panic!("stat failed: {other:?}"),
    }
    assert!(client.append_sync("/adm", b"three").is_err());
    server.shutdown();
}

/// Opening a level-boundary block moves the completed group's notes out of
/// the pending maps (they become map records at the start of the open
/// block) and propagates them one level up. The reader's frozen pending
/// snapshot must advance at the same moment: the whole-system simulator
/// (seed 9) caught a window where a view paired a post-open data end with
/// a pre-open pending clone, so the parent level hid the just-completed
/// sub-group and every entry in it was unlocatable until the next seal.
/// Sweeping a sparse log against a busy one checks every open/seal
/// alignment: the sparse log's entries must stay reachable after each
/// single append.
#[test]
fn regression_entries_locatable_while_boundary_block_open() {
    let svc = small_service();
    svc.create_log("/busy").unwrap();
    svc.create_log("/sparse").unwrap();
    // ~150-byte payloads pack one entry per 256-byte block, so appends map
    // to blocks and the 9-vs-4 stride walks all boundary alignments.
    let fat = vec![0x5A_u8; 150];
    let mut sparse_written = 0usize;
    for i in 0..80usize {
        if i % 9 == 3 {
            svc.append_path("/sparse", &fat, AppendOpts::standard())
                .unwrap();
            sparse_written += 1;
        } else {
            svc.append_path("/busy", &fat, AppendOpts::standard())
                .unwrap();
        }
        let mut cur = svc.cursor("/sparse").unwrap();
        let got = cur.collect_remaining().unwrap().len();
        assert_eq!(got, sparse_written, "after append {i}: entry unlocatable");
    }
}
