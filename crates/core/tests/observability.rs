//! End-to-end test of the unified observability layer: one service driven
//! through appends, reads, a cold-start locate and a crash recovery must
//! leave a registry whose exposition shows every layer's activity.

use std::sync::Arc;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_obs::{MetricValue, MetricsRegistry};
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::{MemDevicePool, RecordingPool};

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    for s in reg.gather() {
        if s.name == name {
            if let MetricValue::Counter(v) = s.value {
                return v;
            }
            panic!("{name} is not a counter");
        }
    }
    panic!("no metric named {name}");
}

fn gauge(reg: &MetricsRegistry, name: &str) -> i64 {
    for s in reg.gather() {
        if s.name == name {
            if let MetricValue::Gauge(v) = s.value {
                return v;
            }
            panic!("{name} is not a gauge");
        }
    }
    panic!("no metric named {name}");
}

fn histogram(reg: &MetricsRegistry, name: &str) -> clio_obs::HistSnapshot {
    for s in reg.gather() {
        if s.name == name {
            if let MetricValue::Histogram(h) = s.value {
                return *h;
            }
            panic!("{name} is not a histogram");
        }
    }
    panic!("no metric named {name}");
}

#[test]
fn one_service_lifetime_populates_every_layer() {
    let pool = Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(256, 4096))));
    let clock = clock();
    let cfg = ServiceConfig::small();
    let svc = LogService::create(VolumeSeqId(1), pool.clone(), cfg.clone(), clock.clone()).unwrap();

    // Appends (mixed buffered/forced) and forward reads.
    svc.create_log("/obs").unwrap();
    for i in 0..60u32 {
        let opts = if i % 10 == 0 {
            AppendOpts::forced()
        } else {
            AppendOpts::standard()
        };
        svc.append_path("/obs", format!("event-{i}").as_bytes(), opts)
            .unwrap();
    }
    svc.flush().unwrap();
    let mut cur = svc.cursor("/obs").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 60);

    // Cold-start locate: drop the cache, then search backwards from the
    // end — the locator must descend the entrymap tree from the device.
    svc.cache().clear();
    let mut cur = svc.cursor_from_end("/obs").unwrap();
    assert!(cur.prev().unwrap().is_some());

    let reg = svc.metrics().clone();
    // Device layer: op counts flowed through the instrumented pool.
    assert!(counter(&reg, "clio_device_appends_total") > 0);
    assert!(counter(&reg, "clio_device_reads_total") > 0);
    // Cache layer: warm reads hit, the post-clear read missed.
    assert!(counter(&reg, "clio_cache_hits_total") > 0);
    assert!(counter(&reg, "clio_cache_misses_total") > 0);
    // Core spans: appends and reads counted, none failed.
    assert_eq!(counter(&reg, "clio_core_appends_total"), 60);
    assert_eq!(counter(&reg, "clio_core_append_errors_total"), 0);
    assert!(counter(&reg, "clio_core_reads_total") > 0);
    assert!(counter(&reg, "clio_core_locates_total") > 0);

    // Latency histograms have plausible shapes.
    for name in [
        "clio_core_append_latency_ns",
        "clio_core_read_latency_ns",
        "clio_device_append_latency_ns",
    ] {
        let h = histogram(&reg, name);
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(h.min <= h.p50() && h.p50() <= h.p90(), "{name} p50/p90");
        assert!(h.p90() <= h.p99() && h.p99() <= h.max, "{name} p99/max");
        assert!(
            h.sum >= h.count * h.min && h.sum <= h.count * h.max,
            "{name} sum"
        );
    }
    // The locate-depth histogram saw real tree descents.
    assert!(histogram(&reg, "clio_core_locate_depth").count > 0);

    // Text exposition carries all of it; space gauges are refreshed.
    let text = svc.metrics_text();
    assert!(text.contains("# TYPE clio_device_appends_total counter"));
    assert!(text.contains("clio_core_append_latency_ns_bucket"));
    assert!(text.contains("clio_space_entries"));
    assert!(gauge(&reg, "clio_space_entries") == 60);

    // The op trace saw appends, reads and locates.
    let dump = svc.trace_dump();
    assert!(dump.contains("append"), "trace dump:\n{dump}");
    assert!(dump.contains("read"), "trace dump:\n{dump}");
    assert!(dump.contains("locate"), "trace dump:\n{dump}");

    // Crash: recover from the raw devices and check the recovery metrics.
    drop(svc);
    let (svc, report) = LogService::recover(pool.devices(), pool.clone(), cfg, clock).unwrap();
    assert!(report.end_locate_us >= 1 && report.rebuild_us >= 1 && report.catalog_us >= 1);
    assert!(report.end_locate_us + report.rebuild_us + report.catalog_us <= report.total_us);

    let reg = svc.metrics().clone();
    assert_eq!(gauge(&reg, "clio_recovery_volumes"), 1);
    assert!(gauge(&reg, "clio_recovery_rebuild_blocks_read") >= 0);
    assert!(gauge(&reg, "clio_recovery_total_us") >= 1);
    assert_eq!(
        gauge(&reg, "clio_recovery_catalog_records"),
        i64::try_from(report.catalog_records).unwrap()
    );
    // The recovered service read blocks through its own instrumented pool.
    assert!(counter(&reg, "clio_device_reads_total") > 0);

    // Data survived; reads on the recovered service feed its registry.
    let mut cur = svc.cursor("/obs").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 60);
    assert!(counter(&reg, "clio_core_reads_total") > 0);

    // JSON exposition parses with the in-tree decoder and exposes the
    // recovery gauges and a histogram object.
    let json = svc.metrics_json();
    let v = clio_obs::json::parse(&json).expect("metrics JSON parses");
    let total = v
        .get("clio_recovery_total_us")
        .and_then(clio_obs::json::Value::as_i64)
        .expect("recovery total gauge in JSON");
    assert!(total >= 1);
    let h = v
        .get("clio_device_read_latency_ns")
        .expect("device read histogram in JSON");
    assert!(h.get("count").and_then(clio_obs::json::Value::as_i64) > Some(0));
    assert!(h.get("p50").is_some() && h.get("p99").is_some());
}

#[test]
fn server_answers_stats_requests() {
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(256, 4096)),
        ServiceConfig::small(),
        clock(),
    )
    .unwrap();
    svc.create_log("/s").unwrap();
    let server = clio_core::server::LogServer::spawn(svc);
    let client = server.client();
    client.append_sync("/s", b"one entry").unwrap();

    let text = client.stats_text().unwrap();
    assert!(text.contains("clio_device_appends_total"));
    assert!(text.contains("# TYPE"));

    let json = client.stats_json().unwrap();
    let v = clio_obs::json::parse(&json).expect("stats JSON parses");
    assert!(
        v.get("clio_core_appends_total")
            .and_then(clio_obs::json::Value::as_i64)
            >= Some(1)
    );
    server.shutdown();
}

#[test]
fn tracing_can_be_disabled_by_config() {
    let cfg = ServiceConfig {
        trace_events: 0,
        ..ServiceConfig::small()
    };
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(256, 4096)),
        cfg,
        clock(),
    )
    .unwrap();
    svc.create_log("/quiet").unwrap();
    svc.append_path("/quiet", b"x", AppendOpts::standard())
        .unwrap();
    // Metrics still flow; only the trace ring is off.
    assert!(counter(svc.metrics(), "clio_core_appends_total") == 1);
    assert!(svc.obs().trace().is_empty());
}

#[test]
fn flush_republishes_when_only_the_sealed_queue_advanced() {
    // Force the group path regardless of the CLIO_GROUP_COMMIT A/B env.
    let cfg = ServiceConfig::small().with_group_commit(true);
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(256, 4096)),
        cfg,
        clock(),
    )
    .unwrap();
    svc.create_log("/q").unwrap();
    // Fill whole blocks with buffered entries: they seal into the
    // in-memory queue, the device end does not move.
    for i in 0..12u32 {
        let mut p = format!("q{i}:").into_bytes();
        p.resize(64, b'q');
        svc.append_path("/q", &p, AppendOpts::standard()).unwrap();
    }
    let dev_end_before = svc.volumes().active().data_end();
    let publishes_before = counter(svc.metrics(), "clio_core_view_publishes_total");
    let device_appends_before = counter(svc.metrics(), "clio_device_appends_total");
    // Read-your-writes from the in-memory queue, before any device write.
    let mut cur = svc.cursor("/q").unwrap();
    assert_eq!(
        cur.collect_remaining().unwrap().len(),
        12,
        "queued sealed blocks must be readable before the flush"
    );

    svc.flush().unwrap();

    // The flush drained queued sealed blocks onto the device and
    // republished the snapshot — even though nothing else changed.
    assert!(
        svc.volumes().active().data_end() > dev_end_before,
        "flush did not advance the device watermark"
    );
    assert!(
        counter(svc.metrics(), "clio_core_view_publishes_total") > publishes_before,
        "flush did not republish the read snapshot"
    );
    assert!(counter(svc.metrics(), "clio_device_appends_total") > device_appends_before);
    // Group-commit collectors saw the batch.
    assert!(counter(svc.metrics(), "clio_core_group_commit_batches_total") >= 1);
    assert!(histogram(svc.metrics(), "clio_core_group_commit_batch_blocks").count >= 1);

    // An idempotent flush still republishes (watermark already current).
    let publishes = counter(svc.metrics(), "clio_core_view_publishes_total");
    svc.flush().unwrap();
    assert!(counter(svc.metrics(), "clio_core_view_publishes_total") > publishes);

    // Everything reads back after the flush.
    let mut cur = svc.cursor("/q").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 12);
}
