//! Shard lock ordering under the lock-order validator.
//!
//! Each append domain's state mutex gets its own lockdep class
//! (`core.state.shard<i>`), so cross-shard acquisition order is checked,
//! not erased by same-class filtering. The service's discipline is
//! strictly ascending shard order (`while_append_locked`, cross-shard
//! batches); this binary drives every cross-shard path with lockdep
//! force-enabled — any shard-B-before-shard-A acquisition anywhere in
//! the service would panic the test. It then proves the ordering is
//! actually being recorded (rather than vacuously passing) by taking the
//! reverse order on the same classes by hand and checking lockdep flags
//! it.
//!
//! Lives in its own integration-test binary because `force_enable` is
//! sticky and process-wide.

use std::sync::Arc;
use std::thread;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_testkit::lockdep;
use clio_testkit::sync::Mutex;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn service(shards: usize) -> Arc<LogService> {
    let cfg = ServiceConfig {
        shards,
        ..ServiceConfig::small()
    };
    Arc::new(
        LogService::create(
            VolumeSeqId(9),
            Arc::new(MemDevicePool::new(cfg.block_size, 1 << 14)),
            cfg,
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("create service"),
    )
}

/// Run `f` on a fresh thread and return the panic message it died with.
fn panic_message(f: impl FnOnce() + Send + 'static) -> String {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = thread::spawn(f)
        .join()
        .expect_err("the closure should have panicked");
    std::panic::set_hook(prev);
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => *err
            .downcast::<&'static str>()
            .map(|s| Box::new(s.to_string()))
            .expect("panic payload should be a string"),
    }
}

#[test]
fn cross_shard_operations_keep_one_lock_order() {
    lockdep::force_enable();
    let svc = service(4);
    for t in 0..8 {
        svc.create_log(&format!("/s{t}")).expect("create log");
    }

    // Nested acquisition of every shard state lock, ascending: records
    // the canonical shard0 -> shard1 -> shard2 -> shard3 edges.
    svc.while_append_locked(|| ());

    // Concurrent appenders on every shard plus cross-shard batches and
    // catalog mutations (which fan in at shard 0). With lockdep on, any
    // reverse-order acquisition in these paths panics the run.
    let mut handles = Vec::new();
    for t in 0..4usize {
        let svc = svc.clone();
        handles.push(thread::spawn(move || {
            for i in 0..20 {
                svc.append_path(
                    &format!("/s{t}"),
                    format!("entry {i}").as_bytes(),
                    if i % 5 == 0 {
                        AppendOpts::forced()
                    } else {
                        AppendOpts::standard()
                    },
                )
                .expect("append");
                // A batch spanning several shards: sub-batches must go
                // in ascending shard order.
                let items: Vec<(String, Vec<u8>)> = (0..8)
                    .map(|l| (format!("/s{l}"), format!("batch {t}/{i}/{l}").into_bytes()))
                    .collect();
                svc.append_batch(&items, AppendOpts::standard())
                    .expect("cross-shard batch");
            }
            svc.create_log(&format!("/t{t}")).expect("routed create");
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    svc.flush().expect("flush");
    assert_eq!(lockdep::held_count(), 0);

    // Prove the per-shard classes are distinct and the ordering above
    // was really recorded: hand-acquire shard1's class before shard0's.
    // If the service code had left all shards in one class (or recorded
    // nothing), this would pass silently instead of panicking.
    let msg = panic_message(|| {
        let b = Mutex::with_class_io(0u32, "core.state.shard1");
        let a = Mutex::with_class_io(0u32, "core.state.shard0");
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order inversion"), "message: {msg}");
    assert!(msg.contains("core.state.shard0"), "message: {msg}");
    assert!(msg.contains("core.state.shard1"), "message: {msg}");
}
