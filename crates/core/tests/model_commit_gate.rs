//! Model check: the leader/follower group-commit gate.
//!
//! A 3-appender model of `LogService`'s commit protocol. Appenders stage
//! entries under the state lock, then one of them (the leader) claims the
//! gate's `committing` flag, "writes the device" — modeled as a plain
//! [`RaceCell`] write, so the checker proves the gate really is what
//! orders it — and publishes the new committed sequence before waking
//! followers. The checked invariants:
//!
//! * a follower released by the gate observes its own sequence durable
//!   (durability precedes commit acknowledgment);
//! * the device write is exclusive: the only happens-before edges that
//!   can order the `durable` cell's accesses come from the gate mutex,
//!   so any schedule with two concurrent leaders is reported as a race.

use std::sync::Arc;

use clio_testkit::check::{schedule_target, Checker, RaceCell};
use clio_testkit::sync::{Condvar, Mutex};

struct State {
    next_seq: u64,
    staged: u64,
}

struct Gate {
    committed: u64,
    committing: bool,
}

struct Model {
    state: Mutex<State>,
    gate: Mutex<Gate>,
    cv: Condvar,
    durable: RaceCell<u64>,
}

fn append(m: &Model) {
    let my_seq = {
        let mut st = m.state.lock();
        st.next_seq += 1;
        st.staged = st.next_seq;
        st.next_seq
    };
    let mut g = m.gate.lock();
    loop {
        if g.committed >= my_seq {
            // Released by a leader's flush. If no later flush is in
            // progress, the gate mutex orders that leader's device
            // write before this read — and it must cover our entry.
            if !g.committing {
                assert!(m.durable.read() >= my_seq, "committed but not durable");
            }
            return;
        }
        if !g.committing {
            // Become the leader for everything staged so far.
            g.committing = true;
            drop(g);
            let batch_end = m.state.lock().staged;
            let prev = m.durable.read();
            m.durable.write(prev.max(batch_end));
            g = m.gate.lock();
            g.committing = false;
            g.committed = g.committed.max(batch_end);
            m.cv.notify_all();
        } else {
            g = m.cv.wait(g);
        }
    }
}

#[test]
fn commit_gate_orders_device_writes() {
    let r = Checker::new("commit-gate").check(|| {
        let m = Arc::new(Model {
            state: Mutex::new(State {
                next_seq: 0,
                staged: 0,
            }),
            gate: Mutex::new(Gate {
                committed: 0,
                committing: false,
            }),
            cv: Condvar::new(),
            durable: RaceCell::new(0u64),
        });
        let (m1, m2) = (m.clone(), m.clone());
        let t1 = clio_testkit::check::spawn(move || append(&m1));
        let t2 = clio_testkit::check::spawn(move || append(&m2));
        append(&m);
        t1.join().expect("appender 1");
        t2.join().expect("appender 2");
        assert_eq!(m.durable.read(), 3, "all three appends durable");
    });
    println!("model commit-gate: {r}");
    assert!(r.dfs_complete || r.distinct >= schedule_target(), "{r}");
}
