//! Multi-threaded stress tests for the lock-free read path.
//!
//! The write-once medium makes sealed blocks immutable, so reads run
//! against published [`ReadView`] snapshots and never take the append-side
//! state mutex. These tests prove it: readers chew through entries while a
//! writer appends concurrently, every receipt handed out before a flush is
//! immediately readable, no reader ever observes a torn entry, and the
//! sharded cache's per-shard counters stay consistent with the totals.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_testkit::sync::Mutex;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn service() -> Arc<LogService> {
    Arc::new(
        LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(256, 8192)),
            ServiceConfig::small(),
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .unwrap(),
    )
}

/// The payload for entry `i`: an index header plus a repeating fill byte,
/// so a torn or cross-wired read is detectable from the bytes alone.
fn payload(i: u64) -> Vec<u8> {
    let fill = (i % 251) as u8;
    let mut p = i.to_le_bytes().to_vec();
    p.extend(std::iter::repeat_n(fill, 5 + (i % 40) as usize));
    p
}

fn check_payload(data: &[u8]) {
    let i = u64::from_le_bytes(data[..8].try_into().unwrap());
    let expect = payload(i);
    assert_eq!(data, expect, "torn or mismatched entry {i}");
}

/// A writer appends (mostly buffered, occasionally forced) while four
/// readers hammer random receipts and cursor scans. Every receipt is
/// readable the moment it is issued — before any flush — and every entry
/// read back is intact.
#[test]
fn readers_race_a_live_writer() {
    const ENTRIES: u64 = 400;
    const READERS: usize = 4;

    let svc = service();
    svc.create_log("/stress").unwrap();
    let receipts: Arc<Mutex<Vec<clio_types::EntryAddr>>> =
        Arc::new(Mutex::new(Vec::with_capacity(ENTRIES as usize)));
    let done = Arc::new(AtomicBool::new(false));
    let reads_done = Arc::new(AtomicU64::new(0));

    let writer = {
        let svc = svc.clone();
        let receipts = receipts.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let id = svc.resolve("/stress").unwrap();
            for i in 0..ENTRIES {
                let opts = if i % 64 == 63 {
                    AppendOpts::forced()
                } else {
                    AppendOpts::standard()
                };
                let r = svc.append(id, &payload(i), opts).unwrap();
                // The receipt must be readable immediately, before any
                // flush: buffered entries live in the published snapshot's
                // frozen open-block image.
                let e = svc.read_entry(r.addr).unwrap();
                assert_eq!(e.data, payload(i));
                receipts.lock().push(r.addr);
            }
            done.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let svc = svc.clone();
            let receipts = receipts.clone();
            let done = done.clone();
            let reads_done = reads_done.clone();
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                let mut x = 0x9E37_79B9u64 + t as u64;
                while !(done.load(Ordering::Acquire) && rounds > 0) {
                    let known: Vec<_> = receipts.lock().clone();
                    if known.is_empty() {
                        std::thread::yield_now();
                        continue;
                    }
                    // Random point reads over everything appended so far.
                    for _ in 0..32 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let addr = known[(x >> 33) as usize % known.len()];
                        let e = svc.read_entry(addr).unwrap();
                        check_payload(&e.data);
                        reads_done.fetch_add(1, Ordering::Relaxed);
                    }
                    // A cursor scan sees a consistent snapshot: at least as
                    // many entries as receipts existed when it started, all
                    // intact, indexes strictly increasing.
                    let floor = known.len() as u64;
                    let mut cur = svc.cursor("/stress").unwrap();
                    let mut count = 0u64;
                    let mut last = None;
                    while let Some(e) = cur.next().unwrap() {
                        check_payload(&e.data);
                        let i = u64::from_le_bytes(e.data[..8].try_into().unwrap());
                        if let Some(prev) = last {
                            assert!(i > prev, "cursor went backwards: {prev} then {i}");
                        }
                        last = Some(i);
                        count += 1;
                        reads_done.fetch_add(1, Ordering::Relaxed);
                    }
                    assert!(
                        count >= floor,
                        "cursor saw {count} entries, {floor} receipts were already issued"
                    );
                    rounds += 1;
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(reads_done.load(Ordering::Relaxed) > 0);

    // Everything is still there after the dust settles.
    let mut cur = svc.cursor("/stress").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert_eq!(all.len() as u64, ENTRIES);

    // Sharded cache bookkeeping: per-shard counters sum to the totals, and
    // residency never exceeds capacity.
    let cache = svc.cache();
    let totals = cache.stats();
    let (mut hits, mut misses) = (0, 0);
    for s in 0..cache.shard_count() {
        let st = cache.shard_stats(s);
        hits += st.hits;
        misses += st.misses;
    }
    assert_eq!(hits, totals.hits);
    assert_eq!(misses, totals.misses);
    assert!(cache.len() <= svc.config().cache_blocks);
}

/// Readers make progress while the append-side state mutex is *held*: the
/// read path acquires no append lock, by construction.
#[test]
fn reads_proceed_while_append_lock_is_held() {
    let svc = service();
    svc.create_log("/pinned").unwrap();
    let mut addrs = Vec::new();
    for i in 0..50u64 {
        addrs.push(
            svc.append_path("/pinned", &payload(i), AppendOpts::standard())
                .unwrap()
                .addr,
        );
    }
    svc.flush().unwrap();

    let (tx, rx) = std::sync::mpsc::channel();
    svc.while_append_locked(|| {
        let svc2 = svc.clone();
        let addrs = addrs.clone();
        std::thread::spawn(move || {
            for addr in &addrs {
                check_payload(&svc2.read_entry(*addr).unwrap().data);
            }
            let mut cur = svc2.cursor("/pinned").unwrap();
            let n = cur.collect_remaining().unwrap().len();
            tx.send(n).unwrap();
        });
        // If any read needed the append lock this would deadlock; the
        // timeout turns that hang into a test failure.
        let n = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("readers blocked on the append lock");
        assert_eq!(n, 50);
    });
}

/// A cursor pinned before a burst of appends still tails the log: it
/// refreshes its snapshot only when it crosses the pinned watermark.
#[test]
fn cursors_tail_across_snapshot_refreshes() {
    let svc = service();
    svc.create_log("/tail").unwrap();
    for i in 0..10u64 {
        svc.append_path("/tail", &payload(i), AppendOpts::standard())
            .unwrap();
    }
    let mut cur = svc.cursor("/tail").unwrap();
    for i in 0..10u64 {
        assert_eq!(cur.next().unwrap().unwrap().data, payload(i));
    }
    assert!(cur.next().unwrap().is_none());
    // New appends after the cursor exhausted its snapshot...
    for i in 10..25u64 {
        svc.append_path("/tail", &payload(i), AppendOpts::standard())
            .unwrap();
    }
    // ...become visible on the next call, without recreating the cursor.
    for i in 10..25u64 {
        assert_eq!(cur.next().unwrap().unwrap().data, payload(i));
    }
    assert!(cur.next().unwrap().is_none());
}
