//! Crash recovery with a torn/corrupted tail (§2.3.2, §3.4).
//!
//! A crash mid-write may leave the most recently written blocks filled
//! with garbage. These tests tear the tail with seeded fault injection
//! (`clio_device::FaultyDevice` over `clio_testkit::rng`) and assert that
//! recovery invalidates the damage and rebuilds entrymap and catalog
//! state that exactly matches the durable pre-crash prefix.

use std::sync::Arc;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::{FaultPlan, FaultyDevice, SharedDevice};
use clio_testkit::prop::{any_u64, bools, check, pair, triple, u16s, vec_of};
use clio_testkit::rng::StdRng;
use clio_testkit::sync::Mutex;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::{MemDevicePool, RecordingPool};

type FaultHandles = Arc<Mutex<Vec<Arc<FaultyDevice>>>>;

/// A recording pool whose devices are all fault-injection wrappers, with
/// the handles kept so tests can tear specific writes.
fn faulty_pool(block_size: usize, capacity: u64) -> (Arc<RecordingPool>, FaultHandles) {
    let handles: FaultHandles = Arc::new(Mutex::new(Vec::new()));
    let h = handles.clone();
    let pool = Arc::new(RecordingPool::wrapping(
        Arc::new(MemDevicePool::new(block_size, capacity)),
        move |dev: SharedDevice| {
            let f = Arc::new(FaultyDevice::new(dev, FaultPlan::default()));
            h.lock().push(f.clone());
            f
        },
    ));
    (pool, handles)
}

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

/// The deterministic walkthrough: a flushed prefix, one torn forced
/// append, crash, recover.
#[test]
fn torn_tail_block_is_invalidated_and_prefix_survives() {
    let (pool, handles) = faulty_pool(256, 1 << 14);
    let cfg = ServiceConfig::small();
    {
        let svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), clock()).unwrap();
        svc.create_log("/t").unwrap();
        for i in 0..20 {
            let mut p = format!("p{i}:").into_bytes();
            p.resize(64, b'd');
            svc.append_path("/t", &p, AppendOpts::standard()).unwrap();
        }
        svc.flush().unwrap();
        // The tail block of the crash: written as garbage on the media.
        handles.lock().last().unwrap().corrupt_next_append();
        svc.append_path("/t", b"torn entry", AppendOpts::forced())
            .unwrap();
    } // crash

    let (svc, report) = LogService::recover(pool.devices(), pool.clone(), cfg, clock()).unwrap();
    assert_eq!(report.volumes, 1);
    assert!(report.rebuild_blocks_read > 0);
    // Per-phase wall-clock timings (§3.4 steps): each populated, and
    // their sum never exceeds the whole-recovery total.
    assert!(
        report.end_locate_us >= 1,
        "step 1 timing missing: {report:?}"
    );
    assert!(report.rebuild_us >= 1, "step 2 timing missing: {report:?}");
    assert!(report.catalog_us >= 1, "step 3 timing missing: {report:?}");
    assert!(
        report.end_locate_us + report.rebuild_us + report.catalog_us <= report.total_us,
        "phase sum exceeds total: {report:?}"
    );
    assert!(
        !report.invalidated.is_empty(),
        "torn block was not invalidated: {report:?}"
    );
    let torn = handles.lock().last().unwrap().corrupted_blocks();
    assert_eq!(torn.len(), 1);

    // The durable prefix is intact and in order; the torn entry is gone.
    let mut cur = svc.cursor("/t").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 20);
    for (i, e) in got.iter().enumerate() {
        assert!(e.data.starts_with(format!("p{i}:").as_bytes()), "entry {i}");
    }

    // The service keeps working past the invalidated block.
    svc.append_path("/t", b"post-recovery", AppendOpts::forced())
        .unwrap();
    let mut cur = svc.cursor("/t").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 21);
    assert_eq!(got.last().unwrap().data, b"post-recovery");
}

/// The seeded sweep: random flushed prefixes, one to five torn tail
/// writes, arbitrary payload bytes from `clio_testkit::rng`.
#[test]
fn recovery_rebuilds_exactly_the_precrash_prefix() {
    let g = triple(
        &vec_of(&pair(&u16s(1..300), &bools()), 4..40),
        &u16s(1..6),
        &any_u64(),
    );
    check(
        "recovery_rebuilds_exactly_the_precrash_prefix",
        12,
        &g,
        |(lens, torn_count, payload_seed)| {
            let mut rng = StdRng::seed_from_u64(*payload_seed);
            let (pool, handles) = faulty_pool(256, 1 << 14);
            let cfg = ServiceConfig::small();
            let mut oracle: Vec<Vec<u8>> = Vec::new();
            {
                let svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), clock())
                    .expect("create");
                svc.create_log("/t").expect("create log");
                for (i, (len, forced)) in lens.iter().enumerate() {
                    let mut p = format!("p{i}:").into_bytes();
                    let tag = p.len();
                    p.resize(tag + *len as usize, 0);
                    rng.fill(&mut p[tag..]);
                    let opts = if *forced {
                        AppendOpts::forced()
                    } else {
                        AppendOpts::standard()
                    };
                    svc.append_path("/t", &p, opts).expect("append");
                    oracle.push(p);
                }
                svc.flush().expect("flush");
                // Tear the tail: every block the crashing writes touch is
                // garbage on the media.
                for t in 0..*torn_count {
                    handles.lock().last().expect("device").corrupt_next_append();
                    let _ =
                        svc.append_path("/t", format!("torn{t}").as_bytes(), AppendOpts::forced());
                }
            } // crash

            let (svc, report) =
                LogService::recover(pool.devices(), pool.clone(), cfg.clone(), clock())
                    .expect("recover");
            assert!(
                !report.invalidated.is_empty(),
                "no blocks invalidated: {report:?}"
            );
            assert!(
                report.end_locate_us >= 1
                    && report.rebuild_us >= 1
                    && report.catalog_us >= 1
                    && report.end_locate_us + report.rebuild_us + report.catalog_us
                        <= report.total_us,
                "inconsistent phase timings: {report:?}"
            );

            // Catalog: the log resolves; entrymap + data: the durable
            // prefix reads back exactly, forward and backward. Entries
            // from the torn phase may survive only after the prefix.
            svc.resolve("/t").expect("catalog entry");
            let mut cur = svc.cursor("/t").expect("cursor");
            let got = cur.collect_remaining().expect("scan");
            assert!(
                got.len() >= oracle.len(),
                "{} < {}",
                got.len(),
                oracle.len()
            );
            for (want, have) in oracle.iter().zip(&got) {
                assert_eq!(want, &have.data);
            }
            for e in &got[oracle.len()..] {
                assert!(e.data.starts_with(b"torn"), "unexpected entry {:?}", e.data);
            }
            let mut cur = svc.cursor_from_end("/t").expect("cursor");
            let mut back = Vec::new();
            while let Some(e) = cur.prev().expect("prev") {
                back.push(e.data);
            }
            back.reverse();
            let fwd: Vec<_> = got.iter().map(|e| e.data.clone()).collect();
            assert_eq!(back, fwd, "backward scan disagrees with forward scan");

            // Recovery converged: a second recovery from the same media
            // finds nothing further to invalidate and the same entries.
            drop(svc);
            let (svc2, report2) = LogService::recover(pool.devices(), pool.clone(), cfg, clock())
                .expect("second recover");
            assert!(
                report2.invalidated.is_empty(),
                "second recovery re-invalidated: {report2:?}"
            );
            let mut cur = svc2.cursor("/t").expect("cursor");
            let again: Vec<_> = cur
                .collect_remaining()
                .expect("scan")
                .into_iter()
                .map(|e| e.data)
                .collect();
            assert_eq!(again, fwd, "recovery is not idempotent");
        },
    );
}
