//! Crash recovery with a torn/corrupted tail (§2.3.2, §3.4).
//!
//! A crash mid-write may leave the most recently written blocks filled
//! with garbage. These tests tear the tail with seeded fault injection
//! (`clio_device::FaultyDevice` over `clio_testkit::rng`) and assert that
//! recovery invalidates the damage and rebuilds entrymap and catalog
//! state that exactly matches the durable pre-crash prefix.

use std::sync::Arc;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::{FaultPlan, FaultyDevice, SharedDevice};
use clio_testkit::prop::{any_u64, bools, check, pair, triple, u16s, vec_of};
use clio_testkit::rng::StdRng;
use clio_testkit::sync::Mutex;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::{MemDevicePool, RecordingPool};

type FaultHandles = Arc<Mutex<Vec<Arc<FaultyDevice>>>>;

/// A recording pool whose devices are all fault-injection wrappers, with
/// the handles kept so tests can tear specific writes.
fn faulty_pool(block_size: usize, capacity: u64) -> (Arc<RecordingPool>, FaultHandles) {
    let handles: FaultHandles = Arc::new(Mutex::new(Vec::new()));
    let h = handles.clone();
    let pool = Arc::new(RecordingPool::wrapping(
        Arc::new(MemDevicePool::new(block_size, capacity)),
        move |dev: SharedDevice| {
            let f = Arc::new(FaultyDevice::new(dev, FaultPlan::default()));
            h.lock().push(f.clone());
            f
        },
    ));
    (pool, handles)
}

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

/// The deterministic walkthrough: a flushed prefix, one torn forced
/// append, crash, recover.
#[test]
fn torn_tail_block_is_invalidated_and_prefix_survives() {
    let (pool, handles) = faulty_pool(256, 1 << 14);
    let cfg = ServiceConfig::small();
    {
        let svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), clock()).unwrap();
        svc.create_log("/t").unwrap();
        for i in 0..20 {
            let mut p = format!("p{i}:").into_bytes();
            p.resize(64, b'd');
            svc.append_path("/t", &p, AppendOpts::standard()).unwrap();
        }
        svc.flush().unwrap();
        // The tail block of the crash: written as garbage on the media.
        handles.lock().last().unwrap().corrupt_next_append();
        svc.append_path("/t", b"torn entry", AppendOpts::forced())
            .unwrap();
    } // crash

    let (svc, report) = LogService::recover(pool.devices(), pool.clone(), cfg, clock()).unwrap();
    assert_eq!(report.volumes, 1);
    assert!(report.rebuild_blocks_read > 0);
    // Per-phase wall-clock timings (§3.4 steps): each populated, and
    // their sum never exceeds the whole-recovery total.
    assert!(
        report.end_locate_us >= 1,
        "step 1 timing missing: {report:?}"
    );
    assert!(report.rebuild_us >= 1, "step 2 timing missing: {report:?}");
    assert!(report.catalog_us >= 1, "step 3 timing missing: {report:?}");
    assert!(
        report.end_locate_us + report.rebuild_us + report.catalog_us <= report.total_us,
        "phase sum exceeds total: {report:?}"
    );
    assert!(
        !report.invalidated.is_empty(),
        "torn block was not invalidated: {report:?}"
    );
    let torn = handles.lock().last().unwrap().corrupted_blocks();
    assert_eq!(torn.len(), 1);

    // The durable prefix is intact and in order; the torn entry is gone.
    let mut cur = svc.cursor("/t").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 20);
    for (i, e) in got.iter().enumerate() {
        assert!(e.data.starts_with(format!("p{i}:").as_bytes()), "entry {i}");
    }

    // The service keeps working past the invalidated block.
    svc.append_path("/t", b"post-recovery", AppendOpts::forced())
        .unwrap();
    let mut cur = svc.cursor("/t").unwrap();
    let got = cur.collect_remaining().unwrap();
    assert_eq!(got.len(), 21);
    assert_eq!(got.last().unwrap().data, b"post-recovery");
}

/// Group-commit torn batches: buffered appends queue several sealed
/// blocks in memory, a forced append drains them in one vectored device
/// write, and the crash tears that write after `k` of its `n` blocks —
/// for every `k`. Recovery must land on a consistent prefix: everything
/// acknowledged durable before the tear (the flushed receipts) reads
/// back, the recovered tail is an in-order prefix of the staged entries,
/// and re-recovery is idempotent.
#[test]
fn torn_group_commit_batch_recovers_a_consistent_prefix() {
    const STAGED: usize = 12;
    const MAX_TEAR: usize = 10;
    let mut rng = StdRng::seed_from_u64(0x70_71);
    // Identical payloads for every tear point: placement is deterministic.
    let staged_payloads: Vec<Vec<u8>> = (0..STAGED)
        .map(|i| {
            let mut p = format!("s{i}:").into_bytes();
            let tag = p.len();
            p.resize(64, 0);
            rng.fill(&mut p[tag..]);
            p
        })
        .collect();
    let mut recovered_lens: Vec<usize> = Vec::new();
    let mut saw_full_batch = false;
    for k in 0..=MAX_TEAR {
        let (pool, handles) = faulty_pool(256, 1 << 14);
        // Force the group path regardless of the CLIO_GROUP_COMMIT A/B env.
        let cfg = ServiceConfig::small().with_group_commit(true);
        let mut oracle: Vec<Vec<u8>> = Vec::new();
        let mut flushed_receipts = Vec::new();
        let torn = {
            let svc =
                LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), clock()).unwrap();
            svc.create_log("/t").unwrap();
            for i in 0..20 {
                let mut p = format!("p{i}:").into_bytes();
                p.resize(64, b'd');
                flushed_receipts.push(svc.append_path("/t", &p, AppendOpts::standard()).unwrap());
                oracle.push(p);
            }
            svc.flush().unwrap();
            // Stage: these seal several blocks into the in-memory queue
            // without touching the device.
            for p in &staged_payloads {
                svc.append_path("/t", p, AppendOpts::standard()).unwrap();
            }
            // Commit: the forced append drains the queue in one vectored
            // write, torn after k blocks.
            handles.lock().last().unwrap().tear_next_batch_after(k);
            svc.append_path("/t", b"forced-tail", AppendOpts::forced())
                .is_err()
        }; // crash
        if !torn {
            saw_full_batch = true;
        }

        let (svc, _report) =
            LogService::recover(pool.devices(), pool.clone(), cfg.clone(), clock()).unwrap();
        // Acknowledged-durable receipts survive byte-for-byte.
        for (want, r) in oracle.iter().zip(&flushed_receipts) {
            assert_eq!(
                &svc.read_entry(r.addr).expect("flushed receipt").data,
                want,
                "tear k={k}"
            );
        }
        // The scan is the oracle plus an in-order prefix of the staged
        // entries (with the forced tail last, only after all of them).
        let mut cur = svc.cursor("/t").unwrap();
        let got = cur.collect_remaining().unwrap();
        assert!(got.len() >= oracle.len(), "tear k={k} lost flushed entries");
        for (want, have) in oracle.iter().zip(&got) {
            assert_eq!(want, &have.data, "tear k={k}");
        }
        let tail: Vec<&[u8]> = got[oracle.len()..]
            .iter()
            .map(|e| e.data.as_slice())
            .collect();
        let mut expect_seq: Vec<&[u8]> = staged_payloads.iter().map(|p| p.as_slice()).collect();
        expect_seq.push(b"forced-tail");
        assert!(
            tail.len() <= expect_seq.len() && tail == expect_seq[..tail.len()],
            "tear k={k}: recovered tail is not a staged-order prefix ({} entries)",
            tail.len()
        );
        if !torn {
            assert_eq!(tail.len(), expect_seq.len(), "untorn batch lost entries");
        }
        if k == 0 {
            assert_eq!(
                got.len(),
                oracle.len(),
                "a batch torn before its first block must recover to the flush point"
            );
        }
        recovered_lens.push(got.len());

        // Idempotent: a second recovery finds the same entries and
        // nothing further to invalidate.
        drop(svc);
        let (svc2, report2) =
            LogService::recover(pool.devices(), pool.clone(), cfg, clock()).unwrap();
        assert!(
            report2.invalidated.is_empty(),
            "tear k={k}: second recovery re-invalidated: {report2:?}"
        );
        let mut cur = svc2.cursor("/t").unwrap();
        assert_eq!(cur.collect_remaining().unwrap().len(), got.len());
        // And the service keeps working.
        svc2.append_path("/t", b"post-recovery", AppendOpts::forced())
            .unwrap();
    }
    assert!(
        saw_full_batch,
        "tear sweep never exceeded the batch size; raise MAX_TEAR"
    );
    assert!(
        recovered_lens.windows(2).all(|w| w[0] <= w[1]),
        "more surviving blocks recovered fewer entries: {recovered_lens:?}"
    );
    assert!(
        recovered_lens.first() < recovered_lens.last(),
        "the sweep never recovered a longer prefix: {recovered_lens:?}"
    );
}

/// The seeded sweep: random flushed prefixes, one to five torn tail
/// writes, arbitrary payload bytes from `clio_testkit::rng`.
#[test]
fn recovery_rebuilds_exactly_the_precrash_prefix() {
    let g = triple(
        &vec_of(&pair(&u16s(1..300), &bools()), 4..40),
        &u16s(1..6),
        &any_u64(),
    );
    check(
        "recovery_rebuilds_exactly_the_precrash_prefix",
        12,
        &g,
        |(lens, torn_count, payload_seed)| {
            let mut rng = StdRng::seed_from_u64(*payload_seed);
            let (pool, handles) = faulty_pool(256, 1 << 14);
            let cfg = ServiceConfig::small();
            let mut oracle: Vec<Vec<u8>> = Vec::new();
            {
                let svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), clock())
                    .expect("create");
                svc.create_log("/t").expect("create log");
                for (i, (len, forced)) in lens.iter().enumerate() {
                    let mut p = format!("p{i}:").into_bytes();
                    let tag = p.len();
                    p.resize(tag + *len as usize, 0);
                    rng.fill(&mut p[tag..]);
                    let opts = if *forced {
                        AppendOpts::forced()
                    } else {
                        AppendOpts::standard()
                    };
                    svc.append_path("/t", &p, opts).expect("append");
                    oracle.push(p);
                }
                svc.flush().expect("flush");
                // Tear the tail: every block the crashing writes touch is
                // garbage on the media.
                for t in 0..*torn_count {
                    handles.lock().last().expect("device").corrupt_next_append();
                    let _ =
                        svc.append_path("/t", format!("torn{t}").as_bytes(), AppendOpts::forced());
                }
            } // crash

            let (svc, report) =
                LogService::recover(pool.devices(), pool.clone(), cfg.clone(), clock())
                    .expect("recover");
            assert!(
                !report.invalidated.is_empty(),
                "no blocks invalidated: {report:?}"
            );
            assert!(
                report.end_locate_us >= 1
                    && report.rebuild_us >= 1
                    && report.catalog_us >= 1
                    && report.end_locate_us + report.rebuild_us + report.catalog_us
                        <= report.total_us,
                "inconsistent phase timings: {report:?}"
            );

            // Catalog: the log resolves; entrymap + data: the durable
            // prefix reads back exactly, forward and backward. Entries
            // from the torn phase may survive only after the prefix.
            svc.resolve("/t").expect("catalog entry");
            let mut cur = svc.cursor("/t").expect("cursor");
            let got = cur.collect_remaining().expect("scan");
            assert!(
                got.len() >= oracle.len(),
                "{} < {}",
                got.len(),
                oracle.len()
            );
            for (want, have) in oracle.iter().zip(&got) {
                assert_eq!(want, &have.data);
            }
            for e in &got[oracle.len()..] {
                assert!(e.data.starts_with(b"torn"), "unexpected entry {:?}", e.data);
            }
            let mut cur = svc.cursor_from_end("/t").expect("cursor");
            let mut back = Vec::new();
            while let Some(e) = cur.prev().expect("prev") {
                back.push(e.data);
            }
            back.reverse();
            let fwd: Vec<_> = got.iter().map(|e| e.data.clone()).collect();
            assert_eq!(back, fwd, "backward scan disagrees with forward scan");

            // Recovery converged: a second recovery from the same media
            // finds nothing further to invalidate and the same entries.
            drop(svc);
            let (svc2, report2) = LogService::recover(pool.devices(), pool.clone(), cfg, clock())
                .expect("second recover");
            assert!(
                report2.invalidated.is_empty(),
                "second recovery re-invalidated: {report2:?}"
            );
            let mut cur = svc2.cursor("/t").expect("cursor");
            let again: Vec<_> = cur
                .collect_remaining()
                .expect("scan")
                .into_iter()
                .map(|e| e.data)
                .collect();
            assert_eq!(again, fwd, "recovery is not idempotent");
        },
    );
}
