//! Model-checker canaries: prove the checker still *catches* bugs.
//!
//! The four `model_*` suites assert protocols are race-free; a checker
//! that silently stopped detecting races would keep them green. These
//! tests pin the detection side: an injected unsynchronized counter must
//! be flagged with both access sites, and a failure found by the seeded
//! random walk must replay byte-identically from the printed
//! `CLIO_CHECK_REPLAY=<seed>:<index>` line.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use clio_testkit::check::{spawn, Checker, RaceCell};

/// Two threads bump a shared counter with no synchronization at all.
fn injected_race() {
    let counter = Arc::new(RaceCell::new(0u64));
    let c2 = counter.clone();
    let t = spawn(move || c2.update(|v| *v += 1));
    counter.update(|v| *v += 1);
    let _ = t.join();
}

fn failure_of(checker: Checker) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| checker.check(injected_race)))
        .expect_err("the injected race must be detected");
    *err.downcast::<String>()
        .expect("failure messages are strings")
}

#[test]
fn injected_race_is_detected_with_both_sites() {
    let msg = failure_of(Checker::new("canary"));
    assert!(msg.contains("data race on RaceCell"), "{msg}");
    // Both conflicting access sites, in this file, plus the cell's
    // creation site.
    assert!(msg.matches("model_canary.rs:").count() >= 3, "{msg}");
    assert!(msg.contains("by thread t0"), "{msg}");
    assert!(msg.contains("by thread t1"), "{msg}");
    assert!(msg.contains("no happens-before edge"), "{msg}");
}

#[test]
fn random_walk_failures_replay_byte_identically() {
    // Random walk only, so the failure carries a seed:index replay line.
    let first = failure_of(Checker::new("canary").dfs_budget(0).random_schedules(32));
    let spec = first
        .split("CLIO_CHECK_REPLAY=")
        .nth(1)
        .expect("failure carries a replay line")
        .split_whitespace()
        .next()
        .expect("replay spec is non-empty");
    let (seed, index) = spec.split_once(':').expect("spec is seed:index");
    let again = failure_of(Checker::new("canary").replay(
        seed.parse().expect("seed parses"),
        index.parse().expect("index parses"),
    ));
    assert_eq!(first, again, "replay must be byte-identical");
}
