//! Deterministic whole-system simulation of the log service.
//!
//! A seeded virtual-time scheduler (`clio_testkit::sim`) interleaves
//! several simulated clients against a *real* `LogService` stacked on the
//! fault/crash device. Every source of nondeterminism — scheduling order,
//! workload choices, crash points, torn-tail garbage — derives from one
//! `u64` seed, so any failure replays exactly:
//!
//! ```text
//! CLIO_PROP_SEED=<seed> cargo test -p clio-core --test simulation
//! ```
//!
//! Each run records a history of log-API operations (append receipts,
//! reads, cursor tailing, unique-id lookups, cross-shard batch appends,
//! crash/recover events) and `sim::check_history_with_shards` verifies it
//! against the log model with per-append-domain durability: the service
//! runs with two shards and the two top-level logs route to different
//! domains, so per-shard recovery and cross-shard batch atomicity are
//! both under test. The seed-sweep width is `CLIO_SIM_SEEDS` (default 5;
//! CI's storm pass uses 25).

use std::collections::HashMap;
use std::sync::Arc;

use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::{CrashSwitch, FaultPlan, FaultyDevice, RamTailDevice, SharedDevice};
use clio_sim::CostModel;
use clio_testkit::rng::splitmix64;
use clio_testkit::sim::{
    check_history, check_history_with_shards, Addr, EventKind, History, LogScan, Op, Outcome,
    Scheduler, SimClock, SYSTEM,
};
use clio_types::{Clock, EntryAddr, SeqNo, Timestamp, VolumeSeqId};
use clio_volume::{MemDevicePool, RecordingPool};

const CLIENTS: usize = 4;
/// Top-level logs so each is its own routing root: with `shards: 2` the
/// two consecutive ids land on *different* append domains, exercising
/// cross-shard routing, per-shard recovery, and cross-shard batches.
const LOG_PATHS: [&str; 2] = ["/alpha", "/beta"];
/// Simulated append domains (asserted to really split the logs).
const SHARDS: usize = 2;
/// Segments per run; every segment but the last ends in a crash+recovery.
const SEGMENTS: usize = 3;

/// Log index → shard map for the checker, from the service's own routing.
fn shard_map(svc: &LogService) -> std::collections::BTreeMap<u32, u32> {
    LOG_PATHS
        .iter()
        .enumerate()
        .map(|(log, path)| {
            let id = svc.resolve(path).expect("resolve log");
            (log as u32, svc.shard_of(id))
        })
        .collect()
}

/// Bridges the testkit's virtual clock to the service's semantic clock:
/// every timestamp consumes one unique virtual microsecond.
struct SimServiceClock(Arc<SimClock>);

impl Clock for SimServiceClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.0.tick())
    }
}

fn encode_payload(value: u64, len: usize) -> Vec<u8> {
    let mut p = format!("v{value:016x};").into_bytes();
    if p.len() < len {
        p.resize(len, b'.');
    }
    p
}

fn decode_value(data: &[u8]) -> Option<u64> {
    if data.len() >= 18 && data[0] == b'v' {
        std::str::from_utf8(&data[1..17])
            .ok()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
    } else {
        None
    }
}

fn conv(addr: EntryAddr) -> Addr {
    Addr {
        vol: addr.volume_index,
        block: addr.block.0,
        slot: addr.slot,
    }
}

fn err_text(e: &clio_types::ClioError) -> String {
    e.to_string()
}

/// Driver state that survives crash/recovery epochs.
struct Driver {
    history: History,
    /// Next unique payload identity.
    next_value: u64,
    /// Next unique client sequence number.
    next_seqno: u32,
    /// Next cursor id (fresh per open, including re-opens after a crash).
    next_cursor: u32,
    /// Acknowledged (addr, value) pairs available for reads.
    readable: Vec<(EntryAddr, u64)>,
    /// Seqno-carrying acknowledged appends: (log, seqno, receipt ts).
    lookups: Vec<(u32, u32, Timestamp)>,
    /// Per-client tailing state surviving crashes: (log, entries seen).
    tails: Vec<Option<(u32, usize)>>,
}

impl Driver {
    fn new() -> Driver {
        Driver {
            history: History::default(),
            next_value: 1,
            next_seqno: 1,
            next_cursor: 0,
            readable: Vec::new(),
            lookups: Vec::new(),
            tails: vec![None; CLIENTS],
        }
    }
}

/// One live (borrowing) cursor; its log and progress live in the driver's
/// per-client tail state, which survives crashes.
struct OpenCursor<'a> {
    id: u32,
    cur: clio_core::read::LogCursor<'a>,
}

/// Runs one segment of client operations against `svc`. Returns `true`
/// if the armed crash switch fired mid-segment (the segment stops there).
fn run_segment(
    svc: &LogService,
    sched: &mut Scheduler,
    cost: &CostModel,
    drv: &mut Driver,
    sw: &Arc<CrashSwitch>,
    steps: usize,
) -> bool {
    let mut cursors: HashMap<u32, OpenCursor<'_>> = HashMap::new();
    for _ in 0..steps {
        let client = sched.pick();
        let now = sched.now_us();
        // Weighted op choice: appends dominate, as in the paper's traces.
        let roll = sched.rng().gen_range(0..100u32);
        if roll < 45 {
            // ---- Append ----
            let log = sched.rng().gen_range(0..LOG_PATHS.len() as u32);
            let forced = sched.rng().gen_bool(0.3);
            let with_seqno = !forced && sched.rng().gen_bool(0.25);
            let len = sched.rng().gen_range(18..120usize);
            let value = drv.next_value;
            drv.next_value += 1;
            let (opts, seqno) = if forced {
                (AppendOpts::forced(), None)
            } else if with_seqno {
                let sq = drv.next_seqno;
                drv.next_seqno += 1;
                (AppendOpts::with_seqno(SeqNo(sq)), Some(sq))
            } else {
                (AppendOpts::standard(), None)
            };
            let payload = encode_payload(value, len);
            let op = Op::Append {
                log,
                value,
                forced,
                seqno,
            };
            let result = match svc.append_path(LOG_PATHS[log as usize], &payload, opts) {
                Ok(receipt) => {
                    drv.readable.push((receipt.addr, value));
                    if let Some(sq) = seqno {
                        drv.lookups.push((log, sq, receipt.timestamp));
                    }
                    Ok(Outcome::Receipt {
                        addr: conv(receipt.addr),
                        ts: receipt.timestamp.0,
                    })
                }
                Err(e) => Err(err_text(&e)),
            };
            drv.history
                .push(now, client, EventKind::Call { op, result });
            sched.charge(client, cost.sync_write_us(len));
        } else if roll < 55 {
            // ---- Cross-shard AppendBatch ----
            // Consecutive items alternate logs, so batches of 2+ span both
            // append domains; semantics are per-shard-atomic, which the
            // per-item receipt events model exactly.
            let n = sched.rng().gen_range(2..5usize);
            let forced = sched.rng().gen_bool(0.3);
            let first = sched.rng().gen_range(0..LOG_PATHS.len() as u32);
            let mut items = Vec::with_capacity(n);
            let mut meta = Vec::with_capacity(n);
            for k in 0..n as u32 {
                let log = (first + k) % LOG_PATHS.len() as u32;
                let len = sched.rng().gen_range(18..80usize);
                let value = drv.next_value;
                drv.next_value += 1;
                items.push((
                    LOG_PATHS[log as usize].to_owned(),
                    encode_payload(value, len),
                ));
                meta.push((log, value));
            }
            let opts = if forced {
                AppendOpts::forced()
            } else {
                AppendOpts::standard()
            };
            match svc.append_batch(&items, opts) {
                Ok(receipts) => {
                    for ((log, value), receipt) in meta.iter().zip(&receipts) {
                        drv.readable.push((receipt.addr, *value));
                        drv.history.push(
                            now,
                            client,
                            EventKind::Call {
                                op: Op::Append {
                                    log: *log,
                                    value: *value,
                                    forced,
                                    seqno: None,
                                },
                                result: Ok(Outcome::Receipt {
                                    addr: conv(receipt.addr),
                                    ts: receipt.timestamp.0,
                                }),
                            },
                        );
                    }
                }
                Err(e) => {
                    // The batch failed as a unit (a crash mid-batch): every
                    // item is indeterminate — sub-batches on earlier shards
                    // may have reached the medium before the failure.
                    let msg = err_text(&e);
                    for (log, value) in &meta {
                        drv.history.push(
                            now,
                            client,
                            EventKind::Call {
                                op: Op::Append {
                                    log: *log,
                                    value: *value,
                                    forced,
                                    seqno: None,
                                },
                                result: Err(msg.clone()),
                            },
                        );
                    }
                }
            }
            sched.charge(client, cost.sync_write_us(n * 48));
        } else if roll < 70 && !drv.readable.is_empty() {
            // ---- ReadAt ----
            let pick = sched.rng().gen_range(0..drv.readable.len());
            let (addr, _) = drv.readable[pick];
            let op = Op::ReadAt { addr: conv(addr) };
            let result = match svc.read_entry(addr) {
                Ok(entry) => match decode_value(&entry.data) {
                    Some(v) => Ok(Outcome::Value(v)),
                    None => Err("payload did not decode".to_owned()),
                },
                Err(e) => Err(err_text(&e)),
            };
            drv.history
                .push(now, client, EventKind::Call { op, result });
            sched.charge(client, cost.read_us(1, 0));
        } else if roll < 90 {
            // ---- CursorNext (tailing) ----
            if let std::collections::hash_map::Entry::Vacant(slot) = cursors.entry(client) {
                // (Re-)open this client's tail. After a crash the cursor is
                // a fresh one; fast-forwarding below re-observes what the
                // client had already seen, which is exactly how the checker
                // verifies resumption without gaps or duplicates.
                let (log, seen) = match drv.tails[client as usize] {
                    Some((log, seen)) => (log, seen),
                    None => (sched.rng().gen_range(0..LOG_PATHS.len() as u32), 0),
                };
                let id = drv.next_cursor;
                drv.next_cursor += 1;
                drv.history
                    .push(now, client, EventKind::CursorOpen { cursor: id, log });
                let cur = match svc.cursor(LOG_PATHS[log as usize]) {
                    Ok(c) => c,
                    Err(e) => {
                        // Record the failed step and leave the tail as-is.
                        drv.history.push(
                            now,
                            client,
                            EventKind::Call {
                                op: Op::CursorNext { cursor: id },
                                result: Err(err_text(&e)),
                            },
                        );
                        sched.charge(client, cost.read_us(1, 0));
                        if sw.crashed() {
                            return true;
                        }
                        continue;
                    }
                };
                let mut oc = OpenCursor { id, cur };
                drv.tails[client as usize] = Some((log, 0));
                for _ in 0..seen {
                    if !cursor_step(svc_now(sched), client, &mut oc, drv, cost, sched) {
                        break;
                    }
                }
                slot.insert(oc);
            }
            let mut oc = cursors
                .remove(&client)
                .expect("cursor just ensured present");
            cursor_step(now, client, &mut oc, drv, cost, sched);
            cursors.insert(client, oc);
        } else if !drv.lookups.is_empty() {
            // ---- FindUnique ----
            let pick = sched.rng().gen_range(0..drv.lookups.len());
            let (log, sq, approx) = drv.lookups[pick];
            let op = Op::FindUnique { log, seqno: sq };
            let result = match svc.find_by_unique_id(LOG_PATHS[log as usize], approx, SeqNo(sq)) {
                Ok(found) => match found {
                    Some(entry) => match decode_value(&entry.data) {
                        Some(v) => Ok(Outcome::Found(Some(v))),
                        None => Err("payload did not decode".to_owned()),
                    },
                    None => Ok(Outcome::Found(None)),
                },
                Err(e) => Err(err_text(&e)),
            };
            drv.history
                .push(now, client, EventKind::Call { op, result });
            sched.charge(client, cost.read_us(3, 0));
        } else {
            // Nothing sensible to do yet; think for a moment.
            sched.charge(client, 100);
        }
        if sw.crashed() {
            return true;
        }
    }
    false
}

fn svc_now(sched: &Scheduler) -> u64 {
    sched.now_us()
}

/// One cursor step: records the observation and advances the client's
/// tail counter. Returns `true` if an entry was observed.
fn cursor_step(
    now: u64,
    client: u32,
    oc: &mut OpenCursor<'_>,
    drv: &mut Driver,
    cost: &CostModel,
    sched: &mut Scheduler,
) -> bool {
    let op = Op::CursorNext { cursor: oc.id };
    let (result, observed) = match oc.cur.next() {
        Ok(Some(entry)) => match decode_value(&entry.data) {
            Some(v) => (Ok(Outcome::Next(Some(v))), true),
            None => (Err("payload did not decode".to_owned()), false),
        },
        Ok(None) => (Ok(Outcome::Next(None)), false),
        Err(e) => (Err(err_text(&e)), false),
    };
    drv.history
        .push(now, client, EventKind::Call { op, result });
    sched.charge(client, cost.read_us(1, 0));
    if observed {
        if let Some((_, seen)) = &mut drv.tails[client as usize] {
            *seen += 1;
        }
    }
    observed
}

/// Scans every log front to back, as recovery verification does.
fn scan_all(svc: &LogService) -> Vec<LogScan> {
    LOG_PATHS
        .iter()
        .enumerate()
        .map(|(log, path)| {
            let mut cur = svc.cursor(path).expect("scan cursor");
            let entries = cur.collect_remaining().expect("scan");
            LogScan {
                log: log as u32,
                values: entries
                    .iter()
                    .filter_map(|e| decode_value(&e.data))
                    .collect(),
            }
        })
        .collect()
}

/// Runs one fully seeded simulation and returns its recorded history
/// plus the log→shard map the checker needs.
fn run_sim(seed: u64) -> (History, std::collections::BTreeMap<u32, u32>) {
    let (h, _, shards) = run_sim_traced(seed);
    (h, shards)
}

/// [`run_sim`], also returning the final service's flight-recorder dump.
/// The sim clock is installed as the span time source, so span start
/// times are virtual microseconds, not host time.
fn run_sim_traced(seed: u64) -> (History, String, std::collections::BTreeMap<u32, u32>) {
    let mut s = seed;
    let sched_seed = splitmix64(&mut s);
    let fault_seed = splitmix64(&mut s);
    let plan_seed = splitmix64(&mut s);
    let ram_tail = splitmix64(&mut s) & 1 == 1;

    let clock = Arc::new(SimClock::starting_at(1_000_000));
    // Trace spans read the sim's virtual time instead of the host clock;
    // the guard restores the host source when the run ends.
    let _vclock = {
        let c = clock.clone();
        clio_obs::clock::install_virtual_us(Arc::new(move || c.now_us()))
    };
    let svc_clock: Arc<dyn Clock> = Arc::new(SimServiceClock(clock.clone()));
    let sw = CrashSwitch::new(fault_seed);
    let inner = Arc::new(MemDevicePool::new(512, 96));
    let sw_pool = sw.clone();
    let pool = Arc::new(RecordingPool::wrapping(inner, move |base| {
        // Corruption probabilities stay 0: mid-log garbage is a medium
        // defect, not a crash artifact, and would (correctly) break the
        // prefix model. Crash-point torn tails come from the switch.
        let faulty = Arc::new(FaultyDevice::with_switch(
            base,
            FaultPlan {
                seed: plan_seed,
                ..FaultPlan::default()
            },
            sw_pool.clone(),
        )) as SharedDevice;
        if ram_tail {
            Arc::new(RamTailDevice::new(faulty)) as SharedDevice
        } else {
            faulty
        }
    }));
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 128,
        shards: SHARDS,
        ..ServiceConfig::default()
    };

    let mut sched = Scheduler::new(sched_seed, CLIENTS, clock);
    let cost = CostModel::default();
    let mut drv = Driver::new();

    let mut svc = LogService::create(VolumeSeqId(6), pool.clone(), cfg.clone(), svc_clock.clone())
        .expect("create service");
    for path in LOG_PATHS {
        svc.create_log(path).expect("create log");
    }
    let shards = shard_map(&svc);
    assert_eq!(
        shards
            .values()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        SHARDS,
        "the simulated logs must span every append domain: {shards:?}"
    );

    for segment in 0..SEGMENTS {
        let last = segment == SEGMENTS - 1;
        if !last {
            // Seed a crash somewhere in this segment: after a small number
            // of device write ops, with a garbage torn tail half the time.
            let after = sched.rng().gen_range(2..30u32);
            let garbage = sched.rng().gen_bool(0.5);
            sw.arm(u64::from(after), garbage);
        }
        let steps = sched.rng().gen_range(40..90usize);
        run_segment(&svc, &mut sched, &cost, &mut drv, &sw, steps);
        if last {
            break;
        }
        // CRASH — device-fired mid-segment, or a boundary power cut here
        // (dropping the service discards all volatile state either way).
        drv.history.push(sched.now_us(), SYSTEM, EventKind::Crash);
        drop(svc);
        sw.clear();
        let (recovered, _report) =
            LogService::recover(pool.devices(), pool.clone(), cfg.clone(), svc_clock.clone())
                .expect("recover");
        svc = recovered;
        let scans = scan_all(&svc);
        drv.history
            .push(sched.now_us(), SYSTEM, EventKind::Recovered { scans });
        // Modelled restart pause before clients reconnect.
        for c in 0..CLIENTS as u32 {
            sched.charge(c, 50_000);
        }
    }

    svc.flush().expect("final flush");
    let scans = scan_all(&svc);
    drv.history
        .push(sched.now_us(), SYSTEM, EventKind::FinalScan { scans });
    let trace = svc.trace_dump();
    (drv.history, trace, shards)
}

fn replay_seed() -> Option<u64> {
    std::env::var("CLIO_PROP_SEED").ok()?.parse().ok()
}

fn storm_width() -> u64 {
    std::env::var("CLIO_SIM_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn check_seed(seed: u64) {
    let (history, shards) = run_sim(seed);
    if let Err(v) = check_history_with_shards(&history, &shards) {
        panic!(
            "simulation violated the log model: {v}\n\
             history tail:\n{}\n\
             reproduce with: CLIO_PROP_SEED={seed}",
            tail(&history.render(), 30)
        );
    }
}

fn tail(rendered: &str, lines: usize) -> String {
    let all: Vec<&str> = rendered.lines().collect();
    let start = all.len().saturating_sub(lines);
    all[start..].join("\n")
}

// ---------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------

/// Default-pass smoke: one seed end to end (honours `CLIO_PROP_SEED`).
#[test]
fn sim_smoke() {
    check_seed(replay_seed().unwrap_or(0xC110_5EED));
}

/// Seed sweep. Default width 5 keeps the debug-mode workspace pass fast;
/// CI's storm invocation sets `CLIO_SIM_SEEDS=25` in release mode.
#[test]
fn sim_storm() {
    if let Some(seed) = replay_seed() {
        check_seed(seed);
        return;
    }
    for seed in 0..storm_width() {
        check_seed(seed);
    }
}

/// The whole run — interleaving, crash points, torn tails, recovery — is
/// a pure function of the seed: two runs render byte-identically.
#[test]
fn sim_replays_byte_identically() {
    let a = run_sim(42).0.render();
    let b = run_sim(42).0.render();
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run_sim(43).0.render();
    assert_ne!(a, c, "different seeds must differ");
}

/// Span tracing rides along without perturbing the simulation: with the
/// default trace ring enabled and the sim clock installed as the span
/// time source, the history still replays byte-identically, and the
/// surviving span trees have the same shape run to run. (Span durations
/// are stripped before comparing: `note_locate`-style spans measure with
/// a host timer, so only their structure is deterministic.)
#[test]
fn sim_replays_byte_identically_with_tracing() {
    fn strip_timings(dump: &str) -> String {
        dump.lines()
            .map(|l| {
                l.split_whitespace()
                    .filter(|t| {
                        let timing = t.strip_prefix('+').unwrap_or(t);
                        !(timing.ends_with("us")
                            && timing[..timing.len() - 2]
                                .chars()
                                .all(|c| c.is_ascii_digit()))
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
    let (ha, ta, _) = run_sim_traced(0xC110_5EED);
    let (hb, tb, _) = run_sim_traced(0xC110_5EED);
    assert_eq!(
        ha.render(),
        hb.render(),
        "tracing must not perturb the interleaving"
    );
    assert!(
        !ta.starts_with("trace ring: 0 span(s)"),
        "the sim must record spans"
    );
    assert!(ta.contains("append"), "the sim must trace appends");
    assert_eq!(
        strip_timings(&ta),
        strip_timings(&tb),
        "span trees must replay structurally identically"
    );
}

/// A deliberately broken test double: the "service" loses a forced entry
/// at recovery and duplicates a cursor observation. The checker must
/// catch both, and the sabotaged history must itself replay
/// byte-identically (so a real failure would shrink and pin the same way).
#[test]
fn sim_broken_double_is_caught_and_replays() {
    let sabotage = |seed: u64| -> (String, String) {
        let (mut h, shards) = run_sim(seed);
        // Drop the last surviving entry from the first recovery scan —
        // the kind of bug recovery exists to rule out. The last recovered
        // value is durable (forced or sealed+scanned), so the checker
        // must flag the loss.
        let mut broke = false;
        for e in &mut h.events {
            if let EventKind::Recovered { scans } = &mut e.kind {
                if let Some(scan) = scans.iter_mut().find(|s| !s.values.is_empty()) {
                    scan.values.push(u64::MAX); // phantom entry
                    broke = true;
                    break;
                }
            }
        }
        assert!(broke, "seed produced no recovery scan to sabotage");
        let v = check_history_with_shards(&h, &shards).expect_err("sabotaged history must fail");
        assert!(
            v.rule == "recovery-prefix" || v.rule == "final-scan",
            "unexpected rule {}",
            v.rule
        );
        (v.to_string(), h.render())
    };
    let (v1, h1) = sabotage(7);
    let (v2, h2) = sabotage(7);
    assert_eq!(v1, v2, "violation must replay identically");
    assert_eq!(h1, h2, "sabotaged history must replay identically");
}

/// Regression (PR 1 convention): the canonical durable-loss
/// counterexample, pinned as an explicit named case. A forced append is
/// acknowledged, the server crashes, and recovery comes back empty — the
/// checker must blame `durable-loss` at the recovery event, not merely
/// notice a shorter log.
#[test]
fn regression_sim_lost_forced_append_is_durable_loss() {
    let mut h = History::default();
    h.push(
        1,
        0,
        EventKind::Call {
            op: Op::Append {
                log: 0,
                value: 1,
                forced: true,
                seqno: None,
            },
            result: Ok(Outcome::Receipt {
                addr: Addr {
                    vol: 0,
                    block: 2,
                    slot: 0,
                },
                ts: 1,
            }),
        },
    );
    h.push(2, SYSTEM, EventKind::Crash);
    h.push(
        3,
        SYSTEM,
        EventKind::Recovered {
            scans: vec![LogScan {
                log: 0,
                values: vec![],
            }],
        },
    );
    clio_testkit::prop::check_case("sim_lost_forced_append", &h, |h| {
        let v = check_history(h).expect_err("checker accepted a lost forced append");
        assert_eq!(v.rule, "durable-loss");
        assert_eq!(v.index, 2, "violation must anchor at the recovery event");
    });
}
