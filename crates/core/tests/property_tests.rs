//! Model-based property tests: the service against an in-memory oracle.
//! Runs on `clio_testkit::prop` (`CLIO_PROP_CASES` / `CLIO_PROP_SEED`).

use std::collections::BTreeMap;
use std::sync::Arc;

use clio_core::service::{AppendOpts, Durability, LogService};
use clio_core::ServiceConfig;
use clio_testkit::prop::{
    any_u32, any_u64, bools, check, just, option_of, pair, u16s, u8s, vec_of, weighted, Gen,
};
use clio_types::{ManualClock, SeqNo, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

/// One modelled operation.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Append {
        log: u8,
        len: u16,
        forced: bool,
        minimal: bool,
        seqno: Option<u32>,
    },
    Flush,
    Seal(u8),
}

fn arb_op() -> Gen<Op> {
    let append = {
        let log = u8s(0..6);
        let len = u16s(0..900);
        let flag = bools();
        let seqno = option_of(&any_u32());
        Gen::new(move |src| Op::Append {
            log: log.generate(src),
            len: len.generate(src),
            forced: flag.generate(src),
            minimal: flag.generate(src),
            seqno: seqno.generate(src),
        })
    };
    weighted(vec![
        (1, u8s(0..6).map(Op::Create)),
        (8, append),
        (1, just(Op::Flush)),
        (1, u8s(0..6).map(Op::Seal)),
    ])
}

/// The oracle: per-log entry payloads in order, plus sealed flags.
#[derive(Debug, Default)]
struct Model {
    logs: BTreeMap<u8, (bool, Vec<Vec<u8>>)>, // (sealed, entries)
}

#[test]
fn service_matches_in_memory_model() {
    let g = vec_of(&arb_op(), 1..120);
    check("service_matches_in_memory_model", 24, &g, |ops| {
        let svc = LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(256, 1 << 14)),
            ServiceConfig::small(),
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("create service");
        let mut model = Model::default();
        let mut counter = 0u32;
        for op in ops {
            match op {
                Op::Create(l) => {
                    let existed = model.logs.contains_key(l);
                    let r = svc.create_log(&format!("/log{l}"));
                    assert_eq!(r.is_err(), existed, "create mismatch for {l}");
                    if !existed {
                        model.logs.insert(*l, (false, Vec::new()));
                    }
                }
                Op::Append {
                    log,
                    len,
                    forced,
                    minimal,
                    seqno,
                } => {
                    counter += 1;
                    let mut payload = format!("{counter}:").into_bytes();
                    payload.resize((*len).max(4) as usize, b'q');
                    let opts = AppendOpts {
                        durability: if *forced {
                            Durability::Forced
                        } else {
                            Durability::Buffered
                        },
                        timestamped: !*minimal,
                        seqno: seqno.map(SeqNo),
                    };
                    let r = svc.append_path(&format!("/log{log}"), &payload, opts);
                    match model.logs.get_mut(log) {
                        Some((false, entries)) => {
                            assert!(r.is_ok(), "append failed: {:?}", r.err());
                            entries.push(payload);
                        }
                        Some((true, _)) => assert!(r.is_err(), "append to sealed log succeeded"),
                        None => assert!(r.is_err(), "append to missing log succeeded"),
                    }
                }
                Op::Flush => {
                    assert!(svc.flush().is_ok());
                }
                Op::Seal(l) => {
                    if let Some((sealed, _)) = model.logs.get_mut(l) {
                        if !*sealed {
                            let id = svc.resolve(&format!("/log{l}")).expect("exists in model");
                            assert!(svc.seal_log(id).is_ok());
                            *sealed = true;
                        }
                    }
                }
            }
        }
        // Every log reads back exactly its model contents, in order,
        // forward and backward.
        for (l, (_, entries)) in &model.logs {
            let mut cur = svc.cursor(&format!("/log{l}")).expect("cursor");
            let got = cur.collect_remaining().expect("scan");
            assert_eq!(got.len(), entries.len(), "log {l} count");
            for (want, have) in entries.iter().zip(&got) {
                assert_eq!(want, &have.data);
            }
            let mut cur = svc.cursor_from_end(&format!("/log{l}")).expect("cursor");
            let mut back = Vec::new();
            while let Some(e) = cur.prev().expect("prev") {
                back.push(e.data);
            }
            back.reverse();
            assert_eq!(&back, entries, "log {l} backward scan");
        }
    });
}

#[test]
fn crash_never_loses_forced_prefix() {
    let g = pair(&vec_of(&pair(&u16s(1..600), &bools()), 1..60), &any_u64());
    check("crash_never_loses_forced_prefix", 24, &g, |(lens, seed)| {
        // Deterministic single-log run with a crash at the end; the
        // survivors must be a prefix covering every forced append.
        use clio_volume::RecordingPool;
        let pool = Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(
            256,
            1 << 14,
        ))));
        let ck = Arc::new(ManualClock::starting_at(Timestamp::from_secs(
            seed % 1000 + 1,
        )));
        let cfg = ServiceConfig::small();
        let mut forced_prefix = 0usize;
        {
            let svc = LogService::create(VolumeSeqId(2), pool.clone(), cfg.clone(), ck.clone())
                .expect("create");
            svc.create_log("/p").expect("create log");
            for (i, (len, forced)) in lens.iter().enumerate() {
                let mut payload = format!("e{i}:").into_bytes();
                payload.resize(*len as usize + 4, b'z');
                let opts = if *forced {
                    AppendOpts::forced()
                } else {
                    AppendOpts::standard()
                };
                svc.append_path("/p", &payload, opts).expect("append");
                if *forced {
                    forced_prefix = i + 1;
                }
            }
        }
        let (svc, _) = LogService::recover(pool.devices(), pool.clone(), cfg, ck).expect("recover");
        let mut cur = svc.cursor("/p").expect("cursor");
        let got = cur.collect_remaining().expect("scan");
        assert!(
            got.len() >= forced_prefix,
            "{} < {forced_prefix}",
            got.len()
        );
        assert!(got.len() <= lens.len());
        for (i, e) in got.iter().enumerate() {
            assert!(
                e.data.starts_with(format!("e{i}:").as_bytes()),
                "entry {i} wrong"
            );
        }
    });
}
