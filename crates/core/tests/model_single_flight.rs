//! Model check: the sharded cache's single-flight miss protocol.
//!
//! Three readers miss the same key. The first to register an in-flight
//! entry becomes the loader; the others wait on the flight's condvar.
//! The loaded value is a plain [`RaceCell`] written by the loader with
//! no extra lock held — the checker proves the flight's state mutex
//! (loader sets `done` under it before `notify_all`; waiters re-check
//! under it) is the happens-before edge that lets waiters read the
//! value safely. Also asserts the single-flight property itself: no two
//! loads ever run concurrently, and every observer sees the same value.

use std::sync::Arc;

use clio_testkit::check::{schedule_target, spawn, Checker, RaceCell};
use clio_testkit::sync::{Condvar, Mutex};

struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
    value: RaceCell<u64>,
}

#[derive(Default)]
struct Loads {
    active: u32,
    total: u32,
}

struct Shard {
    cached: Mutex<Option<u64>>,
    inflight: Mutex<Option<Arc<Flight>>>,
    loads: Mutex<Loads>,
}

fn get(s: &Shard) -> u64 {
    if let Some(v) = *s.cached.lock() {
        return v;
    }
    let (flight, leader) = {
        let mut fl = s.inflight.lock();
        match &*fl {
            Some(f) => (f.clone(), false),
            None => {
                let f = Arc::new(Flight {
                    done: Mutex::new(false),
                    cv: Condvar::new(),
                    value: RaceCell::new(0),
                });
                *fl = Some(f.clone());
                (f, true)
            }
        }
    };
    if leader {
        {
            let mut l = s.loads.lock();
            l.active += 1;
            l.total += 1;
            assert_eq!(l.active, 1, "two loads in flight at once");
        }
        // The "device read": unsynchronized shared data — only the
        // flight's done-mutex orders it against the waiters below.
        flight.value.write(42);
        *s.cached.lock() = Some(42);
        s.loads.lock().active -= 1;
        *flight.done.lock() = true;
        flight.cv.notify_all();
        *s.inflight.lock() = None;
        42
    } else {
        let mut done = flight.done.lock();
        while !*done {
            done = flight.cv.wait(done);
        }
        drop(done);
        flight.value.read()
    }
}

#[test]
fn single_flight_bounds_duplicate_loads() {
    let r = Checker::new("single-flight").check(|| {
        let s = Arc::new(Shard {
            cached: Mutex::new(None),
            inflight: Mutex::new(None),
            loads: Mutex::new(Loads::default()),
        });
        let (s1, s2) = (s.clone(), s.clone());
        let t1 = spawn(move || get(&s1));
        let t2 = spawn(move || get(&s2));
        let v0 = get(&s);
        let v1 = t1.join().expect("reader 1");
        let v2 = t2.join().expect("reader 2");
        assert_eq!((v0, v1, v2), (42, 42, 42), "all observers agree");
        let l = s.loads.lock();
        // Loads never overlap (asserted above); waiters never trigger
        // their own load, so at most one load per cache-miss "wave".
        assert!(l.active == 0 && (1..=3).contains(&l.total), "{}", l.total);
        assert_eq!(*s.cached.lock(), Some(42));
    });
    println!("model single-flight: {r}");
    assert!(r.dfs_complete || r.distinct >= schedule_target(), "{r}");
}
