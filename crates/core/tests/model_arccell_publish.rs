//! Model check: `ArcCell` snapshot publication vs. concurrent readers.
//!
//! The read path never takes the append-side state mutex: writers build
//! an immutable snapshot and publish it through an [`ArcCell`]; readers
//! clone the current `Arc` and read it lock-free. The model makes the
//! snapshot payload a plain [`RaceCell`], so the checker proves the
//! happens-before chain (writer fills payload → `set` releases the
//! cell's internal lock → reader's `get` acquires it → reader reads the
//! payload) is what makes the pattern safe — filling the payload *after*
//! publication would be reported as a race. Readers also assert the
//! published sequence never moves backwards.

use std::sync::Arc;

use clio_testkit::check::{schedule_target, spawn, Checker, RaceCell};
use clio_testkit::sync::ArcCell;

struct Snap {
    seq: u64,
    payload: RaceCell<u64>,
}

fn publish(view: &ArcCell<Snap>, seq: u64) {
    let snap = Arc::new(Snap {
        seq,
        payload: RaceCell::new(0),
    });
    // Fill the payload BEFORE publishing; the ArcCell's internal mutex
    // is the only thing ordering this write against readers.
    snap.payload.write(seq * 10);
    view.set(snap);
}

fn read_twice(view: &ArcCell<Snap>) {
    let mut last = 0u64;
    for _ in 0..2 {
        let s = view.get();
        assert!(s.seq >= last, "published sequence went backwards");
        last = s.seq;
        if s.seq > 0 {
            assert_eq!(s.payload.read(), s.seq * 10, "torn snapshot");
        }
    }
}

#[test]
fn arccell_publish_is_ordered_before_readers() {
    let r = Checker::new("arccell-publish").check(|| {
        let view = Arc::new(ArcCell::new(Arc::new(Snap {
            seq: 0,
            payload: RaceCell::new(0),
        })));
        let (v1, v2, v3) = (view.clone(), view.clone(), view.clone());
        let w = spawn(move || {
            publish(&v1, 1);
            publish(&v1, 2);
        });
        let r1 = spawn(move || read_twice(&v2));
        let r2 = spawn(move || read_twice(&v3));
        w.join().expect("writer");
        r1.join().expect("reader 1");
        r2.join().expect("reader 2");
        assert_eq!(view.get().seq, 2);
    });
    println!("model arccell-publish: {r}");
    assert!(r.dfs_complete || r.distinct >= schedule_target(), "{r}");
}
