//! Service configuration.

use clio_types::{DEFAULT_BLOCK_SIZE, DEFAULT_FANOUT};

/// Tunables for a [`crate::LogService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Log device block size in bytes (the paper measured with 1 KiB).
    pub block_size: usize,
    /// Entrymap tree degree `N` (the paper recommends 16–32, §3.4).
    pub fanout: u16,
    /// Shared block cache capacity, in blocks.
    pub cache_blocks: usize,
    /// Number of LRU shards the block cache is split over (rounded up to
    /// a power of two). More shards mean less lock contention between
    /// concurrent readers; `1` restores the exact global-LRU behaviour
    /// the cache-behaviour experiments (Table 1, §4) were measured with.
    pub cache_shards: usize,
    /// Read back and parse every appended block, invalidating and
    /// re-writing it at the next block on failure (§2.3.2). Costs one
    /// device read per append; required for the fault-injection tests.
    pub verify_appends: bool,
    /// Maximum client/server clock skew (µs) tolerated when resolving a
    /// client-generated unique id (§2.1: "its correctness depends on the
    /// sequence number not wrapping around within the maximum possible
    /// time skew between the client and the server").
    pub unique_id_skew_us: u64,
    /// Capacity of the per-service op trace ring (0 disables tracing).
    pub trace_events: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            fanout: DEFAULT_FANOUT as u16,
            cache_blocks: 1024,
            cache_shards: 8,
            verify_appends: false,
            unique_id_skew_us: 5_000_000,
            trace_events: 512,
        }
    }
}

impl ServiceConfig {
    /// A small-block configuration convenient for tests.
    #[must_use]
    pub fn small() -> ServiceConfig {
        ServiceConfig {
            block_size: 256,
            fanout: 4,
            cache_blocks: 64,
            ..ServiceConfig::default()
        }
    }

    /// Enables append verification (see [`ServiceConfig::verify_appends`]).
    #[must_use]
    pub fn with_verified_appends(mut self) -> ServiceConfig {
        self.verify_appends = true;
        self
    }

    /// Sets the block-cache shard count (see
    /// [`ServiceConfig::cache_shards`]); `1` = exact global LRU.
    #[must_use]
    pub fn with_cache_shards(mut self, shards: usize) -> ServiceConfig {
        self.cache_shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ServiceConfig::default();
        assert_eq!(c.block_size, 1024);
        assert_eq!(c.fanout, 16);
        assert!(!c.verify_appends);
        assert_eq!(c.cache_shards, 8);
        assert_eq!(ServiceConfig::small().with_cache_shards(1).cache_shards, 1);
        assert!(
            ServiceConfig::small()
                .with_verified_appends()
                .verify_appends
        );
    }
}
