//! Service configuration.

use clio_types::{ClioError, Result, DEFAULT_BLOCK_SIZE, DEFAULT_FANOUT};

/// Largest supported shard count: shard indexes share the 32-bit volume
/// coordinate of an `EntryAddr` with the per-shard volume index (8 bits of
/// shard, 24 bits of volume).
pub const MAX_SHARDS: usize = 256;

/// Tunables for a [`crate::LogService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Log device block size in bytes (the paper measured with 1 KiB).
    pub block_size: usize,
    /// Entrymap tree degree `N` (the paper recommends 16–32, §3.4).
    pub fanout: u16,
    /// Shared block cache capacity, in blocks.
    pub cache_blocks: usize,
    /// Number of LRU shards the block cache is split over (rounded up to
    /// a power of two). More shards mean less lock contention between
    /// concurrent readers; `1` restores the exact global-LRU behaviour
    /// the cache-behaviour experiments (Table 1, §4) were measured with.
    pub cache_shards: usize,
    /// Read back and parse every appended block, invalidating and
    /// re-writing it at the next block on failure (§2.3.2). Costs one
    /// device read per append; required for the fault-injection tests.
    pub verify_appends: bool,
    /// Maximum client/server clock skew (µs) tolerated when resolving a
    /// client-generated unique id (§2.1: "its correctness depends on the
    /// sequence number not wrapping around within the maximum possible
    /// time skew between the client and the server").
    pub unique_id_skew_us: u64,
    /// Capacity of the per-service op trace ring (0 disables tracing).
    pub trace_events: usize,
    /// Group commit (§2.3.1 spirit, Hagmann-style): sealed blocks are
    /// queued in memory and forced appends coalesce into one vectored
    /// device write under a leader/follower protocol. Off restores the
    /// legacy one-device-write-per-forced-append path for A/B runs.
    /// `Default` honours the `CLIO_GROUP_COMMIT` environment variable
    /// (`0` = off) so test suites can A/B without code changes.
    pub group_commit: bool,
    /// Largest number of blocks one vectored commit write may carry;
    /// longer sealed queues drain in several writes.
    pub max_batch_blocks: usize,
    /// How long (µs) a commit leader dallies before writing, so forced
    /// appends arriving nearly together share its batch. `0` commits
    /// immediately (batching then comes only from genuine concurrency).
    pub commit_wait_us: u64,
    /// Independent append domains the service is partitioned into (power
    /// of two, hash-picked by top-level log file id like the block cache's
    /// shards). Each shard owns its own state lock, commit gate, read
    /// snapshot and volume sequence, so forced appends to different shards
    /// never contend; `1` restores the single-domain behaviour the paper
    /// experiments measure. The catalog log lives on shard 0.
    pub shards: usize,
    /// Bind address for the std-only HTTP observability endpoint
    /// (`/metrics`, `/metrics.json`, `/trace`, `/health`), e.g.
    /// `"127.0.0.1:0"` for an ephemeral port. `None` (the default) runs
    /// no endpoint. Only [`crate::LogServer`] honours this; a bare
    /// [`crate::LogService`] never opens sockets.
    pub http_addr: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            fanout: DEFAULT_FANOUT as u16,
            cache_blocks: 1024,
            cache_shards: 8,
            verify_appends: false,
            unique_id_skew_us: 5_000_000,
            trace_events: 512,
            group_commit: std::env::var("CLIO_GROUP_COMMIT").map_or(true, |v| v != "0"),
            max_batch_blocks: 64,
            commit_wait_us: 0,
            shards: 4,
            http_addr: None,
        }
    }
}

impl ServiceConfig {
    /// A small-block configuration convenient for tests. Single-domain
    /// (`shards: 1`): most service tests reason about one append stream
    /// and one volume sequence.
    #[must_use]
    pub fn small() -> ServiceConfig {
        ServiceConfig {
            block_size: 256,
            fanout: 4,
            cache_blocks: 64,
            shards: 1,
            ..ServiceConfig::default()
        }
    }

    /// Sets the append-domain shard count (see [`ServiceConfig::shards`]).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> ServiceConfig {
        self.shards = shards;
        self
    }

    /// Validates the configuration, returning a typed error instead of
    /// letting a bad shard count panic deep inside create/recover.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(ClioError::BadConfig("shards must be at least 1".into()));
        }
        if !self.shards.is_power_of_two() {
            return Err(ClioError::BadConfig(format!(
                "shards must be a power of two, got {}",
                self.shards
            )));
        }
        if self.shards > MAX_SHARDS {
            return Err(ClioError::BadConfig(format!(
                "shards must be at most {MAX_SHARDS}, got {}",
                self.shards
            )));
        }
        Ok(())
    }

    /// Enables append verification (see [`ServiceConfig::verify_appends`]).
    #[must_use]
    pub fn with_verified_appends(mut self) -> ServiceConfig {
        self.verify_appends = true;
        self
    }

    /// Sets the block-cache shard count (see
    /// [`ServiceConfig::cache_shards`]); `1` = exact global LRU.
    #[must_use]
    pub fn with_cache_shards(mut self, shards: usize) -> ServiceConfig {
        self.cache_shards = shards;
        self
    }

    /// Enables or disables group commit (see
    /// [`ServiceConfig::group_commit`]).
    #[must_use]
    pub fn with_group_commit(mut self, on: bool) -> ServiceConfig {
        self.group_commit = on;
        self
    }

    /// Sets the HTTP observability bind address (see
    /// [`ServiceConfig::http_addr`]).
    #[must_use]
    pub fn with_http_addr(mut self, addr: &str) -> ServiceConfig {
        self.http_addr = Some(addr.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ServiceConfig::default();
        assert_eq!(c.block_size, 1024);
        assert_eq!(c.fanout, 16);
        assert!(!c.verify_appends);
        assert_eq!(c.cache_shards, 8);
        assert_eq!(ServiceConfig::small().with_cache_shards(1).cache_shards, 1);
        assert_eq!(c.max_batch_blocks, 64);
        assert_eq!(c.commit_wait_us, 0);
        assert_eq!(c.shards, 4);
        assert_eq!(ServiceConfig::small().shards, 1);
        assert_eq!(ServiceConfig::small().with_shards(8).shards, 8);
        assert!(!ServiceConfig::small().with_group_commit(false).group_commit);
        assert!(c.http_addr.is_none());
        assert_eq!(
            ServiceConfig::small()
                .with_http_addr("127.0.0.1:0")
                .http_addr,
            Some("127.0.0.1:0".to_string())
        );
        assert!(
            ServiceConfig::small()
                .with_verified_appends()
                .verify_appends
        );
    }

    #[test]
    fn shard_count_is_validated() {
        assert!(ServiceConfig::small().validate().is_ok());
        assert!(ServiceConfig::default().validate().is_ok());
        for bad in [0usize, 3, 6, MAX_SHARDS * 2] {
            let e = ServiceConfig::small().with_shards(bad).validate();
            assert!(
                matches!(e, Err(ClioError::BadConfig(_))),
                "shards={bad} should be rejected, got {e:?}"
            );
        }
        assert!(ServiceConfig::small()
            .with_shards(MAX_SHARDS)
            .validate()
            .is_ok());
    }
}
