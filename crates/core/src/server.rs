//! The client/server boundary.
//!
//! Clio was "implemented as an extension of a conventional disk-based file
//! server" reached through the V-System's synchronous IPC; the §3.2
//! measurements decompose a synchronous log write into IPC, timestamping
//! and block-cache work. [`LogServer`] runs a [`LogService`] on its own
//! thread behind a message channel, and [`ClioClient`] issues synchronous
//! requests, counting round trips so the `clio-sim` cost model can charge
//! the paper's measured per-IPC latency.

use clio_testkit::sync::atomic::{AtomicU64, Ordering};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

use std::sync::mpsc::{channel, Sender};

use clio_obs::{Counter, ObsHttpServer, ObsProvider};
use clio_types::{ClioError, LogFileId, Result, SeqNo, Timestamp};

use crate::read::Entry;
use crate::service::{AppendOpts, Durability, LogService, Receipt};

/// A request to the log server.
#[derive(Debug, Clone)]
pub enum Request {
    /// Create a log file (and implicitly a directory entry), §2.2.
    CreateLog {
        /// Full path; ancestors must exist.
        path: String,
    },
    /// Append one entry.
    Append {
        /// Target log file path.
        path: String,
        /// Entry payload.
        data: Vec<u8>,
        /// Synchronous (forced) write — §2.3.1.
        forced: bool,
        /// Client sequence number for async unique identification (§2.1).
        seqno: Option<SeqNo>,
    },
    /// Append one entry to each of several log files in a single round
    /// trip; the reply carries every receipt. A forced batch pays one
    /// durability point for all items (one group commit, or one device
    /// write on the legacy path).
    AppendBatch {
        /// `(path, payload)` per entry, appended in order.
        items: Vec<(String, Vec<u8>)>,
        /// Synchronous (forced) write covering the whole batch — §2.3.1.
        forced: bool,
    },
    /// Read up to `max` entries at or after `from`.
    ReadFrom {
        /// Log file path (sublogs included).
        path: String,
        /// Start time.
        from: Timestamp,
        /// Entry budget.
        max: usize,
    },
    /// Read the last `max` entries (newest first).
    ReadLast {
        /// Log file path (sublogs included).
        path: String,
        /// Entry budget.
        max: usize,
    },
    /// List sublog names.
    List {
        /// Parent path.
        path: String,
    },
    /// Fetch a log file's catalog attributes.
    Stat {
        /// Log file path.
        path: String,
    },
    /// Seal a log file against further appends.
    Seal {
        /// Log file path.
        path: String,
    },
    /// Change a log file's permission bits.
    SetPerms {
        /// Log file path.
        path: String,
        /// New permission bits.
        perms: u16,
    },
    /// Force buffered entries to stable storage.
    Flush,
    /// Fetch the unified metrics exposition.
    Stats {
        /// `true` for JSON, `false` for the Prometheus-style text format.
        json: bool,
    },
    /// Stop the server thread.
    Shutdown,
}

/// A response from the log server.
#[derive(Debug, Clone)]
pub enum Response {
    /// A log file was created.
    Created(LogFileId),
    /// An entry was appended.
    Appended(Receipt),
    /// A batch was appended; one receipt per item, in order.
    Receipts(Vec<Receipt>),
    /// Entries read.
    Entries(Vec<Entry>),
    /// Sublog names.
    Names(Vec<String>),
    /// Catalog attributes.
    Attrs(clio_format::LogFileAttrs),
    /// The rendered metrics exposition.
    Stats(String),
    /// Generic success.
    Done,
    /// Failure.
    Fail(ClioError),
}

impl Response {
    /// Unwraps an append response.
    pub fn receipt(self) -> Result<Receipt> {
        match self {
            Response::Appended(r) => Ok(r),
            Response::Fail(e) => Err(e),
            other => Err(ClioError::Internal(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Unwraps a batch-append response.
    pub fn receipts(self) -> Result<Vec<Receipt>> {
        match self {
            Response::Receipts(v) => Ok(v),
            Response::Fail(e) => Err(e),
            other => Err(ClioError::Internal(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Unwraps an entries response.
    pub fn entries(self) -> Result<Vec<Entry>> {
        match self {
            Response::Entries(v) => Ok(v),
            Response::Fail(e) => Err(e),
            other => Err(ClioError::Internal(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Unwraps a stats response.
    pub fn stats(self) -> Result<String> {
        match self {
            Response::Stats(s) => Ok(s),
            Response::Fail(e) => Err(e),
            other => Err(ClioError::Internal(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}

type Envelope = (Request, Sender<Response>);

/// The server: a [`LogService`] owned by a dedicated thread, plus (when
/// [`crate::ServiceConfig::http_addr`] is set) the HTTP observability
/// endpoint serving the service's metrics and trace ring.
pub struct LogServer {
    tx: Sender<Envelope>,
    handle: Option<JoinHandle<()>>,
    ipc_round_trips: Arc<AtomicU64>,
    http: Option<ObsHttpServer>,
}

/// Serves the observability endpoint from the live service: metrics and
/// traces are snapshotted per request (all lock-free or short-lock reads),
/// and every scrape counts itself in the registry it is scraping.
struct ServiceObsProvider {
    svc: Arc<LogService>,
    scrapes: Arc<Counter>,
}

impl ObsProvider for ServiceObsProvider {
    fn metrics_text(&self) -> String {
        self.scrapes.inc();
        self.svc.metrics_text()
    }
    fn metrics_json(&self) -> String {
        self.scrapes.inc();
        self.svc.metrics_json()
    }
    fn trace_json(&self) -> String {
        self.scrapes.inc();
        self.svc.trace_json()
    }
}

impl LogServer {
    /// Spawns the server thread around `svc`. When the config carries an
    /// `http_addr`, also starts the observability endpoint; a bind failure
    /// is reported on stderr and the server runs without it (the store
    /// must not fail to serve because a diagnostics port is taken).
    #[must_use]
    pub fn spawn(svc: LogService) -> LogServer {
        let http_addr = svc.cfg.http_addr.clone();
        let svc = Arc::new(svc);
        let http = http_addr.and_then(|bind| {
            let provider = Arc::new(ServiceObsProvider {
                svc: svc.clone(),
                scrapes: svc.obs.registry().counter("clio_http_scrapes_total"),
            });
            match ObsHttpServer::start(&bind, provider) {
                Ok(server) => Some(server),
                Err(e) => {
                    eprintln!("clio: observability endpoint bind {bind} failed: {e}");
                    None
                }
            }
        });
        let (tx, rx) = channel::<Envelope>();
        let handle = std::thread::spawn(move || {
            while let Ok((req, reply)) = rx.recv() {
                let shutdown = matches!(req, Request::Shutdown);
                let resp = handle_request(&svc, req);
                let _ = reply.send(resp);
                if shutdown {
                    break;
                }
            }
        });
        LogServer {
            tx,
            handle: Some(handle),
            ipc_round_trips: Arc::new(AtomicU64::new(0)),
            http,
        }
    }

    /// The bound address of the observability endpoint, when one is
    /// running (the real port, when configured on `:0`).
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().map(ObsHttpServer::local_addr)
    }

    /// A client handle for this server.
    #[must_use]
    pub fn client(&self) -> ClioClient {
        ClioClient {
            tx: self.tx.clone(),
            ipc_round_trips: self.ipc_round_trips.clone(),
        }
    }

    /// Total synchronous round trips served (for the §3.2 cost model).
    #[must_use]
    pub fn ipc_round_trips(&self) -> u64 {
        self.ipc_round_trips.load(Ordering::Relaxed)
    }

    /// Stops the server thread.
    pub fn shutdown(mut self) {
        let _ = self.client().call(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LogServer {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let (reply_tx, _reply_rx) = channel();
            let _ = self.tx.send((Request::Shutdown, reply_tx));
            let _ = h.join();
        }
    }
}

/// A synchronous client of a [`LogServer`] (models the V-System IPC
/// boundary of §3.2).
#[derive(Clone)]
pub struct ClioClient {
    tx: Sender<Envelope>,
    ipc_round_trips: Arc<AtomicU64>,
}

impl ClioClient {
    /// Issues one synchronous request.
    pub fn call(&self, req: Request) -> Response {
        let (reply_tx, reply_rx) = channel();
        self.ipc_round_trips.fetch_add(1, Ordering::Relaxed);
        if self.tx.send((req, reply_tx)).is_err() {
            return Response::Fail(ClioError::Internal("server is gone".into()));
        }
        reply_rx
            .recv()
            .unwrap_or(Response::Fail(ClioError::Internal("server is gone".into())))
    }

    /// Convenience: synchronous (forced) append, as measured in §3.2.
    pub fn append_sync(&self, path: &str, data: &[u8]) -> Result<Receipt> {
        self.call(Request::Append {
            path: path.to_owned(),
            data: data.to_vec(),
            forced: true,
            seqno: None,
        })
        .receipt()
    }

    /// Convenience: appends to many log files in one round trip, one
    /// receipt per item.
    pub fn append_batch(
        &self,
        items: Vec<(String, Vec<u8>)>,
        forced: bool,
    ) -> Result<Vec<Receipt>> {
        self.call(Request::AppendBatch { items, forced }).receipts()
    }

    /// Convenience: the server's metrics in the Prometheus-style text
    /// format.
    pub fn stats_text(&self) -> Result<String> {
        self.call(Request::Stats { json: false }).stats()
    }

    /// Convenience: the server's metrics as JSON.
    pub fn stats_json(&self) -> Result<String> {
        self.call(Request::Stats { json: true }).stats()
    }
}

fn handle_request(svc: &LogService, req: Request) -> Response {
    match req {
        Request::CreateLog { path } => match svc.create_log(&path) {
            Ok(id) => Response::Created(id),
            Err(e) => Response::Fail(e),
        },
        Request::Append {
            path,
            data,
            forced,
            seqno,
        } => {
            let opts = AppendOpts {
                durability: if forced {
                    Durability::Forced
                } else {
                    Durability::Buffered
                },
                timestamped: true,
                seqno,
            };
            match svc.append_path(&path, &data, opts) {
                Ok(r) => Response::Appended(r),
                Err(e) => Response::Fail(e),
            }
        }
        Request::AppendBatch { items, forced } => {
            let opts = AppendOpts {
                durability: if forced {
                    Durability::Forced
                } else {
                    Durability::Buffered
                },
                timestamped: true,
                seqno: None,
            };
            match svc.append_batch(&items, opts) {
                Ok(v) => Response::Receipts(v),
                Err(e) => Response::Fail(e),
            }
        }
        Request::ReadFrom { path, from, max } => {
            let run = || -> Result<Vec<Entry>> {
                let mut cur = svc.cursor_from_time(&path, from)?;
                let mut out = Vec::new();
                while out.len() < max {
                    match cur.next()? {
                        Some(e) => out.push(e),
                        None => break,
                    }
                }
                Ok(out)
            };
            match run() {
                Ok(v) => Response::Entries(v),
                Err(e) => Response::Fail(e),
            }
        }
        Request::ReadLast { path, max } => {
            let run = || -> Result<Vec<Entry>> {
                let mut cur = svc.cursor_from_end(&path)?;
                let mut out = Vec::new();
                while out.len() < max {
                    match cur.prev()? {
                        Some(e) => out.push(e),
                        None => break,
                    }
                }
                Ok(out)
            };
            match run() {
                Ok(v) => Response::Entries(v),
                Err(e) => Response::Fail(e),
            }
        }
        Request::List { path } => match svc.list(&path) {
            Ok(v) => Response::Names(v),
            Err(e) => Response::Fail(e),
        },
        Request::Stat { path } => match svc.resolve(&path).and_then(|id| svc.attrs(id)) {
            Ok(a) => Response::Attrs(a),
            Err(e) => Response::Fail(e),
        },
        Request::Seal { path } => match svc.resolve(&path).and_then(|id| svc.seal_log(id)) {
            Ok(()) => Response::Done,
            Err(e) => Response::Fail(e),
        },
        Request::SetPerms { path, perms } => {
            match svc.resolve(&path).and_then(|id| svc.set_perms(id, perms)) {
                Ok(()) => Response::Done,
                Err(e) => Response::Fail(e),
            }
        }
        Request::Flush => match svc.flush() {
            Ok(()) => Response::Done,
            Err(e) => Response::Fail(e),
        },
        Request::Stats { json } => Response::Stats(if json {
            svc.metrics_json()
        } else {
            svc.metrics_text()
        }),
        Request::Shutdown => Response::Done,
    }
}
