//! The append path: block building, entrymap emission, fragmentation,
//! forced writes, volume switching, and corruption handling.

use std::collections::BTreeSet;

use clio_entrymap::Geometry;
use clio_format::records::BadBlockRecord;
use clio_format::{
    BlockBuilder, EntryForm, EntryHeader, EntrymapRecord, FragKind, PushOutcome, TRAILER_SIZE,
};
use clio_types::{BlockNo, ClioError, LogFileId, Result};

use crate::service::{OpenBlock, SealedBlock, Shard, State};
use crate::stats::SpaceStats;

/// Bound on seal retries after append-verification failures; repeated
/// failures indicate a dying device, not transient corruption.
const MAX_SEAL_ATTEMPTS: u32 = 8;

/// Bound on blocks a single record may spread over before we declare a
/// configuration bug (the fragmentation loop normally terminates long
/// before this).
const MAX_FRAG_BLOCKS: u32 = 100_000;

impl Shard {
    /// Opens a block if none is open.
    pub(crate) fn ensure_open(&self, st: &mut State) -> Result<()> {
        if st.open.is_none() {
            self.open_new_block(st)?;
        }
        Ok(())
    }

    fn open_new_block(&self, st: &mut State) -> Result<()> {
        let vol = self.seq.volume(st.active_index)?;
        if vol.is_full() {
            self.switch_volume(st)
        } else {
            self.open_block_at(st)
        }
    }

    /// Finishes the active volume and continues on a fresh successor
    /// (§2.1), carrying the catalog forward as a checkpoint.
    pub(crate) fn switch_volume(&self, st: &mut State) -> Result<()> {
        if st.open.is_some() {
            self.seal_open(st)?;
        }
        // The sealed queue belongs to the finishing volume; drain it onto
        // that volume's medium before the successor takes over.
        self.write_sealed_queue(st)?;
        // Preserve the finished volume's pending maps: its final groups
        // have no on-device maps (there is no block after them to carry
        // one), so searches need this in-memory state (rebuilt from the
        // device after a crash).
        let idx = st.active_index as usize;
        let pending = st.emap.pending().clone();
        // Copy-on-write: snapshots holding the old Vec are unaffected.
        let sealed = std::sync::Arc::make_mut(&mut st.sealed_pendings);
        while sealed.len() < idx {
            sealed.push(clio_entrymap::PendingMaps::new(pending.geometry()));
        }
        sealed.push(pending);
        debug_assert_eq!(st.sealed_pendings.len(), idx + 1);

        let now = self.clock.now();
        self.seq.extend(now)?;
        st.active_index += 1;
        st.emap = clio_entrymap::EntrymapWriter::new(Geometry::new(usize::from(self.cfg.fanout)));
        st.pending_snap = std::sync::Arc::new(st.emap.pending().clone());
        // Displaced maps belong to the finished volume's tree; they live on
        // in its preserved pending state, not on the new volume.
        st.carryover.clear();
        self.open_block_at(st)?;
        // Each successor volume starts with a catalog checkpoint so that
        // recovery is self-contained per volume.
        let rec = st.catalog.checkpoint();
        let header = EntryHeader::new(LogFileId::CATALOG, EntryForm::Timestamped, Some(now), None);
        self.push_record(st, header, &rec.encode(), false)?;
        Ok(())
    }

    /// Opens the next block of the active volume, writing any due entrymap
    /// records as its first entries (§2.1). Map records that cannot fit are
    /// displaced to following blocks.
    fn open_block_at(&self, st: &mut State) -> Result<()> {
        let r = self.open_block_at_inner(st);
        // Opening a boundary block *takes* completed-group notes out of the
        // pending maps (they now live as map records in the open block) and
        // propagates them one level up. Readers pair the pending snapshot
        // with a data end that already covers the open block, so the frozen
        // clone must advance in lockstep — otherwise the parent level hides
        // a completed sub-group whose notes the snapshot no longer holds,
        // and every entry in that sub-group goes unlocatable until the next
        // seal (found by the whole-system simulator).
        st.pending_snap = std::sync::Arc::new(st.emap.pending().clone());
        r
    }

    fn open_block_at_inner(&self, st: &mut State) -> Result<()> {
        debug_assert!(st.open.is_none(), "open_block_at with a block already open");
        let vol = self.seq.volume(st.active_index)?;
        loop {
            // The next fresh block sits past any queued (sealed-in-memory)
            // blocks, which the device end does not yet reflect.
            let db = st
                .sealed_queue
                .last()
                .map_or_else(|| vol.data_end(), |b| b.db + 1);
            if db >= vol.data_capacity() {
                return self.switch_volume(st);
            }
            let mut records = std::mem::take(&mut st.carryover);
            records.extend(st.emap.begin_block(db));
            let mut builder = BlockBuilder::new(self.cfg.block_size, self.clock.now());
            let mut ids = BTreeSet::new();
            let mut overflow: Vec<EntrymapRecord> = Vec::new();
            for rec in records {
                push_map_record(&mut builder, rec, &mut overflow, &mut st.stats)?;
            }
            if builder.count() > 0 {
                builder.flags_mut().has_entrymap = true;
                ids.insert(LogFileId::ENTRYMAP);
            }
            st.open = Some(OpenBlock {
                db,
                builder,
                ids,
                staged: false,
            });
            if overflow.is_empty() {
                return Ok(());
            }
            // The maps overflowed the block: seal it and continue them in
            // the next one (readers follow the `continued` flags).
            st.carryover = overflow;
            self.seal_open(st)?;
        }
    }

    /// Ensures the active volume can hold a record of `bytes` more bytes,
    /// switching to a successor volume early if it cannot — entries never
    /// fragment across volumes.
    fn ensure_volume_room(&self, st: &mut State, bytes: usize) -> Result<()> {
        let vol = self.seq.volume(st.active_index)?;
        let usable = self.cfg.block_size - TRAILER_SIZE - 4;
        let blocks_needed = (bytes / usable + 2) as u64;
        if blocks_needed > vol.data_capacity() {
            return Err(ClioError::EntryTooLarge {
                size: bytes,
                max: (vol.data_capacity() as usize).saturating_mul(usable),
            });
        }
        let current = st.open.as_ref().map_or_else(
            || {
                st.sealed_queue
                    .last()
                    .map_or_else(|| vol.data_end(), |b| b.db + 1)
            },
            |ob| ob.db,
        );
        if current + blocks_needed > vol.data_capacity() {
            self.switch_volume(st)?;
        }
        Ok(())
    }

    /// Appends one record, fragmenting it over blocks if necessary
    /// (§2.1 footnote 7). Returns (volume index, data block, slot) of the
    /// record's first fragment.
    pub(crate) fn push_record(
        &self,
        st: &mut State,
        header: EntryHeader,
        payload: &[u8],
        is_client: bool,
    ) -> Result<(u32, u64, u16)> {
        if payload.len() > u32::MAX as usize {
            return Err(ClioError::EntryTooLarge {
                size: payload.len(),
                max: u32::MAX as usize,
            });
        }
        self.ensure_open(st)?;
        self.ensure_volume_room(st, header.encoded_len() + payload.len() + 16)?;
        let vol_idx = st.active_index;

        // Fast path: the whole record fits the open block.
        {
            let ob = st
                .open
                .as_mut()
                .expect("invariant: ensure_open left an open block in state");
            if let PushOutcome::Written(slot) = ob.builder.push(&header, payload) {
                ob.ids.insert(header.id);
                account(
                    &mut st.stats,
                    &header,
                    payload.len(),
                    header.encoded_len() + 2,
                    is_client,
                );
                return Ok((vol_idx, ob.db, slot));
            }
        }

        // Fragmentation path. The chain nonce ties continuations to their
        // first fragment so a torn entry can never adopt a later entry's
        // fragments.
        let total = payload.len() as u32;
        let chain = {
            let t = header.timestamp.unwrap_or_else(|| self.clock.now()).0;
            (t as u32) ^ ((t >> 32) as u32) ^ 0x5EED_C11A
        };
        let mut first_header = header;
        first_header.frag = FragKind::First {
            total_len: total,
            chain,
        };
        let cont_header = EntryHeader {
            id: header.id,
            form: EntryForm::Minimal,
            frag: FragKind::Continuation { chain },
            timestamp: None,
            seqno: None,
        };
        let mut off = 0usize;
        let mut first: Option<(u64, u16)> = None;
        let mut first_open = false; // first fragment's block is still open
        let mut overhead = 0usize;
        let mut spins = 0u32;
        loop {
            spins += 1;
            if spins > MAX_FRAG_BLOCKS {
                return Err(ClioError::Internal(
                    "fragmentation failed to make progress".into(),
                ));
            }
            self.ensure_open(st)?;
            let mut wrote = false;
            {
                let ob = st
                    .open
                    .as_mut()
                    .expect("invariant: ensure_open left an open block in state");
                let is_first = first.is_none();
                let hdr = if is_first {
                    &first_header
                } else {
                    &cont_header
                };
                let avail = ob.builder.payload_room(hdr.encoded_len());
                let remaining = payload.len() - off;
                if avail > 0 || (avail == 0 && remaining == 0) {
                    let take = avail.min(remaining);
                    // If everything still fits whole, avoid fragmenting.
                    let use_whole = is_first && take == remaining;
                    let h = if use_whole { &header } else { hdr };
                    if let PushOutcome::Written(slot) =
                        ob.builder.push(h, &payload[off..off + take])
                    {
                        ob.ids.insert(header.id);
                        overhead += h.encoded_len() + 2;
                        if is_first {
                            first = Some((ob.db, slot));
                            first_open = true;
                        }
                        off += take;
                        wrote = true;
                    }
                }
            }
            if off == payload.len() && wrote {
                break;
            }
            // Block exhausted: seal it and continue in the next.
            let sealed_db = self.seal_open(st)?;
            if first_open {
                // The block holding the first fragment just sealed; its
                // final location is now known (it may have been displaced).
                if let Some((_, slot)) = first {
                    first = Some((sealed_db, slot));
                }
                first_open = false;
            }
        }
        account(&mut st.stats, &header, payload.len(), overhead, is_client);
        let (db, slot) =
            first.expect("invariant: a non-empty entry always writes at least one fragment");
        Ok((vol_idx, db, slot))
    }

    /// Seals the open block onto the medium, verifying and re-placing it on
    /// corruption (§2.3.2). Returns the data block it finally landed on.
    pub(crate) fn seal_open(&self, st: &mut State) -> Result<u64> {
        // Span guard declared inside the function: the state lock is already
        // held by the caller, and the trace ring is a leaf lock, so recording
        // on drop here adds only the benign state -> ring edge.
        let mut span = self.obs.span("seal");
        let r = self.seal_open_inner(st);
        if r.is_err() {
            span.fail("error");
        }
        drop(span);
        // The seal noted blocks in the entrymap writer; refresh the frozen
        // pending clone that read snapshots share.
        st.pending_snap = std::sync::Arc::new(st.emap.pending().clone());
        r
    }

    fn seal_open_inner(&self, st: &mut State) -> Result<u64> {
        if self.group_commit_on() {
            return self.seal_open_queued(st);
        }
        let mut ob = st
            .open
            .take()
            .ok_or_else(|| ClioError::Internal("seal with no open block".into()))?;
        let vol = self.seq.volume(st.active_index)?;
        let img = ob.builder.finish();
        let padding = self.cfg.block_size
            - TRAILER_SIZE
            - 2 * usize::from(ob.builder.count())
            - ob.builder.data_len();
        let mut db = ob.db;
        let mut attempts = 0u32;
        loop {
            if let Err(e) = vol.append_data_block(db, img.clone()) {
                // Keep the writer consistent on device failure: the block
                // stays open (buffered entries preserved) at its current
                // target, matching the entrymap writer's block sequence,
                // and the caller sees the error instead of a later panic.
                ob.db = db;
                st.open = Some(ob);
                return Err(e);
            }
            if self.cfg.verify_appends {
                let back = vol.read_data_block_direct(db)?;
                if back != img {
                    attempts += 1;
                    if attempts >= MAX_SEAL_ATTEMPTS {
                        ob.db = db;
                        st.open = Some(ob);
                        return Err(ClioError::Internal(
                            "append corruption persists; giving up on this device".into(),
                        ));
                    }
                    // The block was "written with garbage": invalidate it,
                    // note it for the bad-block log, and re-place the same
                    // image at the next block. Any entrymap records due at
                    // that next block are displaced forward (§2.3.2).
                    vol.invalidate_data_block(db)?;
                    st.pending_badblocks.push(db);
                    st.emap.note_block(db, std::iter::empty());
                    let recs = st.emap.begin_block(db + 1);
                    st.carryover.extend(recs);
                    db += 1;
                    if db >= vol.data_capacity() {
                        ob.db = db;
                        st.open = Some(ob);
                        return Err(ClioError::VolumeFull);
                    }
                    continue;
                }
            }
            break;
        }
        st.emap.note_block(db, ob.ids.iter().copied());
        st.stats.note_sealed_block(padding, TRAILER_SIZE);
        Ok(db)
    }

    /// Group-commit seal: finishes the open block into the in-memory
    /// sealed queue without touching the device. The entrymap and space
    /// accounting advance exactly as for a device seal; the next commit's
    /// batched write (or a flush/volume switch) lands it on the medium.
    /// The block's address is final — group commit never runs with append
    /// verification, so there is no re-placement.
    fn seal_open_queued(&self, st: &mut State) -> Result<u64> {
        let ob = st
            .open
            .take()
            .ok_or_else(|| ClioError::Internal("seal with no open block".into()))?;
        let img = ob.builder.finish();
        let padding = self.cfg.block_size
            - TRAILER_SIZE
            - 2 * usize::from(ob.builder.count())
            - ob.builder.data_len();
        let db = ob.db;
        st.sealed_queue.push(SealedBlock {
            db,
            image: std::sync::Arc::new(img),
        });
        st.emap.note_block(db, ob.ids.iter().copied());
        st.stats.note_sealed_block(padding, TRAILER_SIZE);
        Ok(db)
    }

    /// Drains the sealed queue onto the active volume in vectored writes of
    /// at most `max_batch_blocks` blocks each. Returns `(device_writes,
    /// blocks_written)`. On a device error the unwritten suffix (as
    /// resynchronised from the device end) is re-queued, so a later commit
    /// or flush retries it.
    pub(crate) fn write_sealed_queue(&self, st: &mut State) -> Result<(u64, u64)> {
        if st.sealed_queue.is_empty() {
            return Ok((0, 0));
        }
        let vol = self.seq.volume(st.active_index)?;
        let queue = std::mem::take(&mut st.sealed_queue);
        let total = queue.len() as u64;
        let chunk_blocks = self.cfg.max_batch_blocks.max(1);
        let mut writes = 0u64;
        let mut written = 0usize;
        for chunk in queue.chunks(chunk_blocks) {
            let first_db = chunk[0].db;
            let images: Vec<std::sync::Arc<Vec<u8>>> =
                chunk.iter().map(|b| b.image.clone()).collect();
            if let Err(e) = vol.append_data_blocks(first_db, &images) {
                // Torn batch: the volume resynchronised its end to what
                // actually landed. (On a tail-staging device the end can
                // overshoot by the staged block; in-tree pools never stack
                // a tail over a tearing device.)
                let landed = vol
                    .data_end()
                    .saturating_sub(first_db)
                    .min(chunk.len() as u64) as usize;
                st.sealed_queue = queue[written + landed..].to_vec();
                return Err(e);
            }
            writes += 1;
            written += chunk.len();
        }
        Ok((writes, total))
    }

    /// The commit stage of the group-commit pipeline (state lock held):
    /// stages the current partial block (NV tail rewrite where supported,
    /// early seal otherwise), drains the sealed queue in batched writes,
    /// and records the batch metrics. On error the covered forced count is
    /// restored so a retrying leader accounts for the same appends.
    pub(crate) fn commit_locked(&self, st: &mut State) -> Result<()> {
        let covered = std::mem::take(&mut st.staged_forced);
        let vol = self.seq.volume(st.active_index)?;
        let mut tail_stage = None;
        if let Some(ob) = st.open.as_mut() {
            if vol.supports_tail_rewrite() {
                tail_stage = Some((ob.db, ob.builder.finish()));
            } else if !ob.builder.is_empty() {
                ob.builder.flags_mut().sealed_early = true;
                self.seal_open(st)?;
            }
        }
        // Queue first, tail second: the tail rewrite targets the block
        // right after the queued ones, and the device only accepts a tail
        // at its write-once end.
        let (writes, blocks) = match self.write_sealed_queue(st) {
            Ok(x) => x,
            Err(e) => {
                st.staged_forced += covered;
                return Err(e);
            }
        };
        let mut tail_writes = 0u64;
        if let Some((db, img)) = tail_stage {
            if let Err(e) = vol.rewrite_tail_data(db, img) {
                st.staged_forced += covered;
                return Err(e);
            }
            if let Some(ob) = st.open.as_mut() {
                ob.staged = true;
            }
            tail_writes = 1;
        }
        if writes + tail_writes > 0 || covered > 0 {
            self.obs
                .note_group_commit(blocks, covered, writes + tail_writes);
            self.pshard.commits.inc();
            self.pshard.commit_batch_blocks.record(blocks);
        }
        Ok(())
    }

    /// Forces everything buffered to stable storage through whichever
    /// pipeline is active: a full commit in group mode, `persist_open` on
    /// the legacy path (where the sealed queue is always empty).
    pub(crate) fn persist_all(&self, st: &mut State) -> Result<()> {
        if self.group_commit_on() {
            self.commit_locked(st)
        } else {
            self.persist_open(st).map(|_| ())
        }
    }

    /// Makes the open block durable: staged to the device's battery-backed
    /// RAM tail when available, otherwise sealed early with internal
    /// fragmentation (§2.3.1). Returns the open/sealed block, or `None` if
    /// nothing was open.
    pub(crate) fn persist_open(&self, st: &mut State) -> Result<Option<u64>> {
        let Some(ob) = st.open.as_mut() else {
            return Ok(None);
        };
        let vol = self.seq.volume(st.active_index)?;
        if vol.supports_tail_rewrite() {
            let img = ob.builder.finish();
            vol.rewrite_tail_data(ob.db, img)?;
            ob.staged = true;
            return Ok(Some(ob.db));
        }
        if ob.builder.is_empty() {
            // Nothing buffered — sealing an empty block would only waste
            // write-once space.
            return Ok(Some(ob.db));
        }
        ob.builder.flags_mut().sealed_early = true;
        Ok(Some(self.seal_open(st)?))
    }

    /// Logs queued bad-block records (§2.3.2: the corrupted block's
    /// "location is recorded in a special log file").
    pub(crate) fn drain_badblocks(&self, st: &mut State) -> Result<()> {
        let mut guard = 0u32;
        while let Some(db) = st.pending_badblocks.pop() {
            guard += 1;
            if guard > 100_000 {
                return Err(ClioError::Internal("bad-block logging diverges".into()));
            }
            let rec = BadBlockRecord { block: BlockNo(db) };
            let header = EntryHeader::new(LogFileId::BAD_BLOCK, EntryForm::Minimal, None, None);
            self.push_record(st, header, &rec.encode(), false)?;
        }
        Ok(())
    }
}

/// Updates accounting for one record.
fn account(
    stats: &mut SpaceStats,
    header: &EntryHeader,
    payload: usize,
    overhead: usize,
    is_client: bool,
) {
    if is_client {
        stats.note_client_entry(header.id, payload, overhead);
    } else {
        stats.note_service_entry(header.id, payload + overhead);
    }
}

/// Writes one entrymap record into `builder`, splitting its per-file maps
/// into as many chunk records as fit; what cannot fit is pushed to
/// `overflow` with the preceding chunk marked `continued`.
fn push_map_record(
    builder: &mut BlockBuilder,
    rec: EntrymapRecord,
    overflow: &mut Vec<EntrymapRecord>,
    stats: &mut SpaceStats,
) -> Result<()> {
    let per = EntrymapRecord::per_map_len(rec.bits);
    let base = EntrymapRecord::HEADER_LEN;
    let header = EntryHeader::new(LogFileId::ENTRYMAP, EntryForm::Minimal, None, None);
    let room = builder.payload_room(header.encoded_len());
    let min_needed = base + if rec.maps.is_empty() { 0 } else { per };
    if room < min_needed {
        overflow.push(rec);
        return Ok(());
    }
    let fit = if rec.maps.is_empty() {
        0
    } else {
        ((room - base) / per).min(rec.maps.len())
    };
    let mut chunk = rec;
    let rest = chunk.maps.split_off(fit);
    chunk.continued = !rest.is_empty();
    let payload = chunk.encode();
    match builder.push(&header, &payload) {
        PushOutcome::Written(_) => {
            stats.note_service_entry(LogFileId::ENTRYMAP, payload.len() + 4);
        }
        PushOutcome::NoSpace { .. } => {
            return Err(ClioError::Internal(
                "entrymap chunk sizing disagrees with block builder".into(),
            ));
        }
    }
    if !rest.is_empty() {
        let mut remainder = chunk;
        remainder.maps = rest;
        remainder.continued = false;
        overflow.push(remainder);
    }
    Ok(())
}
