//! Space-overhead accounting (§3.5).
//!
//! The paper analyzes per-entry space overhead as the sum of (1) the average
//! entry header size `h` and (2) the per-entry share `o_e` of entrymap log
//! entries, with `o_e ≤ (h + a(N/8 + c)) / (N − 1)` — usually far below the
//! header cost. The service counts every byte it writes so the §3.5 harness
//! can report measured values of all these quantities.

use std::collections::BTreeMap;

use clio_types::LogFileId;

/// Per-log-file byte accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileStats {
    /// Entries appended.
    pub entries: u64,
    /// Client payload bytes.
    pub client_bytes: u64,
    /// In-data header bytes plus index slots.
    pub overhead_bytes: u64,
}

/// Running space accounting for a service instance (session-scoped; it is
/// not persisted and restarts from zero after recovery).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Per-file counters for client log files.
    pub per_file: BTreeMap<LogFileId, FileStats>,
    /// Total client entries appended.
    pub entries: u64,
    /// Total client payload bytes.
    pub client_bytes: u64,
    /// Total header + index-slot bytes for client entries.
    pub header_bytes: u64,
    /// Entrymap log entries written.
    pub entrymap_entries: u64,
    /// Bytes of entrymap records (payload + header + index slots).
    pub entrymap_bytes: u64,
    /// Bytes of catalog records.
    pub catalog_bytes: u64,
    /// Bytes of bad-block records.
    pub badblock_bytes: u64,
    /// Data blocks sealed onto the medium.
    pub blocks_sealed: u64,
    /// Bytes left unused in sealed blocks (internal fragmentation; grows
    /// with forced writes on pure WORM devices, §2.3.1).
    pub padding_bytes: u64,
    /// Fixed per-block trailer bytes.
    pub trailer_bytes: u64,
}

impl SpaceStats {
    pub(crate) fn note_client_entry(&mut self, id: LogFileId, payload: usize, overhead: usize) {
        let f = self.per_file.entry(id).or_default();
        f.entries += 1;
        f.client_bytes += payload as u64;
        f.overhead_bytes += overhead as u64;
        self.entries += 1;
        self.client_bytes += payload as u64;
        self.header_bytes += overhead as u64;
    }

    pub(crate) fn note_service_entry(&mut self, id: LogFileId, total_bytes: usize) {
        match id {
            LogFileId::ENTRYMAP => {
                self.entrymap_entries += 1;
                self.entrymap_bytes += total_bytes as u64;
            }
            LogFileId::CATALOG => self.catalog_bytes += total_bytes as u64,
            LogFileId::BAD_BLOCK => self.badblock_bytes += total_bytes as u64,
            _ => {}
        }
    }

    pub(crate) fn note_sealed_block(&mut self, padding: usize, trailer: usize) {
        self.blocks_sealed += 1;
        self.padding_bytes += padding as u64;
        self.trailer_bytes += trailer as u64;
    }

    /// Folds another accounting into this one — how the sharded service
    /// derives whole-service totals from its per-shard accountants.
    pub fn merge(&mut self, other: &SpaceStats) {
        for (id, f) in &other.per_file {
            let e = self.per_file.entry(*id).or_default();
            e.entries += f.entries;
            e.client_bytes += f.client_bytes;
            e.overhead_bytes += f.overhead_bytes;
        }
        self.entries += other.entries;
        self.client_bytes += other.client_bytes;
        self.header_bytes += other.header_bytes;
        self.entrymap_entries += other.entrymap_entries;
        self.entrymap_bytes += other.entrymap_bytes;
        self.catalog_bytes += other.catalog_bytes;
        self.badblock_bytes += other.badblock_bytes;
        self.blocks_sealed += other.blocks_sealed;
        self.padding_bytes += other.padding_bytes;
        self.trailer_bytes += other.trailer_bytes;
    }

    /// Derives the §3.5 report.
    #[must_use]
    pub fn report(&self) -> SpaceReport {
        let entries = self.entries.max(1) as f64;
        SpaceReport {
            entries: self.entries,
            client_bytes: self.client_bytes,
            avg_entry_size: self.client_bytes as f64 / entries,
            avg_header_overhead: self.header_bytes as f64 / entries,
            avg_entrymap_overhead: self.entrymap_bytes as f64 / entries,
            entrymap_entries: self.entrymap_entries,
            blocks_sealed: self.blocks_sealed,
            padding_bytes: self.padding_bytes,
            device_bytes: self.client_bytes
                + self.header_bytes
                + self.entrymap_bytes
                + self.catalog_bytes
                + self.badblock_bytes
                + self.padding_bytes
                + self.trailer_bytes,
        }
    }
}

/// The measured quantities §3.5 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceReport {
    /// Client entries written.
    pub entries: u64,
    /// Client payload bytes written.
    pub client_bytes: u64,
    /// Average client entry size `d`.
    pub avg_entry_size: f64,
    /// Average per-entry header + index overhead `h + 2`.
    pub avg_header_overhead: f64,
    /// Average per-entry entrymap overhead `o_e`.
    pub avg_entrymap_overhead: f64,
    /// Entrymap entries written.
    pub entrymap_entries: u64,
    /// Blocks sealed.
    pub blocks_sealed: u64,
    /// Internal fragmentation bytes.
    pub padding_bytes: u64,
    /// Total bytes consumed on the device (excluding volume labels).
    pub device_bytes: u64,
}

impl SpaceReport {
    /// Header overhead as a percentage of total entry bytes — the paper's
    /// `400/(d+4)` percent for a `d`-byte entry with the minimal header,
    /// "less than 10% for entries with more than 36 bytes of client data"
    /// (§2.2).
    #[must_use]
    pub fn header_overhead_pct(&self) -> f64 {
        let header = self.avg_header_overhead * self.entries as f64;
        let total = self.client_bytes as f64 + header;
        if total == 0.0 {
            return 0.0;
        }
        100.0 * header / total
    }
}

impl std::fmt::Display for SpaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entries={} client_bytes={} device_bytes={} blocks_sealed={} \
             padding_bytes={} avg_entry={:.1}B header_overhead={:.1}% \
             entrymap_overhead={:.1}B/entry",
            self.entries,
            self.client_bytes,
            self.device_bytes,
            self.blocks_sealed,
            self.padding_bytes,
            self.avg_entry_size,
            self.header_overhead_pct(),
            self.avg_entrymap_overhead
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let mut s = SpaceStats::default();
        s.note_client_entry(LogFileId(8), 50, 4);
        let line = format!("{}", s.report());
        assert!(line.contains("entries=1"));
        assert!(line.contains("client_bytes=50"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn accounting_sums() {
        let mut s = SpaceStats::default();
        s.note_client_entry(LogFileId(8), 50, 4);
        s.note_client_entry(LogFileId(8), 30, 12);
        s.note_client_entry(LogFileId(9), 20, 4);
        assert_eq!(s.entries, 3);
        assert_eq!(s.client_bytes, 100);
        assert_eq!(s.header_bytes, 20);
        assert_eq!(s.per_file[&LogFileId(8)].entries, 2);
        s.note_service_entry(LogFileId::ENTRYMAP, 40);
        s.note_service_entry(LogFileId::CATALOG, 25);
        s.note_sealed_block(100, 18);
        let r = s.report();
        assert_eq!(r.entries, 3);
        assert!((r.avg_entry_size - 100.0 / 3.0).abs() < 1e-9);
        assert!((r.avg_entrymap_overhead - 40.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.device_bytes, 100 + 20 + 40 + 25 + 100 + 18);
        assert!((r.header_overhead_pct() - 100.0 * 20.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn paper_header_overhead_example() {
        // §2.2: 4-byte overhead on 36 bytes of data is under 10%.
        let mut s = SpaceStats::default();
        for _ in 0..100 {
            s.note_client_entry(LogFileId(8), 37, 4);
        }
        assert!(s.report().header_overhead_pct() < 10.0 + 1e-9);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = SpaceStats::default();
        a.note_client_entry(LogFileId(8), 50, 4);
        a.note_service_entry(LogFileId::ENTRYMAP, 40);
        a.note_sealed_block(10, 18);
        let mut b = SpaceStats::default();
        b.note_client_entry(LogFileId(8), 30, 4);
        b.note_client_entry(LogFileId(9), 20, 4);
        b.note_service_entry(LogFileId::CATALOG, 25);
        b.note_sealed_block(5, 18);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.entries, 3);
        assert_eq!(m.client_bytes, 100);
        assert_eq!(m.header_bytes, 12);
        assert_eq!(m.per_file[&LogFileId(8)].entries, 2);
        assert_eq!(m.per_file[&LogFileId(9)].entries, 1);
        assert_eq!(m.blocks_sealed, 2);
        assert_eq!(
            m.report().device_bytes,
            a.report().device_bytes + b.report().device_bytes
        );
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SpaceStats::default().report();
        assert_eq!(r.entries, 0);
        assert_eq!(r.header_overhead_pct(), 0.0);
    }
}
