//! Service-level observability: the unified registry, op tracing, and the
//! instrumented device plumbing.
//!
//! Every [`crate::LogService`] owns a [`ServiceObs`]: one
//! [`MetricsRegistry`] into which the device layer, the block cache, the
//! space accountant and the service's own op histograms all register, plus
//! a [`TraceRing`] recording one event per logical operation. The service
//! exposes the whole thing via [`crate::LogService::metrics_text`] /
//! [`crate::LogService::metrics_json`] / [`crate::LogService::trace_dump`],
//! and over the client/server channel via the `Stats` request.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clio_device::{DeviceStats, InstrumentedDevice, SharedDevice};
use clio_entrymap::LocateStats;
use clio_obs::{Counter, Histogram, MetricsRegistry, SpanGuard, TraceRing};
use clio_testkit::sync::Mutex;
use clio_types::{LogFileId, Result};
use clio_volume::DevicePool;

use crate::recovery::RecoveryReport;
use crate::stats::SpaceReport;

/// Per-log-file metric series (labeled `{log="<id>"}` in the registry):
/// groundwork for sharding, where per-log traffic shapes placement.
struct PerLog {
    appends: Arc<Counter>,
    reads: Arc<Counter>,
    append_ns: Arc<Histogram>,
    read_ns: Arc<Histogram>,
}

/// Per-shard metric series (labeled `{shard="<i>"}`): one set per append
/// domain, cached in the owning shard so the hot path never takes the
/// lazy-creation map lock.
pub(crate) struct PerShard {
    /// Successful appends routed to this shard.
    pub appends: Arc<Counter>,
    /// Commit batches this shard's gate wrote.
    pub commits: Arc<Counter>,
    /// Times a forced appender on this shard became the commit leader.
    pub leader_elections: Arc<Counter>,
    /// Blocks written per commit batch on this shard.
    pub commit_batch_blocks: Arc<Histogram>,
}

/// The observability state of one service instance.
pub struct ServiceObs {
    registry: Arc<MetricsRegistry>,
    trace: Arc<TraceRing>,
    /// Per-log-file series, created lazily at first touch of each log id.
    per_log: Mutex<BTreeMap<u16, Arc<PerLog>>>,
    /// Per-shard series, created lazily at shard construction.
    per_shard: Mutex<BTreeMap<u32, Arc<PerShard>>>,
    /// Counters shared by every device the service touches (the volume
    /// sequence wraps each pool device in an [`InstrumentedDevice`]).
    pub device_stats: Arc<DeviceStats>,
    /// Wall-clock latency of `append` calls, ns.
    pub append_latency: Arc<Histogram>,
    /// Wall-clock latency of `read_entry` calls, ns.
    pub read_latency: Arc<Histogram>,
    /// Wall-clock latency of entrymap locate searches, ns.
    pub locate_latency: Arc<Histogram>,
    /// Blocks read per locate search.
    pub locate_blocks: Arc<Histogram>,
    /// Tree-descent depth (highest level climbed) per locate search.
    pub locate_depth: Arc<Histogram>,
    appends: Arc<Counter>,
    append_errors: Arc<Counter>,
    reads: Arc<Counter>,
    read_errors: Arc<Counter>,
    locates: Arc<Counter>,
    creates: Arc<Counter>,
    view_publishes: Arc<Counter>,
    group_commit_batches: Arc<Counter>,
    forced_writes_saved: Arc<Counter>,
    /// Blocks written per group-commit batch (log2 buckets).
    pub group_commit_batch_blocks: Arc<Histogram>,
}

impl ServiceObs {
    /// Builds the registry, registers the shared device counters, and sizes
    /// the trace ring to `trace_events`.
    #[must_use]
    pub fn new(trace_events: usize) -> Arc<ServiceObs> {
        let registry = Arc::new(MetricsRegistry::new());
        let device_stats = DeviceStats::new();
        device_stats.register_into(&registry);
        let trace = Arc::new(TraceRing::new(trace_events));
        if trace.capacity() > 0 {
            device_stats.attach_trace(trace.clone());
        }
        Arc::new(ServiceObs {
            trace,
            per_log: Mutex::new(BTreeMap::new()),
            per_shard: Mutex::new(BTreeMap::new()),
            device_stats,
            append_latency: registry.histogram("clio_core_append_latency_ns"),
            read_latency: registry.histogram("clio_core_read_latency_ns"),
            locate_latency: registry.histogram("clio_core_locate_latency_ns"),
            locate_blocks: registry.histogram("clio_core_locate_blocks"),
            locate_depth: registry.histogram("clio_core_locate_depth"),
            appends: registry.counter("clio_core_appends_total"),
            append_errors: registry.counter("clio_core_append_errors_total"),
            reads: registry.counter("clio_core_reads_total"),
            read_errors: registry.counter("clio_core_read_errors_total"),
            locates: registry.counter("clio_core_locates_total"),
            creates: registry.counter("clio_core_creates_total"),
            view_publishes: registry.counter("clio_core_view_publishes_total"),
            group_commit_batches: registry.counter("clio_core_group_commit_batches_total"),
            forced_writes_saved: registry.counter("clio_core_forced_writes_saved_total"),
            group_commit_batch_blocks: registry.histogram("clio_core_group_commit_batch_blocks"),
            registry,
        })
    }

    /// The unified registry.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The op trace ring (shared with the device layer and block cache).
    #[must_use]
    pub fn trace(&self) -> &Arc<TraceRing> {
        &self.trace
    }

    /// Opens a causal span in the service's trace ring. The span becomes a
    /// child of whatever span is already open on the calling thread, and
    /// records itself when dropped.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.trace.span(name)
    }

    /// The per-log metric series for `id`, created on first touch. The
    /// series mutex is a leaf: held only for the map lookup, never across
    /// I/O or other locks.
    fn per_log(&self, id: LogFileId) -> Arc<PerLog> {
        let mut map = self.per_log.lock();
        map.entry(id.0)
            .or_insert_with(|| {
                let label = id.0.to_string();
                let labels: &[(&str, &str)] = &[("log", &label)];
                Arc::new(PerLog {
                    appends: self.registry.counter_with("clio_log_appends_total", labels),
                    reads: self.registry.counter_with("clio_log_reads_total", labels),
                    append_ns: self
                        .registry
                        .histogram_with("clio_log_append_latency_ns", labels),
                    read_ns: self
                        .registry
                        .histogram_with("clio_log_read_latency_ns", labels),
                })
            })
            .clone()
    }

    /// The per-shard metric series for append domain `idx`, created on
    /// first touch. Shards fetch this once at construction and cache the
    /// `Arc`, so the map mutex stays off the append path.
    pub(crate) fn per_shard(&self, idx: u32) -> Arc<PerShard> {
        let mut map = self.per_shard.lock();
        map.entry(idx)
            .or_insert_with(|| {
                let label = idx.to_string();
                let labels: &[(&str, &str)] = &[("shard", &label)];
                Arc::new(PerShard {
                    appends: self
                        .registry
                        .counter_with("clio_shard_appends_total", labels),
                    commits: self
                        .registry
                        .counter_with("clio_shard_commits_total", labels),
                    leader_elections: self
                        .registry
                        .counter_with("clio_shard_leader_elections_total", labels),
                    commit_batch_blocks: self
                        .registry
                        .histogram_with("clio_shard_commit_batch_blocks", labels),
                })
            })
            .clone()
    }

    /// Records an `append`'s latency and counters (service-wide and
    /// per-log). The trace side is the caller's root `append` span — see
    /// [`crate::LogService::append`] — so phases nest under one tree
    /// instead of landing as a second flat event.
    pub fn note_append(&self, id: LogFileId, dur: Duration, ok: bool) {
        if ok {
            self.appends.inc();
            self.append_latency.record_duration(dur);
            let per_log = self.per_log(id);
            per_log.appends.inc();
            per_log.append_ns.record_duration(dur);
        } else {
            self.append_errors.inc();
        }
    }

    /// Records a `read_entry`'s latency and counters; the trace side is
    /// the caller's root `read` span.
    pub fn note_read(&self, target: Option<LogFileId>, dur: Duration, ok: bool) {
        if ok {
            self.reads.inc();
            self.read_latency.record_duration(dur);
            if let Some(id) = target {
                let per_log = self.per_log(id);
                per_log.reads.inc();
                per_log.read_ns.record_duration(dur);
            }
        } else {
            self.read_errors.inc();
        }
    }

    /// Records one entrymap locate search from its [`LocateStats`].
    pub fn note_locate(&self, target: Option<LogFileId>, stats: &LocateStats, dur: Duration) {
        self.locates.inc();
        self.locate_latency.record_duration(dur);
        self.locate_blocks.record(stats.blocks_read);
        self.locate_depth.record(stats.max_level);
        self.trace.record(
            "locate",
            target.map(|id| u64::from(id.0)),
            stats.blocks_read,
            dur,
            "ok",
        );
    }

    /// Records a `create_log` span.
    pub fn note_create(&self, id: Option<LogFileId>, dur: Duration, ok: bool) {
        if ok {
            self.creates.inc();
        }
        self.trace.record(
            "create_log",
            id.map(|i| u64::from(i.0)),
            0,
            dur,
            if ok { "ok" } else { "error" },
        );
    }

    /// Counts one republication of the immutable read snapshot (every
    /// mutating op republishes, so this tracks snapshot churn).
    pub fn note_view_publish(&self) {
        self.view_publishes.inc();
    }

    /// Records one group-commit batch: how many blocks it wrote, how many
    /// staged forced appends it covered, and how many physical device
    /// writes it took. "Writes saved" is the forced appends covered beyond
    /// the device writes the batch actually issued (a lone forced append
    /// commits with one write, saving nothing — exactly the legacy cost).
    pub fn note_group_commit(&self, blocks: u64, forced_covered: u64, device_writes: u64) {
        self.group_commit_batches.inc();
        self.group_commit_batch_blocks.record(blocks);
        let saved = forced_covered.saturating_sub(device_writes.max(1));
        if saved > 0 {
            self.forced_writes_saved.add(saved);
        }
    }

    /// Registers the shared block cache's counters and, when tracing is
    /// enabled, hooks the cache's single-flight loads into the trace ring.
    pub fn attach_cache(&self, cache: &Arc<clio_cache::BlockCache>) {
        cache.register_into(&self.registry);
        if self.trace.capacity() > 0 {
            cache.attach_trace(self.trace.clone());
        }
    }

    /// Publishes the space-overhead report as gauges (called at exposition
    /// time — `SpaceStats` lives inside the service's state lock, so it is
    /// sampled rather than registered).
    pub fn publish_space(&self, r: &SpaceReport) {
        let set = |name: &str, v: u64| {
            self.registry
                .gauge(name)
                .set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        set("clio_space_entries", r.entries);
        set("clio_space_client_bytes", r.client_bytes);
        set("clio_space_device_bytes", r.device_bytes);
        set("clio_space_blocks_sealed", r.blocks_sealed);
        set("clio_space_padding_bytes", r.padding_bytes);
        set("clio_space_entrymap_entries", r.entrymap_entries);
    }

    /// Publishes the per-phase recovery timings and totals as gauges, and
    /// traces one `recover` event.
    pub fn publish_recovery(&self, r: &RecoveryReport) {
        let set = |name: &str, v: u64| {
            self.registry
                .gauge(name)
                .set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        set("clio_recovery_volumes", u64::from(r.volumes));
        set("clio_recovery_end_probes_total", r.end_probes);
        set("clio_recovery_rebuild_blocks_read", r.rebuild_blocks_read);
        set("clio_recovery_catalog_records", r.catalog_records);
        set("clio_recovery_end_locate_us", r.end_locate_us);
        set("clio_recovery_rebuild_us", r.rebuild_us);
        set("clio_recovery_catalog_us", r.catalog_us);
        set("clio_recovery_total_us", r.total_us);
    }

    /// Wraps a device so its ops land in this service's shared counters.
    #[must_use]
    pub fn instrument_device(&self, dev: SharedDevice) -> SharedDevice {
        Arc::new(InstrumentedDevice::new(dev, self.device_stats.clone()))
    }

    /// A timer for one traced span.
    #[must_use]
    pub fn start_span(&self) -> Instant {
        clio_obs::clock::now()
    }
}

/// A [`DevicePool`] decorator wrapping every handed-out device in an
/// [`InstrumentedDevice`] that shares the service's [`DeviceStats`]. It
/// sits *outside* any recording pool the caller supplied, so crash/recover
/// tests still get the raw (non-volatile) devices back from their pool.
pub struct InstrumentingPool {
    inner: Arc<dyn DevicePool>,
    obs: Arc<ServiceObs>,
}

impl InstrumentingPool {
    /// Wraps `inner` so new devices report into `obs`.
    #[must_use]
    pub fn new(inner: Arc<dyn DevicePool>, obs: Arc<ServiceObs>) -> InstrumentingPool {
        InstrumentingPool { inner, obs }
    }
}

impl DevicePool for InstrumentingPool {
    fn next_device(&self) -> Result<SharedDevice> {
        Ok(self.obs.instrument_device(self.inner.next_device()?))
    }

    fn capacity_hint(&self) -> Option<u64> {
        self.inner.capacity_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_feed_counters_histograms_and_trace() {
        let obs = ServiceObs::new(16);
        obs.note_append(LogFileId(8), Duration::from_micros(10), true);
        obs.note_append(LogFileId(8), Duration::from_micros(5), false);
        obs.note_read(Some(LogFileId(8)), Duration::from_micros(3), true);
        let stats = LocateStats {
            blocks_read: 4,
            map_entries_examined: 3,
            fallbacks: 0,
            max_level: 2,
        };
        obs.note_locate(Some(LogFileId(8)), &stats, Duration::from_micros(7));
        let text = clio_obs::expo::render_prometheus(obs.registry());
        assert!(text.contains("clio_core_appends_total 1"));
        assert!(text.contains("clio_core_append_errors_total 1"));
        assert!(text.contains("clio_core_reads_total 1"));
        assert!(text.contains("clio_core_locates_total 1"));
        assert!(text.contains("clio_core_locate_blocks_count 1"));
        // Per-log labeled series appear alongside the service-wide ones.
        assert!(text.contains("clio_log_appends_total{log=\"8\"} 1"));
        assert!(text.contains("clio_log_reads_total{log=\"8\"} 1"));
        assert!(text.contains("clio_log_append_latency_ns_count{log=\"8\"} 1"));
        let dump = obs.trace().dump();
        assert!(dump.contains("locate"));
    }

    #[test]
    fn spans_nest_through_the_service_helper() {
        let obs = ServiceObs::new(16);
        {
            let mut root = obs.span("append");
            root.set_target(3);
            let _stage = obs.span("stage");
        }
        let trees = obs.trace().traces();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].roots[0].span.name, "append");
        assert_eq!(trees[0].roots[0].children[0].span.name, "stage");
    }

    #[test]
    fn instrumenting_pool_counts_device_ops() {
        use clio_types::BlockNo;
        use clio_volume::MemDevicePool;
        let obs = ServiceObs::new(0);
        let pool = InstrumentingPool::new(Arc::new(MemDevicePool::new(64, 8)), obs.clone());
        let dev = pool.next_device().unwrap();
        dev.append_block(BlockNo(0), &[0u8; 64]).unwrap();
        assert_eq!(obs.device_stats.snapshot().appends, 1);
    }
}
