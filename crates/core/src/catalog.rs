//! The in-memory catalog: log-file descriptors derived from the catalog log
//! file.
//!
//! "local-logfile-id … is an index into a table (called a catalog) of log
//! file specific information (i.e. file descriptors) maintained by the
//! server, and derived from the catalog log file" (§2.2). The catalog also
//! carries the sublog tree (§2.1): every log file is a sublog of its
//! parent, the root being the volume sequence log file, which gives log
//! files their place in "the familiar file naming hierarchy" — e.g.
//! `/mail/smith` is a sublog of `/mail`.

use std::collections::BTreeMap;

use clio_types::{ClioError, LogFileId, Result, Timestamp, FIRST_CLIENT_LOGFILE_ID, MAX_LOGFILES};

use clio_format::records::{CatalogRecord, LogFileAttrs, PERM_APPEND, PERM_READ};

/// The server's table of log file descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Catalog {
    files: BTreeMap<LogFileId, LogFileAttrs>,
    next_id: u16,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// A catalog knowing only the service's own log files.
    #[must_use]
    pub fn new() -> Catalog {
        let mut files = BTreeMap::new();
        for (id, name) in [
            (LogFileId::VOLUME_SEQUENCE, ""),
            (LogFileId::ENTRYMAP, ".entrymap"),
            (LogFileId::CATALOG, ".catalog"),
            (LogFileId::BAD_BLOCK, ".badblocks"),
        ] {
            files.insert(
                id,
                LogFileAttrs {
                    id,
                    parent: LogFileId::VOLUME_SEQUENCE,
                    perms: PERM_READ,
                    created: Timestamp::ZERO,
                    sealed: false,
                    name: name.to_owned(),
                },
            );
        }
        Catalog {
            files,
            next_id: FIRST_CLIENT_LOGFILE_ID,
        }
    }

    /// The id that will be assigned to the next created log file.
    #[must_use]
    pub fn next_id(&self) -> u16 {
        self.next_id
    }

    /// The descriptor for `id`.
    pub fn attrs(&self, id: LogFileId) -> Result<&LogFileAttrs> {
        self.files.get(&id).ok_or(ClioError::UnknownLogFileId(id))
    }

    /// Whether `id` exists.
    #[must_use]
    pub fn exists(&self, id: LogFileId) -> bool {
        self.files.contains_key(&id)
    }

    /// All client log files, in id order.
    pub fn client_files(&self) -> impl Iterator<Item = &LogFileAttrs> {
        self.files.values().filter(|a| !a.id.is_reserved())
    }

    /// Direct sublogs of `id`.
    pub fn children(&self, id: LogFileId) -> impl Iterator<Item = &LogFileAttrs> {
        self.files
            .values()
            .filter(move |a| a.parent == id && a.id != LogFileId::VOLUME_SEQUENCE)
    }

    /// `id` and every transitive sublog of it — the set of
    /// local-logfile-ids whose entries belong to `id` (§2.1: "if log file
    /// l2 is a sublog of log file l1, then any entry that is logged in l2
    /// will also belong to l1").
    ///
    /// For the volume sequence log file this is every id, matching its
    /// definition as "the entire sequence of log entries … written to a
    /// volume" (§2).
    #[must_use]
    pub fn closure(&self, id: LogFileId) -> Vec<LogFileId> {
        if id == LogFileId::VOLUME_SEQUENCE {
            return self.files.keys().copied().collect();
        }
        let mut out = vec![id];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            for c in self.children(cur) {
                out.push(c.id);
            }
            i += 1;
        }
        out
    }

    /// Resolves a path like `/mail/smith` to its log file id. `/` names
    /// the volume sequence log file.
    pub fn resolve(&self, path: &str) -> Result<LogFileId> {
        let mut cur = LogFileId::VOLUME_SEQUENCE;
        for comp in Self::components(path)? {
            match self.children(cur).find(|a| a.name == comp) {
                Some(a) => cur = a.id,
                None => return Err(ClioError::NoSuchLogFile(path.to_owned())),
            }
        }
        Ok(cur)
    }

    /// The full path of `id` (for display).
    pub fn path_of(&self, id: LogFileId) -> Result<String> {
        if id == LogFileId::VOLUME_SEQUENCE {
            return Ok("/".to_owned());
        }
        let mut parts = Vec::new();
        let mut cur = id;
        loop {
            let a = self.attrs(cur)?;
            parts.push(a.name.clone());
            if a.parent == LogFileId::VOLUME_SEQUENCE {
                break;
            }
            cur = a.parent;
        }
        parts.reverse();
        Ok(format!("/{}", parts.join("/")))
    }

    fn components(path: &str) -> Result<Vec<&str>> {
        let trimmed = path.strip_prefix('/').unwrap_or(path);
        if trimmed.is_empty() {
            return Ok(vec![]);
        }
        let comps: Vec<&str> = trimmed.split('/').collect();
        for c in &comps {
            Self::check_name(c, path)?;
        }
        Ok(comps)
    }

    fn check_name(name: &str, path: &str) -> Result<()> {
        if name.is_empty() || name.starts_with('.') || name.contains('/') {
            return Err(ClioError::BadPath(path.to_owned()));
        }
        Ok(())
    }

    /// Allocates a descriptor for a new log file named `name` under
    /// `parent`, returning the catalog record to be logged (§2.2: "any
    /// change to these attributes is also logged … in the catalog log
    /// file"). The record must be durably appended before the creation is
    /// acknowledged; [`Catalog::apply`] with the same record is how replay
    /// reproduces this state.
    pub fn prepare_create(
        &self,
        parent: LogFileId,
        name: &str,
        now: Timestamp,
    ) -> Result<CatalogRecord> {
        Self::check_name(name, name)?;
        self.attrs(parent)?;
        if self.children(parent).any(|a| a.name == name) {
            return Err(ClioError::LogFileExists(name.to_owned()));
        }
        if usize::from(self.next_id) >= MAX_LOGFILES {
            return Err(ClioError::LogFileIdsExhausted);
        }
        Ok(CatalogRecord::Create(LogFileAttrs {
            id: LogFileId(self.next_id),
            parent,
            perms: PERM_READ | PERM_APPEND,
            created: now,
            sealed: false,
            name: name.to_owned(),
        }))
    }

    /// Applies a catalog record (both on the live path and during replay).
    pub fn apply(&mut self, rec: &CatalogRecord) -> Result<()> {
        match rec {
            CatalogRecord::Create(a) => {
                if a.id.is_reserved() {
                    return Err(ClioError::BadRecord("create of reserved id"));
                }
                self.files.insert(a.id, a.clone());
                if a.id.0 >= self.next_id {
                    self.next_id = a.id.0 + 1;
                }
                Ok(())
            }
            CatalogRecord::SetPerms { id, perms } => {
                let a = self
                    .files
                    .get_mut(id)
                    .ok_or(ClioError::UnknownLogFileId(*id))?;
                a.perms = *perms;
                Ok(())
            }
            CatalogRecord::Rename { id, name } => {
                Self::check_name(name, name)?;
                let parent = self.attrs(*id)?.parent;
                if self
                    .children(parent)
                    .any(|s| s.name == *name && s.id != *id)
                {
                    return Err(ClioError::LogFileExists(name.clone()));
                }
                let a = self
                    .files
                    .get_mut(id)
                    .ok_or(ClioError::UnknownLogFileId(*id))?;
                a.name = name.clone();
                Ok(())
            }
            CatalogRecord::Seal { id } => {
                let a = self
                    .files
                    .get_mut(id)
                    .ok_or(ClioError::UnknownLogFileId(*id))?;
                a.sealed = true;
                Ok(())
            }
            CatalogRecord::Checkpoint { next_id, files } => {
                let mut fresh = Catalog::new();
                for a in files {
                    fresh.files.insert(a.id, a.clone());
                }
                fresh.next_id = (*next_id).max(FIRST_CLIENT_LOGFILE_ID);
                *self = fresh;
                Ok(())
            }
        }
    }

    /// Which of `mask + 1` append-domain shards entries of `id` route to:
    /// its *top-level* ancestor's id masked down (so a log file and all
    /// its sublogs land on one shard, keeping closures single-domain), and
    /// every reserved service file on shard 0 alongside the catalog log.
    /// Unknown ids also answer 0, the coordination shard.
    #[must_use]
    pub fn route(&self, id: LogFileId, mask: usize) -> usize {
        if mask == 0 || id.is_reserved() {
            return 0;
        }
        let mut cur = id;
        loop {
            match self.attrs(cur) {
                Ok(a) if a.parent == LogFileId::VOLUME_SEQUENCE => {
                    return usize::from(a.id.0) & mask
                }
                Ok(a) => cur = a.parent,
                Err(_) => return 0,
            }
        }
    }

    /// The sub-catalog shard `shard` maintains: the reserved service files
    /// plus every client file routing to it. Whole top-level subtrees
    /// route together, so the slice is closed under parents.
    #[must_use]
    pub fn slice(&self, shard: usize, mask: usize) -> Catalog {
        let mut out = Catalog::new();
        for a in self.client_files() {
            if self.route(a.id, mask) == shard {
                out.files.insert(a.id, a.clone());
            }
        }
        out.next_id = self.next_id;
        out
    }

    /// A checkpoint record capturing all client log files, written at the
    /// start of each successor volume so recovery never needs predecessor
    /// volumes to rebuild the catalog.
    #[must_use]
    pub fn checkpoint(&self) -> CatalogRecord {
        CatalogRecord::Checkpoint {
            next_id: self.next_id,
            files: self.client_files().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(cat: &mut Catalog, parent: LogFileId, name: &str) -> LogFileId {
        let rec = cat.prepare_create(parent, name, Timestamp(1)).unwrap();
        let id = match &rec {
            CatalogRecord::Create(a) => a.id,
            _ => unreachable!(),
        };
        cat.apply(&rec).unwrap();
        id
    }

    #[test]
    fn fresh_catalog_has_service_files() {
        let cat = Catalog::new();
        assert!(cat.exists(LogFileId::ENTRYMAP));
        assert!(cat.exists(LogFileId::CATALOG));
        assert_eq!(cat.next_id(), FIRST_CLIENT_LOGFILE_ID);
        assert_eq!(cat.client_files().count(), 0);
    }

    #[test]
    fn create_and_resolve_hierarchy() {
        let mut cat = Catalog::new();
        let mail = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail");
        let smith = create(&mut cat, mail, "smith");
        assert_eq!(cat.resolve("/mail").unwrap(), mail);
        assert_eq!(cat.resolve("/mail/smith").unwrap(), smith);
        assert_eq!(cat.resolve("/").unwrap(), LogFileId::VOLUME_SEQUENCE);
        assert_eq!(cat.path_of(smith).unwrap(), "/mail/smith");
        assert!(cat.resolve("/mail/jones").is_err());
        assert!(cat.resolve("/.entrymap").is_err());
    }

    #[test]
    fn closure_includes_sublogs() {
        let mut cat = Catalog::new();
        let mail = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail");
        let smith = create(&mut cat, mail, "smith");
        let jones = create(&mut cat, mail, "jones");
        let deep = create(&mut cat, smith, "inbox");
        let mut c = cat.closure(mail);
        c.sort();
        assert_eq!(c, vec![mail, smith, jones, deep]);
        assert_eq!(cat.closure(jones), vec![jones]);
        // The volume sequence closure is everything.
        assert_eq!(cat.closure(LogFileId::VOLUME_SEQUENCE).len(), 4 + 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cat = Catalog::new();
        create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail");
        assert!(matches!(
            cat.prepare_create(LogFileId::VOLUME_SEQUENCE, "mail", Timestamp(2)),
            Err(ClioError::LogFileExists(_))
        ));
    }

    #[test]
    fn bad_names_rejected() {
        let cat = Catalog::new();
        for bad in ["", ".hidden", "a/b"] {
            assert!(
                cat.prepare_create(LogFileId::VOLUME_SEQUENCE, bad, Timestamp(1))
                    .is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert!(cat.resolve("//x").is_err());
    }

    #[test]
    fn rename_and_seal() {
        let mut cat = Catalog::new();
        let mail = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail");
        let _news = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "news");
        cat.apply(&CatalogRecord::Rename {
            id: mail,
            name: "post".into(),
        })
        .unwrap();
        assert_eq!(cat.resolve("/post").unwrap(), mail);
        assert!(cat.resolve("/mail").is_err());
        // Renaming onto an existing sibling fails.
        assert!(cat
            .apply(&CatalogRecord::Rename {
                id: mail,
                name: "news".into(),
            })
            .is_err());
        cat.apply(&CatalogRecord::Seal { id: mail }).unwrap();
        assert!(cat.attrs(mail).unwrap().sealed);
    }

    #[test]
    fn checkpoint_round_trips_state() {
        let mut cat = Catalog::new();
        let mail = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail");
        let _smith = create(&mut cat, mail, "smith");
        cat.apply(&CatalogRecord::Seal { id: mail }).unwrap();
        let cp = cat.checkpoint();
        let mut fresh = Catalog::new();
        fresh.apply(&cp).unwrap();
        assert_eq!(fresh, cat);
    }

    #[test]
    fn replay_reproduces_creation() {
        let mut a = Catalog::new();
        let rec = a
            .prepare_create(LogFileId::VOLUME_SEQUENCE, "audit", Timestamp(7))
            .unwrap();
        a.apply(&rec).unwrap();
        let mut b = Catalog::new();
        b.apply(&rec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.next_id(), b.next_id());
    }

    #[test]
    fn routing_is_by_top_level_ancestor() {
        let mut cat = Catalog::new();
        let mail = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "mail"); // id 8
        let smith = create(&mut cat, mail, "smith"); // id 9
        let news = create(&mut cat, LogFileId::VOLUME_SEQUENCE, "news"); // id 10
        let deep = create(&mut cat, smith, "inbox"); // id 11
        let mask = 3; // 4 shards
        assert_eq!(cat.route(mail, mask), usize::from(mail.0) & mask);
        // Sublogs follow their top-level ancestor, not their own id.
        assert_eq!(cat.route(smith, mask), cat.route(mail, mask));
        assert_eq!(cat.route(deep, mask), cat.route(mail, mask));
        assert_eq!(cat.route(news, mask), usize::from(news.0) & mask);
        // Reserved files and single-shard mode pin to shard 0.
        assert_eq!(cat.route(LogFileId::CATALOG, mask), 0);
        assert_eq!(cat.route(news, 0), 0);
        // Slices partition the client files and keep subtrees whole.
        let s0 = cat.slice(cat.route(mail, mask), mask);
        assert!(s0.exists(mail) && s0.exists(smith) && s0.exists(deep));
        assert!(!s0.exists(news));
        assert_eq!(s0.next_id(), cat.next_id());
        let s2 = cat.slice(cat.route(news, mask), mask);
        assert!(s2.exists(news) && !s2.exists(mail));
        assert!(s2.exists(LogFileId::CATALOG));
    }

    #[test]
    fn id_exhaustion() {
        let mut cat = Catalog::new();
        cat.next_id = (MAX_LOGFILES - 1) as u16;
        let rec = cat
            .prepare_create(LogFileId::VOLUME_SEQUENCE, "last", Timestamp(0))
            .unwrap();
        cat.apply(&rec).unwrap();
        assert!(matches!(
            cat.prepare_create(LogFileId::VOLUME_SEQUENCE, "toomany", Timestamp(0)),
            Err(ClioError::LogFileIdsExhausted)
        ));
    }
}
