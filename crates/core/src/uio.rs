//! The uniform I/O interface (UIO).
//!
//! "Log files fit naturally into the abstraction provided by conventional
//! file systems, since such files can be accessed in the same way as
//! regular append-only files. A uniform I/O interface, such as the
//! interface \[3\] used in the V-System, supports access to this type of
//! file." (§6) — [`Uio`] is that interface: byte-stream reads, record
//! appends, and seeks to start, end, or a point in time. Log files
//! implement it here; the conventional files of `clio-fs` implement it
//! there, and generic code works over either.

use clio_types::{ClioError, Result, Timestamp};

use crate::read::LogCursor;
use crate::service::{AppendOpts, LogService};

/// Seek targets meaningful across file types. Conventional byte files
/// support `Start`/`End`/`Offset`; log files support `Start`/`End`/`Time`
/// (their natural coordinate, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UioSeek {
    /// The beginning of the file.
    Start,
    /// The end of the file.
    End,
    /// An absolute byte offset (conventional files).
    Offset(u64),
    /// A point in time (log files, §2).
    Time(Timestamp),
}

/// The uniform I/O interface.
pub trait Uio {
    /// Reads up to `buf.len()` bytes; 0 means end-of-file (for a log file:
    /// no further entries *at the moment* — logs grow).
    fn uio_read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Writes `data`; for a log file this appends exactly one entry.
    fn uio_write(&mut self, data: &[u8]) -> Result<usize>;

    /// Repositions the stream.
    fn uio_seek(&mut self, to: UioSeek) -> Result<()>;
}

/// A log file opened through the uniform I/O interface.
///
/// Reads stream the concatenated payloads of the log file's entries (and
/// its sublogs'); each write appends one entry.
pub struct LogUio<'a> {
    svc: &'a LogService,
    path: String,
    cursor: LogCursor<'a>,
    carry: Vec<u8>,
    carry_off: usize,
}

impl<'a> LogUio<'a> {
    /// Opens `path` positioned at the start.
    pub fn open(svc: &'a LogService, path: &str) -> Result<LogUio<'a>> {
        Ok(LogUio {
            svc,
            path: path.to_owned(),
            cursor: svc.cursor(path)?,
            carry: Vec::new(),
            carry_off: 0,
        })
    }
}

impl Uio for LogUio<'_> {
    fn uio_read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let mut n = 0;
        while n < buf.len() {
            if self.carry_off >= self.carry.len() {
                match self.cursor.next()? {
                    Some(e) => {
                        self.carry = e.data;
                        self.carry_off = 0;
                    }
                    None => break,
                }
            }
            let take = (buf.len() - n).min(self.carry.len() - self.carry_off);
            buf[n..n + take].copy_from_slice(&self.carry[self.carry_off..self.carry_off + take]);
            self.carry_off += take;
            n += take;
        }
        Ok(n)
    }

    fn uio_write(&mut self, data: &[u8]) -> Result<usize> {
        self.svc
            .append_path(&self.path, data, AppendOpts::standard())?;
        Ok(data.len())
    }

    fn uio_seek(&mut self, to: UioSeek) -> Result<()> {
        self.carry.clear();
        self.carry_off = 0;
        self.cursor = match to {
            UioSeek::Start => self.svc.cursor(&self.path)?,
            UioSeek::End => self.svc.cursor_from_end(&self.path)?,
            UioSeek::Time(ts) => self.svc.cursor_from_time(&self.path, ts)?,
            UioSeek::Offset(_) => {
                return Err(ClioError::Unsupported(
                    "byte offsets are not meaningful in a log file; seek by time",
                ))
            }
        };
        Ok(())
    }
}
