//! The log service: sharded append domains, lifecycle, and the public
//! catalog/append API.
//!
//! The service is partitioned into `ServiceConfig::shards` independent
//! append domains. Each [`Shard`] owns its own state lock, entrymap
//! writer, open block, sealed queue, commit gate and volume sequence, so
//! forced appends to different shards never contend on a lock or
//! serialize on one device write stream. The public [`LogService`] is a
//! thin router: log files are assigned to shards by their *top-level*
//! ancestor's id (hash-picked like the block cache's shards), which keeps
//! every sublog closure on a single shard. Shard 0 is the coordination
//! point: it holds the authoritative catalog and the only durable catalog
//! log; the other shards maintain catalog *slices* covering just the
//! subtrees routed to them.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use clio_testkit::sync::{ArcCell, Condvar, Mutex};

use clio_cache::BlockCache;
use clio_entrymap::{EntrymapWriter, Geometry, PendingMaps};
use clio_format::records::{CatalogRecord, PERM_APPEND};
use clio_format::{BlockBuilder, EntryForm, EntryHeader};
use clio_types::{ClioError, Clock, EntryAddr, LogFileId, Result, SeqNo, Timestamp, VolumeSeqId};
use clio_volume::{DevicePool, VolumeSequence};

use crate::catalog::Catalog;
use crate::config::ServiceConfig;
use crate::obs::{InstrumentingPool, PerShard, ServiceObs};
use crate::stats::{SpaceReport, SpaceStats};

/// Bits of an `EntryAddr`'s 32-bit volume coordinate carrying the
/// per-shard volume index; the high bits carry the shard. Shard 0
/// addresses are identical to the single-domain addresses of old.
pub(crate) const SHARD_SHIFT: u32 = 24;

/// Mask selecting the per-shard volume index out of the global coordinate.
pub(crate) const LOCAL_VOLUME_MASK: u32 = (1 << SHARD_SHIFT) - 1;

/// Each shard's volume sequence gets its own block-cache device-id range.
pub(crate) const DEVICE_ID_SHIFT: u32 = 20;

/// Stamps a shard-local address with its shard, producing the global
/// address clients see.
pub(crate) fn globalize_addr(shard: u32, mut addr: EntryAddr) -> EntryAddr {
    addr.volume_index |= shard << SHARD_SHIFT;
    addr
}

/// One distinct lockdep class per shard state lock (class names must be
/// `&'static str`, so they come from a table); shards past the table
/// share a fallback class — ordering between them is still ascending by
/// construction, just not lockdep-distinguished.
const STATE_CLASSES: [&str; 8] = [
    "core.state.shard0",
    "core.state.shard1",
    "core.state.shard2",
    "core.state.shard3",
    "core.state.shard4",
    "core.state.shard5",
    "core.state.shard6",
    "core.state.shard7",
];

fn state_class(idx: u32) -> &'static str {
    STATE_CLASSES
        .get(idx as usize)
        .copied()
        .unwrap_or("core.state.shard8plus")
}

/// When an append must be durable (§2.3.1: "log entries are written
/// synchronously to the log device when forced (such as on a transaction
/// commit)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Buffer in the server's open block; durable at the next forced write
    /// or block seal.
    #[default]
    Buffered,
    /// Persist before returning — staged to battery-backed RAM when the
    /// device has one, otherwise the partial block is sealed early.
    Forced,
}

/// Per-append options.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendOpts {
    /// Durability requirement.
    pub durability: Durability,
    /// Record the service timestamp in the entry header. Optional per
    /// §2.1; costs 8 bytes. Without it the entry is still locatable to
    /// block resolution via the block's first-entry timestamp.
    pub timestamped: bool,
    /// A client sequence number for asynchronous unique identification
    /// (§2.1); implies a timestamped "full" header.
    pub seqno: Option<SeqNo>,
}

impl AppendOpts {
    /// Timestamped, buffered — the common case.
    #[must_use]
    pub fn standard() -> AppendOpts {
        AppendOpts {
            timestamped: true,
            ..AppendOpts::default()
        }
    }

    /// Timestamped and forced (synchronous).
    #[must_use]
    pub fn forced() -> AppendOpts {
        AppendOpts {
            durability: Durability::Forced,
            timestamped: true,
            seqno: None,
        }
    }

    /// Minimal 4-byte-overhead header, buffered.
    #[must_use]
    pub fn minimal() -> AppendOpts {
        AppendOpts::default()
    }

    /// Full header with a client sequence number.
    #[must_use]
    pub fn with_seqno(seqno: SeqNo) -> AppendOpts {
        AppendOpts {
            durability: Durability::Buffered,
            timestamped: true,
            seqno: Some(seqno),
        }
    }
}

/// What a client learns from a successful append: where the entry landed
/// and the service timestamp that uniquely identifies it (§2.1: "if the
/// entry is written synchronously … a client can obtain this timestamp as a
/// consequence of the write operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// The entry's address. Final for forced appends; provisional for
    /// buffered appends when append verification is enabled (a block that
    /// fails verification is re-written at the next address).
    pub addr: EntryAddr,
    /// The service timestamp assigned to the entry.
    pub timestamp: Timestamp,
}

/// The block currently being filled in server memory.
pub(crate) struct OpenBlock {
    /// The data block this will become (may shift on verify-failure).
    pub db: u64,
    /// The in-memory builder.
    pub builder: BlockBuilder,
    /// Ids of log files with entries in this block.
    pub ids: BTreeSet<LogFileId>,
    /// Whether the current contents are staged in the device's NV tail.
    pub staged: bool,
}

/// A block sealed in memory but not yet written to the device — the
/// *seal* stage of the group-commit pipeline. Queued images are shared
/// into read snapshots (so readers see them immediately) and drained onto
/// the medium in one vectored write by the next commit.
#[derive(Clone)]
pub(crate) struct SealedBlock {
    /// The data block this image will occupy.
    pub db: u64,
    /// The finished block image.
    pub image: Arc<Vec<u8>>,
}

/// All append-side state of one shard, guarded by one lock. Reads never
/// touch this — they run against the published [`ReadView`] snapshot.
///
/// The shareable pieces (`catalog`, `sealed_pendings`) live behind `Arc`s
/// so publishing a snapshot is a refcount bump; mutations go through
/// [`Arc::make_mut`], copy-on-write, so an in-flight reader's snapshot is
/// never modified underneath it.
pub(crate) struct State {
    pub catalog: Arc<Catalog>,
    pub emap: EntrymapWriter,
    pub open: Option<OpenBlock>,
    /// Final pending maps of sealed (non-active) volumes, by volume index.
    pub sealed_pendings: Arc<Vec<PendingMaps>>,
    pub active_index: u32,
    /// Frozen clone of `emap.pending()`, refreshed whenever a block seals
    /// (the only time the pending maps change); shared into snapshots.
    pub pending_snap: Arc<PendingMaps>,
    /// Entrymap records displaced by invalidated blocks, to be written in
    /// the next opened block (§2.3.2).
    pub carryover: Vec<clio_format::EntrymapRecord>,
    /// Invalidated blocks awaiting a bad-block log record.
    pub pending_badblocks: Vec<u64>,
    pub stats: SpaceStats,
    /// Blocks sealed in memory, awaiting the next commit's vectored write
    /// (group commit only; always empty on the legacy path). Ordered by
    /// `db`, contiguous from the active volume's device end.
    pub sealed_queue: Vec<SealedBlock>,
    /// Forced appends staged since the last commit — what the commit
    /// "covers", for the forced-writes-saved metric.
    pub staged_forced: u64,
    /// Monotone commit sequence: bumped once per staged forced append (or
    /// forced batch); a commit makes every seq up to its snapshot durable.
    pub forced_seq: u64,
}

/// An immutable snapshot of everything the read path needs, published
/// via an atomic-swap cell on every visible mutation. Because sealed
/// blocks are write-once, a snapshot can never go stale *incorrectly* —
/// at worst it lags by the contents of the open block until the next
/// publish (bounded staleness; a forced append or flush republishes).
pub(crate) struct ReadView {
    /// The shard's catalog (full on shard 0, a slice elsewhere) as of the
    /// snapshot.
    pub catalog: Arc<Catalog>,
    /// Final pending maps of sealed (non-active) volumes, by volume index.
    pub sealed_pendings: Arc<Vec<PendingMaps>>,
    /// Index of the active (writable) volume.
    pub active_index: u32,
    /// The active volume's pending entrymap state.
    pub active_pending: Arc<PendingMaps>,
    /// The active volume's sealed-data watermark at snapshot time.
    pub active_data_end: u64,
    /// Frozen image of the non-empty open block, if any.
    pub open: Option<(u64, Arc<Vec<u8>>)>,
    /// Images of blocks sealed in memory but not yet on the device
    /// (group-commit queue), ordered by data block. Readers serve these
    /// exactly like sealed device blocks.
    pub queued: Vec<(u64, Arc<Vec<u8>>)>,
}

/// The leader/follower commit gate. A forced appender stages its entry
/// under the state lock, then waits here: the first waiter to find no
/// commit in flight becomes the *leader*, (optionally) dallies
/// `commit_wait_us`, drains the sealed queue plus the partial block in one
/// vectored device write, advances `committed` to the commit-seq snapshot,
/// and wakes every follower whose sequence number it covered.
pub(crate) struct CommitGate {
    pub m: Mutex<CommitClock>,
    pub cv: Condvar,
}

pub(crate) struct CommitClock {
    /// Highest forced-append sequence number made durable so far.
    pub committed: u64,
    /// Whether a leader is currently writing.
    pub committing: bool,
}

/// One independent append domain: a full single-writer log engine — state
/// lock, entrymap writer, open block, sealed queue, commit gate, read
/// snapshot and volume sequence. The pre-sharding `LogService` *was* this
/// struct; the public [`LogService`] now routes between several of them.
pub(crate) struct Shard {
    /// This shard's index within the service (0 = catalog shard).
    pub(crate) idx: u32,
    pub(crate) seq: Arc<VolumeSequence>,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) cfg: ServiceConfig,
    pub(crate) obs: Arc<ServiceObs>,
    /// Cached per-shard metric series (counter map lock paid once here).
    pub(crate) pshard: Arc<PerShard>,
    pub(crate) state: Mutex<State>,
    /// The current read snapshot; reads `get` it and never lock `state`.
    pub(crate) view: ArcCell<ReadView>,
    /// Group-commit leader election and completion signalling.
    pub(crate) commit: CommitGate,
}

/// The replayed state a shard is assembled around: empty for a fresh
/// `create`, read back from the media during recovery.
pub(crate) struct ShardSeed {
    pub catalog: Catalog,
    pub sealed_pendings: Vec<PendingMaps>,
    pub active_pending: Option<PendingMaps>,
}

impl ShardSeed {
    /// The seed for a brand-new shard: nothing replayed.
    pub(crate) fn empty() -> ShardSeed {
        ShardSeed {
            catalog: Catalog::new(),
            sealed_pendings: Vec::new(),
            active_pending: None,
        }
    }
}

impl Shard {
    /// Stitches a shard together from its parts (used by `create` and by
    /// recovery).
    pub(crate) fn assemble(
        idx: u32,
        seq: Arc<VolumeSequence>,
        cfg: ServiceConfig,
        clock: Arc<dyn Clock>,
        obs: Arc<ServiceObs>,
        seed: ShardSeed,
    ) -> Shard {
        let ShardSeed {
            catalog,
            sealed_pendings,
            active_pending,
        } = seed;
        let geo = Geometry::new(usize::from(cfg.fanout));
        let active = seq.active();
        let active_index = active.label().volume_index;
        let emap = match active_pending {
            Some(p) => EntrymapWriter::from_pending(p, active.data_end()),
            None => EntrymapWriter::new(geo),
        };
        let catalog = Arc::new(catalog);
        let sealed_pendings = Arc::new(sealed_pendings);
        let pending_snap = Arc::new(emap.pending().clone());
        let view = ArcCell::new(Arc::new(ReadView {
            catalog: catalog.clone(),
            sealed_pendings: sealed_pendings.clone(),
            active_index,
            active_pending: pending_snap.clone(),
            active_data_end: active.data_end(),
            open: None,
            queued: Vec::new(),
        }));
        let pshard = obs.per_shard(idx);
        Shard {
            idx,
            seq,
            clock,
            cfg,
            obs,
            pshard,
            // Held across device writes by design: the appender (or the
            // group-commit leader committing on behalf of followers)
            // owns the append point end to end. One lockdep class per
            // shard proves cross-shard acquisition stays ascending.
            state: Mutex::with_class_io(
                State {
                    catalog,
                    emap,
                    open: None,
                    sealed_pendings,
                    active_index,
                    pending_snap,
                    carryover: Vec::new(),
                    pending_badblocks: Vec::new(),
                    stats: SpaceStats::default(),
                    sealed_queue: Vec::new(),
                    staged_forced: 0,
                    forced_seq: 0,
                },
                state_class(idx),
            ),
            view,
            commit: CommitGate {
                m: Mutex::with_class(
                    CommitClock {
                        committed: 0,
                        committing: false,
                    },
                    "core.commit_gate",
                ),
                cv: Condvar::new(),
            },
        }
    }

    /// Whether the group-commit pipeline is in effect. Verified appends
    /// are incompatible with deferred batch writes (verification re-places
    /// a block *before* its address is acknowledged, which a queued seal
    /// cannot do), so `verify_appends` forces the legacy path.
    pub(crate) fn group_commit_on(&self) -> bool {
        self.cfg.group_commit && !self.cfg.verify_appends
    }

    /// Publishes a fresh [`ReadView`] from the current append-side state.
    /// Called (with the state lock held) at the end of every mutating
    /// operation; readers pick it up via a cheap atomic-swap-cell `get`.
    pub(crate) fn publish_view(&self, st: &State) {
        let open = st
            .open
            .as_ref()
            .filter(|ob| !ob.builder.is_empty())
            .map(|ob| (ob.db, Arc::new(ob.builder.finish())));
        let active_data_end = self
            .seq
            .volume(st.active_index)
            .map(|v| v.data_end())
            .unwrap_or(0);
        let queued = st
            .sealed_queue
            .iter()
            .map(|b| (b.db, b.image.clone()))
            .collect();
        self.view.set(Arc::new(ReadView {
            catalog: st.catalog.clone(),
            sealed_pendings: st.sealed_pendings.clone(),
            active_index: st.active_index,
            active_pending: st.pending_snap.clone(),
            active_data_end,
            open,
            queued,
        }));
        self.obs.note_view_publish();
    }

    /// The current read snapshot.
    pub(crate) fn read_view(&self) -> Arc<ReadView> {
        self.view.get()
    }

    /// Prepares, durably logs, and applies a creation on the catalog
    /// shard, returning the new id and the record for slice propagation.
    pub(crate) fn create_local(
        &self,
        parent_path: &str,
        name: &str,
    ) -> Result<(LogFileId, CatalogRecord)> {
        let mut st = self.state.lock();
        let r = (|| {
            let parent = st.catalog.resolve(parent_path)?;
            let rec = st.catalog.prepare_create(parent, name, self.clock.now())?;
            let id = match &rec {
                CatalogRecord::Create(a) => a.id,
                _ => unreachable!("prepare_create returns Create"),
            };
            // §2.2: the change is logged in the catalog log file — durably,
            // before the creation is acknowledged.
            self.append_catalog_record(&mut st, &rec)?;
            Arc::make_mut(&mut st.catalog).apply(&rec)?;
            Ok((id, rec))
        })();
        self.publish_view(&st);
        r
    }

    /// Prepares a catalog record against this shard's live catalog, logs
    /// it durably, applies it, republishes the read snapshot, and returns
    /// the record so the router can propagate it to the routed shard's
    /// slice. Catalog-shard only.
    pub(crate) fn apply_catalog_change(
        &self,
        prepare: impl FnOnce(&Catalog) -> Result<CatalogRecord>,
    ) -> Result<CatalogRecord> {
        let mut st = self.state.lock();
        let r = (|| {
            let rec = prepare(&st.catalog)?;
            self.append_catalog_record(&mut st, &rec)?;
            Arc::make_mut(&mut st.catalog).apply(&rec)?;
            Ok(rec)
        })();
        self.publish_view(&st);
        r
    }

    /// Applies an already-durable catalog record to this shard's slice
    /// (no logging — the catalog shard holds the only durable catalog
    /// log; slices are rebuilt from it at recovery).
    pub(crate) fn apply_replica(&self, rec: &CatalogRecord) -> Result<()> {
        let mut st = self.state.lock();
        let r = Arc::make_mut(&mut st.catalog).apply(rec);
        self.publish_view(&st);
        r
    }

    /// Appends `data` as one entry of log file `id` on this shard.
    pub(crate) fn append(&self, id: LogFileId, data: &[u8], opts: AppendOpts) -> Result<Receipt> {
        let mut span = self.obs.span("append");
        span.set_target(u64::from(id.0));
        span.attr("bytes", data.len() as u64);
        span.attr("shard", u64::from(self.idx));
        let start = clio_obs::clock::now();
        let before = self.obs.device_stats.snapshot().accesses();
        let r = self.append_inner(id, data, opts);
        let blocks = self
            .obs
            .device_stats
            .snapshot()
            .accesses()
            .saturating_sub(before);
        span.attr("blocks", blocks);
        if r.is_err() {
            span.fail("error");
        }
        drop(span);
        self.obs.note_append(id, start.elapsed(), r.is_ok());
        if r.is_ok() {
            self.pshard.appends.inc();
        }
        r
    }

    fn append_inner(&self, id: LogFileId, data: &[u8], opts: AppendOpts) -> Result<Receipt> {
        let group_forced = self.group_commit_on() && matches!(opts.durability, Durability::Forced);
        // Stage: encode the entry into the open block under the (short)
        // state lock. A group-mode forced append defers both the device
        // write and the snapshot republish to the commit leader.
        let (r, my_seq) = {
            // Declared before the lock guard: the stage span covers lock
            // acquisition and records only after the lock is released.
            let _stage = self.obs.span("stage");
            let mut st = self.state.lock();
            let r = self.append_locked(&mut st, id, data, opts);
            let seq = st.forced_seq;
            // Republish even on failure: a failed append may still have
            // sealed blocks (fragmentation) the snapshot should reflect.
            if !(group_forced && r.is_ok()) {
                self.publish_view(&st);
            }
            (r, seq)
        };
        let receipt = r?;
        if group_forced {
            // Commit: wait for a leader to make our sequence number
            // durable, or become the leader ourselves.
            self.commit_wait(my_seq)?;
        }
        Ok(receipt)
    }

    /// Leader/follower commit. Blocks until every forced append staged at
    /// or before `my_seq` is durable. The first waiter that finds no
    /// commit in flight becomes the leader: it drains the sealed queue and
    /// the current partial block in one batched device write, advances the
    /// committed watermark to the staging sequence it observed, and wakes
    /// all followers it covered.
    pub(crate) fn commit_wait(&self, my_seq: u64) -> Result<()> {
        // One commit_gate span per forced append, leader or follower: its
        // duration is the full time spent waiting for durability, and its
        // role attribute says which side of the gate this thread took.
        let mut gate_span = self.obs.span("commit_gate");
        gate_span.attr("shard", u64::from(self.idx));
        let mut led = false;
        let result = loop {
            let mut gate = self.commit.m.lock();
            if gate.committed >= my_seq {
                break Ok(());
            }
            if gate.committing {
                // Follow: a leader is writing; its batch may cover us.
                drop(self.commit.cv.wait(gate));
                continue;
            }
            gate.committing = true;
            drop(gate);
            led = true;
            self.pshard.leader_elections.inc();
            // Lead. Dally (with no lock held) so forced appends arriving
            // nearly together can join this batch.
            if self.cfg.commit_wait_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(self.cfg.commit_wait_us));
            }
            let (result, target) = {
                let mut st = self.state.lock();
                let target = st.forced_seq;
                gate_span.attr("batch_forced", st.staged_forced);
                let r = self.commit_locked(&mut st);
                // Publish once per batch: every follower's entries become
                // visible (and durable) with this single republish.
                let _publish = self.obs.span("publish");
                self.publish_view(&st);
                (r, target)
            };
            let mut gate = self.commit.m.lock();
            if result.is_ok() {
                gate.committed = gate.committed.max(target);
            }
            gate.committing = false;
            drop(gate);
            self.commit.cv.notify_all();
            if let Err(e) = result {
                break Err(e);
            }
        };
        gate_span.attr_str("role", if led { "leader" } else { "follower" });
        if result.is_err() {
            gate_span.fail("error");
        }
        result
    }

    pub(crate) fn append_locked(
        &self,
        st: &mut State,
        id: LogFileId,
        data: &[u8],
        opts: AppendOpts,
    ) -> Result<Receipt> {
        let attrs = st.catalog.attrs(id)?;
        if id.is_reserved() {
            return Err(ClioError::PermissionDenied(format!(
                "log file {id} is service-owned"
            )));
        }
        if attrs.sealed {
            return Err(ClioError::ReadOnly);
        }
        if attrs.perms & PERM_APPEND == 0 {
            return Err(ClioError::PermissionDenied(st.catalog.path_of(id)?));
        }
        let now = self.clock.now();
        let form = match (opts.timestamped || opts.seqno.is_some(), opts.seqno) {
            (_, Some(_)) => EntryForm::Full,
            (true, None) => EntryForm::Timestamped,
            (false, None) => EntryForm::Minimal,
        };
        let header = EntryHeader::new(
            id,
            form,
            matches!(form, EntryForm::Timestamped | EntryForm::Full).then_some(now),
            opts.seqno,
        );
        let (vol_idx, db, slot) = self.push_record(st, header, data, true)?;
        let mut addr = EntryAddr::new(vol_idx, clio_types::BlockNo(db), slot);
        if matches!(opts.durability, Durability::Forced) {
            if self.group_commit_on() {
                // Group mode: only *stage* here; the device write happens
                // in commit_wait, batched with other forced appends. The
                // address is final (no verification re-placement).
                st.forced_seq += 1;
                st.staged_forced += 1;
            } else {
                // If the entry sits in the still-open block, persisting may
                // move that block (verification failures re-place it), so
                // the final address is only known afterwards.
                let in_open =
                    vol_idx == st.active_index && st.open.as_ref().is_some_and(|ob| ob.db == db);
                if let Some(final_db) = self.persist_open(st)? {
                    if in_open {
                        addr.block = clio_types::BlockNo(final_db);
                    }
                }
            }
        }
        self.drain_badblocks(st)?;
        Ok(Receipt {
            addr,
            timestamp: now,
        })
    }

    /// Forces any buffered entries on this shard to stable storage.
    pub(crate) fn flush(&self) -> Result<()> {
        let _span = self.obs.span("flush");
        let mut st = self.state.lock();
        let r = (|| {
            self.persist_all(&mut st)?;
            self.drain_badblocks(&mut st)
        })();
        self.publish_view(&st);
        r
    }

    /// Seals the open block outright (used by tests and volume hygiene).
    /// Also drains the sealed queue so the seal lands on the device.
    pub(crate) fn seal_current_block(&self) -> Result<()> {
        let mut st = self.state.lock();
        let r = (|| {
            if st.open.is_some() {
                self.seal_open(&mut st)?;
            }
            self.write_sealed_queue(&mut st)?;
            self.drain_badblocks(&mut st)
        })();
        self.publish_view(&st);
        r
    }

    /// Appends one entry per `(path, payload)` item on this shard (every
    /// path must route here). Entries are staged under a single state-lock
    /// hold, and a forced batch pays for **one** durability point covering
    /// every item.
    pub(crate) fn append_batch(
        &self,
        items: &[(String, Vec<u8>)],
        opts: AppendOpts,
    ) -> Result<Vec<Receipt>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let mut span = self.obs.span("append_batch");
        span.attr("entries", items.len() as u64);
        span.attr("shard", u64::from(self.idx));
        let start = clio_obs::clock::now();
        let group_forced = self.group_commit_on() && matches!(opts.durability, Durability::Forced);
        let mut noted: Vec<LogFileId> = Vec::with_capacity(items.len());
        let (r, my_seq) = {
            let _stage = self.obs.span("stage");
            let mut st = self.state.lock();
            let r: Result<Vec<Receipt>> = (|| {
                let mut receipts = Vec::with_capacity(items.len());
                let staged_opts = AppendOpts {
                    durability: Durability::Buffered,
                    ..opts
                };
                for (path, data) in items {
                    let id = st.catalog.resolve(path)?;
                    noted.push(id);
                    receipts.push(self.append_locked(&mut st, id, data, staged_opts)?);
                }
                if matches!(opts.durability, Durability::Forced) {
                    if self.group_commit_on() {
                        st.forced_seq += 1;
                        st.staged_forced += items.len() as u64;
                    } else {
                        self.persist_open(&mut st)?;
                    }
                }
                Ok(receipts)
            })();
            let seq = st.forced_seq;
            if !(group_forced && r.is_ok()) {
                self.publish_view(&st);
            }
            (r, seq)
        };
        for id in &noted {
            self.obs.note_append(*id, start.elapsed(), r.is_ok());
        }
        if r.is_ok() {
            self.pshard.appends.add(noted.len() as u64);
        }
        if r.is_err() {
            span.fail("error");
        }
        let receipts = r?;
        if group_forced {
            self.commit_wait(my_seq)?;
        }
        Ok(receipts)
    }

    /// A clone of this shard's space accounting (merged by the router).
    pub(crate) fn space_stats(&self) -> SpaceStats {
        self.state.lock().stats.clone()
    }

    /// Writes a catalog record durably (forced, timestamped).
    fn append_catalog_record(&self, st: &mut State, rec: &CatalogRecord) -> Result<()> {
        let now = self.clock.now();
        let header = EntryHeader::new(LogFileId::CATALOG, EntryForm::Timestamped, Some(now), None);
        self.push_record(st, header, &rec.encode(), false)?;
        // Committed directly under the state lock (not through the gate):
        // catalog changes are rare and already serialized with any commit
        // leader by the lock itself.
        self.persist_all(st)?;
        Ok(())
    }
}

/// The Clio log service.
///
/// See the crate docs for the architecture; constructors are
/// [`LogService::create`] (fresh volume sequences, one per shard) and
/// [`LogService::recover`] (in [`crate::recovery`]).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clio_core::service::{AppendOpts, LogService};
/// use clio_core::ServiceConfig;
/// use clio_types::{SystemClock, VolumeSeqId};
/// use clio_volume::MemDevicePool;
///
/// let svc = LogService::create(
///     VolumeSeqId(1),
///     Arc::new(MemDevicePool::new(1024, 1 << 12)),
///     ServiceConfig::default(),
///     Arc::new(SystemClock),
/// )?;
/// svc.create_log("/events")?;
/// let receipt = svc.append_path("/events", b"hello", AppendOpts::forced())?;
/// let entry = svc.read_entry(receipt.addr)?;
/// assert_eq!(entry.data, b"hello");
///
/// let mut cursor = svc.cursor("/events")?;
/// assert_eq!(cursor.collect_remaining()?.len(), 1);
/// # Ok::<(), clio_types::ClioError>(())
/// ```
pub struct LogService {
    /// The append domains, shard 0 first (the catalog shard).
    pub(crate) shards: Vec<Arc<Shard>>,
    pub(crate) cfg: ServiceConfig,
    pub(crate) obs: Arc<ServiceObs>,
}

impl LogService {
    /// Creates a service on fresh volume sequences — one per configured
    /// shard, carved from the same device pool. Shard `i` uses sequence id
    /// `seq_id + i`.
    pub fn create(
        seq_id: VolumeSeqId,
        pool: Arc<dyn DevicePool>,
        cfg: ServiceConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<LogService> {
        cfg.validate()?;
        if let Some(avail) = pool.capacity_hint() {
            if cfg.shards as u64 > avail {
                return Err(ClioError::BadConfig(format!(
                    "{} shards need {} fresh volumes but the pool can supply only {avail}",
                    cfg.shards, cfg.shards
                )));
            }
        }
        let obs = ServiceObs::new(cfg.trace_events);
        let pool: Arc<dyn DevicePool> = Arc::new(InstrumentingPool::new(pool, obs.clone()));
        let cache = Arc::new(BlockCache::with_shards(cfg.cache_blocks, cfg.cache_shards));
        obs.attach_cache(&cache);
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let seq = Arc::new(VolumeSequence::create(
                VolumeSeqId(seq_id.0 + i as u64),
                cache.clone(),
                pool.clone(),
                (i as u32) << DEVICE_ID_SHIFT,
                cfg.block_size,
                cfg.fanout,
                clock.now(),
            )?);
            shards.push(Arc::new(Shard::assemble(
                i as u32,
                seq,
                cfg.clone(),
                clock.clone(),
                obs.clone(),
                ShardSeed::empty(),
            )));
        }
        Ok(LogService { shards, cfg, obs })
    }

    /// The routing mask (`shards - 1`; shard counts are powers of two).
    pub(crate) fn route_mask(&self) -> usize {
        self.shards.len() - 1
    }

    /// The shard `id`'s entries route to, from the catalog shard's
    /// current snapshot (reserved and unknown ids answer shard 0).
    pub(crate) fn route_id(&self, id: LogFileId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        self.shards[0]
            .read_view()
            .catalog
            .route(id, self.route_mask())
    }

    /// The append domain `id`'s entries route to. Stable for a given id:
    /// routing follows the top-level ancestor, assigned at creation.
    #[must_use]
    pub fn shard_of(&self, id: LogFileId) -> u32 {
        self.route_id(id) as u32
    }

    /// Splits a global address into (shard index, shard-local address).
    pub(crate) fn localize_addr(&self, addr: EntryAddr) -> Result<(usize, EntryAddr)> {
        let shard = (addr.volume_index >> SHARD_SHIFT) as usize;
        if shard >= self.shards.len() {
            return Err(ClioError::NotFound(format!(
                "entry {addr}: no shard {shard}"
            )));
        }
        let mut local = addr;
        local.volume_index &= LOCAL_VOLUME_MASK;
        Ok((shard, local))
    }

    fn globalize_receipt(shard: usize, mut r: Receipt) -> Receipt {
        r.addr = globalize_addr(shard as u32, r.addr);
        r
    }

    /// Test hook: runs `f` while every shard's append-side state mutex is
    /// held (acquired in ascending shard order — the service-wide lock
    /// order). The concurrency tests use this to prove the read path never
    /// acquires an append lock — readers must make progress inside `f`.
    #[doc(hidden)]
    pub fn while_append_locked<R>(&self, f: impl FnOnce() -> R) -> R {
        fn lock_all<R>(shards: &[Arc<Shard>], f: impl FnOnce() -> R) -> R {
            match shards.split_first() {
                None => f(),
                Some((s, rest)) => {
                    let _g = s.state.lock();
                    lock_all(rest, f)
                }
            }
        }
        lock_all(&self.shards, f)
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of independent append domains.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The volume sequence backing shard 0 (the catalog shard) — with a
    /// single-shard configuration, the service's only sequence. See
    /// [`LogService::shard_volumes`] for the others.
    #[must_use]
    pub fn volumes(&self) -> &Arc<VolumeSequence> {
        &self.shards[0].seq
    }

    /// The volume sequence backing shard `shard`, if it exists.
    #[must_use]
    pub fn shard_volumes(&self, shard: usize) -> Option<&Arc<VolumeSequence>> {
        self.shards.get(shard).map(|s| &s.seq)
    }

    /// The shared block cache (exposed for cache-behaviour experiments).
    #[must_use]
    pub fn cache(&self) -> Arc<BlockCache> {
        self.shards[0].seq.cache().clone()
    }

    // ------------------------------------------------------------------
    // Catalog operations (§2.2).
    // ------------------------------------------------------------------

    /// Creates a log file at `path`; every ancestor component must already
    /// exist (`create_log("/mail/smith")` needs `/mail`). The new log file
    /// is a sublog of its parent (§2.1). The creation is durably logged on
    /// the catalog shard, then propagated to the routed shard's slice.
    pub fn create_log(&self, path: &str) -> Result<LogFileId> {
        let start = clio_obs::clock::now();
        let r = self.create_log_inner(path);
        self.obs
            .note_create(r.as_ref().ok().copied(), start.elapsed(), r.is_ok());
        r
    }

    fn create_log_inner(&self, path: &str) -> Result<LogFileId> {
        // Validate the whole path up front so aliases like "//x" are
        // rejected rather than silently creating "/x".
        let trimmed = path
            .strip_prefix('/')
            .ok_or_else(|| ClioError::BadPath(path.to_owned()))?;
        if trimmed.is_empty() || trimmed.split('/').any(str::is_empty) {
            return Err(ClioError::BadPath(path.to_owned()));
        }
        let (parent_path, name) = match path.rfind('/') {
            Some(i) => (&path[..i], &path[i + 1..]),
            None => ("", path),
        };
        // Catalog-shard lock first, released before any other shard's is
        // taken: the service-wide order is ascending by shard index.
        let (id, rec) = self.shards[0].create_local(parent_path, name)?;
        let target = self.route_id(id);
        if target != 0 {
            self.shards[target].apply_replica(&rec)?;
        }
        Ok(id)
    }

    /// Resolves a path to a log file id (snapshot read; lock-free).
    pub fn resolve(&self, path: &str) -> Result<LogFileId> {
        self.shards[0].read_view().catalog.resolve(path)
    }

    /// The display path of a log file (snapshot read).
    pub fn path_of(&self, id: LogFileId) -> Result<String> {
        self.shards[0].read_view().catalog.path_of(id)
    }

    /// Names of the direct sublogs of `path` (snapshot read).
    pub fn list(&self, path: &str) -> Result<Vec<String>> {
        let view = self.shards[0].read_view();
        let id = view.catalog.resolve(path)?;
        let mut names: Vec<String> = view.catalog.children(id).map(|a| a.name.clone()).collect();
        names.retain(|n| !n.starts_with('.') && !n.is_empty());
        names.sort();
        Ok(names)
    }

    /// A snapshot of the attributes of `id`.
    pub fn attrs(&self, id: LogFileId) -> Result<clio_format::LogFileAttrs> {
        Ok(self.shards[0].read_view().catalog.attrs(id)?.clone())
    }

    /// Seals a log file against further appends.
    pub fn seal_log(&self, id: LogFileId) -> Result<()> {
        self.catalog_change(id, |cat| {
            cat.attrs(id)?;
            Ok(CatalogRecord::Seal { id })
        })
    }

    /// Changes a log file's permissions.
    pub fn set_perms(&self, id: LogFileId, perms: u16) -> Result<()> {
        self.catalog_change(id, |cat| {
            cat.attrs(id)?;
            Ok(CatalogRecord::SetPerms { id, perms })
        })
    }

    /// Renames a log file (its place in the hierarchy is unchanged).
    pub fn rename(&self, id: LogFileId, name: &str) -> Result<()> {
        self.catalog_change(id, |cat| {
            cat.attrs(id)?;
            let rec = CatalogRecord::Rename {
                id,
                name: name.to_owned(),
            };
            // Validate against a probe copy before logging.
            let mut probe = cat.clone();
            probe.apply(&rec)?;
            Ok(rec)
        })
    }

    /// Prepares a catalog record on the catalog shard (durably logged
    /// there), then propagates it to the shard `id` routes to. The two
    /// state locks are taken one at a time, catalog shard first.
    fn catalog_change(
        &self,
        id: LogFileId,
        prepare: impl FnOnce(&Catalog) -> Result<CatalogRecord>,
    ) -> Result<()> {
        let rec = self.shards[0].apply_catalog_change(prepare)?;
        let target = self.route_id(id);
        if target != 0 {
            self.shards[target].apply_replica(&rec)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Appending.
    // ------------------------------------------------------------------

    /// Appends `data` as one log entry of log file `id`, routed to the
    /// log file's shard.
    pub fn append(&self, id: LogFileId, data: &[u8], opts: AppendOpts) -> Result<Receipt> {
        let shard = self.route_id(id);
        self.shards[shard]
            .append(id, data, opts)
            .map(|r| Self::globalize_receipt(shard, r))
    }

    /// Appends to the log file named by `path`.
    pub fn append_path(&self, path: &str, data: &[u8], opts: AppendOpts) -> Result<Receipt> {
        let id = self.resolve(path)?;
        self.append(id, data, opts)
    }

    /// Forces any buffered entries to stable storage (§2.3.1), on every
    /// shard.
    pub fn flush(&self) -> Result<()> {
        for s in &self.shards {
            s.flush()?;
        }
        Ok(())
    }

    /// Seals every shard's open block outright (used by tests and volume
    /// hygiene), draining the sealed queues so the seals land on the
    /// devices.
    pub fn seal_current_block(&self) -> Result<()> {
        for s in &self.shards {
            s.seal_current_block()?;
        }
        Ok(())
    }

    /// Appends one entry per `(path, payload)` item, replying with all
    /// receipts in item order.
    ///
    /// Within one shard the items are staged under a single state-lock
    /// hold and a forced batch pays for **one** durability point covering
    /// every item. A batch spanning shards is *per-shard atomic*: each
    /// shard's sub-batch commits as one unit, shards are processed in
    /// ascending index order (catalog shard first), and an error leaves
    /// sub-batches on lower-indexed shards durable while later shards were
    /// never touched — there is no cross-shard rollback.
    pub fn append_batch(
        &self,
        items: &[(String, Vec<u8>)],
        opts: AppendOpts,
    ) -> Result<Vec<Receipt>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.shards.len() == 1 {
            return self.shards[0].append_batch(items, opts);
        }
        let view = self.shards[0].read_view();
        let mask = self.route_mask();
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (path, _)) in items.iter().enumerate() {
            let id = view.catalog.resolve(path)?;
            groups
                .entry(view.catalog.route(id, mask))
                .or_default()
                .push(i);
        }
        if groups.len() == 1 {
            let (&shard, _) = groups
                .iter()
                .next()
                .expect("invariant: a non-empty batch routes somewhere");
            let receipts = self.shards[shard].append_batch(items, opts)?;
            return Ok(receipts
                .into_iter()
                .map(|r| Self::globalize_receipt(shard, r))
                .collect());
        }
        let mut out: Vec<Option<Receipt>> = vec![None; items.len()];
        // BTreeMap iteration gives ascending shard order — the service-wide
        // cross-shard order. Each shard's lock is released before the next
        // shard's is taken.
        for (shard, idxs) in groups {
            let sub: Vec<(String, Vec<u8>)> = idxs.iter().map(|&i| items[i].clone()).collect();
            let receipts = self.shards[shard].append_batch(&sub, opts)?;
            for (r, &i) in receipts.into_iter().zip(&idxs) {
                out[i] = Some(Self::globalize_receipt(shard, r));
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("invariant: every batch item was routed to exactly one shard"))
            .collect())
    }

    /// The space-overhead report (§3.5), merged across shards.
    #[must_use]
    pub fn report(&self) -> SpaceReport {
        let mut stats = SpaceStats::default();
        for s in &self.shards {
            stats.merge(&s.space_stats());
        }
        stats.report()
    }

    // ------------------------------------------------------------------
    // Observability.
    // ------------------------------------------------------------------

    /// The service's observability state (registry, trace ring, shared
    /// device counters) — one instance shared by every shard.
    #[must_use]
    pub fn obs(&self) -> &Arc<ServiceObs> {
        &self.obs
    }

    /// The unified metrics registry (device, cache, core, space and
    /// recovery metrics all register here).
    #[must_use]
    pub fn metrics(&self) -> &Arc<clio_obs::MetricsRegistry> {
        self.obs.registry()
    }

    /// The full registry rendered in the Prometheus-style text format.
    /// Space gauges are refreshed from the live accounting first.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.obs.publish_space(&self.report());
        clio_obs::expo::render_prometheus(self.obs.registry())
    }

    /// The full registry rendered as pretty-printed JSON.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.obs.publish_space(&self.report());
        clio_obs::expo::render_json(self.obs.registry())
    }

    /// A text dump of the op trace ring (most recent operations last).
    #[must_use]
    pub fn trace_dump(&self) -> String {
        self.obs.trace().dump()
    }

    /// The trace ring's surviving spans as compact JSON trees (the body
    /// of the HTTP endpoint's `GET /trace`).
    #[must_use]
    pub fn trace_json(&self) -> String {
        self.obs.trace().trace_json().encode()
    }
}
