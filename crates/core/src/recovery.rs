//! Server initialization and crash recovery (§2.3.1, §3.4).
//!
//! "If a file server crashes, we assume that the contents of its RAM memory
//! are lost. On reboot, the log service, for each mounted volume, must
//! reconstruct its cached knowledge of the log files that are maintained on
//! this volume." The three steps:
//!
//! 1. locate the most recently written block (device query or binary
//!    search) — done by the volume layer at mount;
//! 2. examine recently-written blocks to reconstruct missing entrymap
//!    information — [`clio_entrymap::rebuild`]; corrupt blocks discovered
//!    here are invalidated (§2.3.2);
//! 3. read the catalog log file to rebuild the log-file descriptors —
//!    each successor volume starts with a catalog checkpoint, so replay is
//!    bounded to the newest volume that has one.

use std::sync::Arc;

use clio_cache::BlockCache;
use clio_device::SharedDevice;
use clio_entrymap::{rebuild_pending_with_findings, BlockSource, Locator, PendingMaps};
use clio_format::records::CatalogRecord;
use clio_format::{BlockView, FragKind};
use clio_types::{Clock, LogFileId, Result};
use clio_volume::{DevicePool, Volume, VolumeSequence};

use crate::catalog::Catalog;
use crate::config::ServiceConfig;
use crate::service::LogService;

/// What recovery did, for reporting and the Figure 4 harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Volumes mounted.
    pub volumes: u32,
    /// `is_written` probes spent locating ends (0 with direct end query).
    pub end_probes: u64,
    /// Blocks examined to reconstruct entrymap information (§3.4 step 2).
    pub rebuild_blocks_read: u64,
    /// Corrupt blocks invalidated, as (volume index, data block).
    pub invalidated: Vec<(u32, u64)>,
    /// Catalog records replayed (§3.4 step 3).
    pub catalog_records: u64,
    /// Wall-clock µs spent mounting volumes and locating written ends
    /// (§3.4 step 1).
    pub end_locate_us: u64,
    /// Wall-clock µs spent rebuilding entrymap pending state (step 2).
    pub rebuild_us: u64,
    /// Wall-clock µs spent collecting and replaying the catalog (step 3).
    pub catalog_us: u64,
    /// Wall-clock µs for the whole recovery, phases included.
    pub total_us: u64,
}

/// A bare per-volume source (no open block — the crash destroyed it).
struct RawSource {
    vol: Arc<Volume>,
    fanout: usize,
}

impl BlockSource for RawSource {
    fn fanout(&self) -> usize {
        self.fanout
    }

    fn data_end(&self) -> u64 {
        self.vol.data_end()
    }

    fn read(&self, db: u64) -> Result<std::sync::Arc<Vec<u8>>> {
        self.vol.read_data_block(db)
    }
}

impl LogService {
    /// Recovers a service from the devices of an existing volume sequence.
    pub fn recover(
        devices: Vec<SharedDevice>,
        pool: Arc<dyn DevicePool>,
        cfg: ServiceConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<(LogService, RecoveryReport)> {
        let recover_start = clio_obs::clock::now();
        let obs = crate::obs::ServiceObs::new(cfg.trace_events);
        let mut recover_span = obs.span("recover");
        let devices: Vec<SharedDevice> = devices
            .into_iter()
            .map(|d| obs.instrument_device(d))
            .collect();
        let pool = Arc::new(crate::obs::InstrumentingPool::new(pool, obs.clone()));
        let cache = Arc::new(BlockCache::with_shards(cfg.cache_blocks, cfg.cache_shards));
        let locate_span = obs.span("end_locate");
        let seq = Arc::new(VolumeSequence::open(devices, cache, pool, 0)?);
        drop(locate_span);
        let end_locate_us = elapsed_us(recover_start);
        // Geometry is defined by the volume labels, not the passed config.
        let mut cfg = cfg;
        cfg.block_size = seq.block_size();
        cfg.fanout = seq.fanout();
        let fanout = usize::from(cfg.fanout);

        let mut report = RecoveryReport {
            volumes: seq.volume_count(),
            end_locate_us,
            ..RecoveryReport::default()
        };

        // Step 2: rebuild entrymap pending state per volume, invalidating
        // corrupt blocks as they are discovered.
        let rebuild_start = clio_obs::clock::now();
        let rebuild_span = obs.span("rebuild");
        let mut pendings: Vec<PendingMaps> = Vec::new();
        for v in 0..seq.volume_count() {
            let vol = seq.volume(v)?;
            report.end_probes += vol.end_probes();
            let src = RawSource {
                vol: vol.clone(),
                fanout,
            };
            let (pending, stats, findings) = rebuild_pending_with_findings(&src)?;
            report.rebuild_blocks_read += stats.blocks_read;
            for db in findings.corrupt {
                vol.invalidate_data_block(db)?;
                report.invalidated.push((v, db));
            }
            pendings.push(pending);
        }
        drop(rebuild_span);
        report.rebuild_us = elapsed_us(rebuild_start);

        // Step 3: rebuild the catalog. Find the newest volume whose catalog
        // entries include a checkpoint and replay from there.
        let catalog_start = clio_obs::clock::now();
        let catalog_span = obs.span("catalog");
        let mut per_volume: Vec<Vec<CatalogRecord>> = Vec::new();
        for v in 0..seq.volume_count() {
            let vol = seq.volume(v)?;
            let src = RawSource { vol, fanout };
            per_volume.push(collect_catalog_records(&src, pendings.get(v as usize))?);
        }
        let mut start = 0usize;
        for (v, recs) in per_volume.iter().enumerate().rev() {
            if recs
                .iter()
                .any(|r| matches!(r, CatalogRecord::Checkpoint { .. }))
            {
                start = v;
                break;
            }
        }
        let mut catalog = Catalog::new();
        for recs in &per_volume[start..] {
            for rec in recs {
                report.catalog_records += 1;
                catalog.apply(rec)?;
            }
        }
        drop(catalog_span);
        report.catalog_us = elapsed_us(catalog_start);

        let active_pending = pendings.pop();
        let svc = LogService::assemble(
            seq,
            cfg,
            clock,
            obs.clone(),
            catalog,
            pendings,
            active_pending,
        );
        // Queue bad-block records for invalidated blocks on the active
        // volume; older volumes are closed and their losses only reported.
        {
            let mut st = svc.state.lock();
            let active = st.active_index;
            for (v, db) in &report.invalidated {
                if *v == active {
                    st.pending_badblocks.push(*db);
                }
            }
        }
        // Phases are floored to 1µs each; keep `sum of phases <= total`
        // invariant even when the clock granularity swallows a phase.
        report.total_us = elapsed_us(recover_start)
            .max(report.end_locate_us + report.rebuild_us + report.catalog_us);
        recover_span.attr("volumes", u64::from(report.volumes));
        recover_span.attr("blocks_read", report.rebuild_blocks_read);
        drop(recover_span);
        svc.obs.publish_recovery(&report);
        Ok((svc, report))
    }
}

/// Microseconds since `start`, at least 1 so phase timings are visibly
/// populated even when a phase completes within the clock granularity.
fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}

/// Collects the decoded catalog records of one volume, in log order,
/// reassembling fragmented records (checkpoints can span blocks).
fn collect_catalog_records<S: BlockSource>(
    src: &S,
    pending: Option<&PendingMaps>,
) -> Result<Vec<CatalogRecord>> {
    let ids = [LogFileId::CATALOG];
    let mut out = Vec::new();
    let mut db = 0u64;
    let end = src.data_end();
    let mut loc = Locator::new(src, pending);
    while db < end {
        let Some(at) = loc.locate_at_or_after(&ids, db)? else {
            break;
        };
        let img = src.read(at)?;
        if let Ok(view) = BlockView::parse(&img) {
            for e in view.entries() {
                let Ok(e) = e else { break };
                if e.header.id != LogFileId::CATALOG
                    || matches!(e.header.frag, FragKind::Continuation { .. })
                {
                    continue;
                }
                let payload = match e.header.frag {
                    FragKind::Whole => e.payload.to_vec(),
                    FragKind::First { total_len, chain } => {
                        match reassemble(src, at, e.header.id, chain, e.payload, total_len as usize)
                        {
                            Some(p) => p,
                            None => continue, // fragments lost to corruption
                        }
                    }
                    FragKind::Continuation { .. } => unreachable!("filtered above"),
                };
                if let Ok(rec) = CatalogRecord::decode(&payload) {
                    out.push(rec);
                }
            }
        }
        db = at + 1;
    }
    Ok(out)
}

/// Reads continuation fragments following block `at` until `total` bytes.
fn reassemble<S: BlockSource>(
    src: &S,
    at: u64,
    id: LogFileId,
    chain: u32,
    first: &[u8],
    total: usize,
) -> Option<Vec<u8>> {
    let mut data = first.to_vec();
    let mut db = at + 1;
    let mut skipped = 0u32;
    while data.len() < total {
        if db >= src.data_end() || skipped > 4 {
            return None;
        }
        let img = src.read(db).ok()?;
        match BlockView::parse(&img) {
            Ok(view) => {
                let mut found = false;
                for e in view.entries() {
                    let Ok(e) = e else { break };
                    if e.header.frag == (FragKind::Continuation { chain }) && e.header.id == id {
                        data.extend_from_slice(e.payload);
                        found = true;
                        break;
                    }
                }
                if !found {
                    return None; // torn chain
                }
                skipped = 0;
            }
            Err(_) => skipped += 1,
        }
        db += 1;
    }
    (data.len() == total).then_some(data)
}
