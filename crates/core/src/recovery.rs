//! Server initialization and crash recovery (§2.3.1, §3.4).
//!
//! "If a file server crashes, we assume that the contents of its RAM memory
//! are lost. On reboot, the log service, for each mounted volume, must
//! reconstruct its cached knowledge of the log files that are maintained on
//! this volume." The three steps:
//!
//! 1. locate the most recently written block (device query or binary
//!    search) — done by the volume layer at mount;
//! 2. examine recently-written blocks to reconstruct missing entrymap
//!    information — [`clio_entrymap::rebuild`]; corrupt blocks discovered
//!    here are invalidated (§2.3.2);
//! 3. read the catalog log file to rebuild the log-file descriptors —
//!    each successor volume starts with a catalog checkpoint, so replay is
//!    bounded to the newest volume that has one.
//!
//! # Sharding
//!
//! The surviving devices are regrouped into their append domains by the
//! volume labels: every device of one shard's volume sequence carries that
//! sequence's id, and the service created shard `i` on sequence `base + i`,
//! so grouping by sequence id and sorting ascending reproduces the shard
//! layout with no external metadata. Steps 1 and 2 then run per shard.
//! Step 3 runs only on shard 0 — the catalog shard holds the only durable
//! catalog log (slices are applied, never logged, on the other shards) —
//! and each non-zero shard's catalog slice is re-derived from the replayed
//! full catalog. The per-shard findings are joined into one
//! [`RecoveryReport`] with shard-globalized volume indexes.

use std::collections::BTreeMap;
use std::sync::Arc;

use clio_cache::BlockCache;
use clio_device::SharedDevice;
use clio_entrymap::{rebuild_pending_with_findings, BlockSource, Locator, PendingMaps};
use clio_format::records::CatalogRecord;
use clio_format::{BlockView, FragKind, VolumeLabel};
use clio_types::{BlockNo, Clock, LogFileId, Result};
use clio_volume::{DevicePool, Volume, VolumeSequence};

use crate::catalog::Catalog;
use crate::config::ServiceConfig;
use crate::service::{
    LogService, Shard, ShardSeed, DEVICE_ID_SHIFT, LOCAL_VOLUME_MASK, SHARD_SHIFT,
};

/// What recovery did, for reporting and the Figure 4 harness. Joined
/// across shards: counters and phase timings are sums, volume indexes in
/// `invalidated` are shard-globalized (shard in the high bits, like
/// `EntryAddr`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Volumes mounted, across all shards.
    pub volumes: u32,
    /// `is_written` probes spent locating ends (0 with direct end query).
    pub end_probes: u64,
    /// Blocks examined to reconstruct entrymap information (§3.4 step 2).
    pub rebuild_blocks_read: u64,
    /// Corrupt blocks invalidated, as (globalized volume index, data block).
    pub invalidated: Vec<(u32, u64)>,
    /// Catalog records replayed (§3.4 step 3; catalog shard only).
    pub catalog_records: u64,
    /// Wall-clock µs spent mounting volumes and locating written ends
    /// (§3.4 step 1).
    pub end_locate_us: u64,
    /// Wall-clock µs spent rebuilding entrymap pending state (step 2).
    pub rebuild_us: u64,
    /// Wall-clock µs spent collecting and replaying the catalog (step 3).
    pub catalog_us: u64,
    /// Wall-clock µs for the whole recovery, phases included.
    pub total_us: u64,
}

/// A bare per-volume source (no open block — the crash destroyed it).
struct RawSource {
    vol: Arc<Volume>,
    fanout: usize,
}

impl BlockSource for RawSource {
    fn fanout(&self) -> usize {
        self.fanout
    }

    fn data_end(&self) -> u64 {
        self.vol.data_end()
    }

    fn read(&self, db: u64) -> Result<std::sync::Arc<Vec<u8>>> {
        self.vol.read_data_block(db)
    }
}

impl LogService {
    /// Recovers a service from the surviving devices of its volume
    /// sequences (any order, any mix of shards). The shard count is read
    /// back from the media — `cfg.shards` is ignored here.
    pub fn recover(
        devices: Vec<SharedDevice>,
        pool: Arc<dyn DevicePool>,
        cfg: ServiceConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<(LogService, RecoveryReport)> {
        let recover_start = clio_obs::clock::now();
        let obs = crate::obs::ServiceObs::new(cfg.trace_events);
        let mut recover_span = obs.span("recover");
        let devices: Vec<SharedDevice> = devices
            .into_iter()
            .map(|d| obs.instrument_device(d))
            .collect();
        let pool = Arc::new(crate::obs::InstrumentingPool::new(pool, obs.clone()));
        let cache = Arc::new(BlockCache::with_shards(cfg.cache_blocks, cfg.cache_shards));
        obs.attach_cache(&cache);

        // Step 1: regroup the devices into their shards' volume sequences
        // by label, then mount each sequence (which locates written ends).
        let locate_span = obs.span("end_locate");
        let mut groups: BTreeMap<u64, Vec<SharedDevice>> = BTreeMap::new();
        for dev in devices {
            let mut buf = vec![0u8; dev.block_size()];
            dev.read_block(BlockNo(0), &mut buf)?;
            let label = VolumeLabel::decode(&buf)?;
            groups.entry(label.sequence.0).or_default().push(dev);
        }
        let mut cfg = cfg;
        cfg.shards = groups.len().max(1);
        cfg.validate()?;
        let mut seqs: Vec<Arc<VolumeSequence>> = Vec::with_capacity(groups.len());
        for (i, devs) in groups.into_values().enumerate() {
            seqs.push(Arc::new(VolumeSequence::open(
                devs,
                cache.clone(),
                pool.clone(),
                (i as u32) << DEVICE_ID_SHIFT,
            )?));
        }
        drop(locate_span);
        let end_locate_us = elapsed_us(recover_start);
        // Geometry is defined by the volume labels, not the passed config.
        cfg.block_size = seqs[0].block_size();
        cfg.fanout = seqs[0].fanout();
        let fanout = usize::from(cfg.fanout);

        let mut report = RecoveryReport {
            volumes: seqs.iter().map(|s| s.volume_count()).sum(),
            end_locate_us,
            ..RecoveryReport::default()
        };

        // Step 2: rebuild entrymap pending state per volume of every
        // shard, invalidating corrupt blocks as they are discovered.
        let rebuild_start = clio_obs::clock::now();
        let rebuild_span = obs.span("rebuild");
        let mut shard_pendings: Vec<Vec<PendingMaps>> = Vec::with_capacity(seqs.len());
        for (idx, seq) in seqs.iter().enumerate() {
            let mut pendings: Vec<PendingMaps> = Vec::new();
            for v in 0..seq.volume_count() {
                let vol = seq.volume(v)?;
                report.end_probes += vol.end_probes();
                let src = RawSource {
                    vol: vol.clone(),
                    fanout,
                };
                let (pending, stats, findings) = rebuild_pending_with_findings(&src)?;
                report.rebuild_blocks_read += stats.blocks_read;
                for db in findings.corrupt {
                    vol.invalidate_data_block(db)?;
                    report
                        .invalidated
                        .push((((idx as u32) << SHARD_SHIFT) | v, db));
                }
                pendings.push(pending);
            }
            shard_pendings.push(pendings);
        }
        drop(rebuild_span);
        report.rebuild_us = elapsed_us(rebuild_start);

        // Step 3: rebuild the catalog from the catalog shard (the only
        // durable catalog log). Find the newest volume whose catalog
        // entries include a checkpoint and replay from there.
        let catalog_start = clio_obs::clock::now();
        let catalog_span = obs.span("catalog");
        let mut per_volume: Vec<Vec<CatalogRecord>> = Vec::new();
        for v in 0..seqs[0].volume_count() {
            let vol = seqs[0].volume(v)?;
            let src = RawSource { vol, fanout };
            per_volume.push(collect_catalog_records(
                &src,
                shard_pendings[0].get(v as usize),
            )?);
        }
        let mut start = 0usize;
        for (v, recs) in per_volume.iter().enumerate().rev() {
            if recs
                .iter()
                .any(|r| matches!(r, CatalogRecord::Checkpoint { .. }))
            {
                start = v;
                break;
            }
        }
        let mut catalog = Catalog::new();
        for recs in &per_volume[start..] {
            for rec in recs {
                report.catalog_records += 1;
                catalog.apply(rec)?;
            }
        }
        drop(catalog_span);
        report.catalog_us = elapsed_us(catalog_start);

        // Join: assemble every shard — the catalog shard with the replayed
        // full catalog, the others with their slice of it (their own
        // catalog logs hold only checkpoints of older slices).
        let mask = seqs.len() - 1;
        let mut shards: Vec<Arc<Shard>> = Vec::with_capacity(seqs.len());
        for (idx, seq) in seqs.iter().enumerate() {
            let shard_catalog = if idx == 0 {
                catalog.clone()
            } else {
                catalog.slice(idx, mask)
            };
            let mut pendings = std::mem::take(&mut shard_pendings[idx]);
            let active_pending = pendings.pop();
            let shard = Arc::new(Shard::assemble(
                idx as u32,
                seq.clone(),
                cfg.clone(),
                clock.clone(),
                obs.clone(),
                ShardSeed {
                    catalog: shard_catalog,
                    sealed_pendings: pendings,
                    active_pending,
                },
            ));
            // Queue bad-block records for invalidated blocks on this
            // shard's active volume; older volumes are closed and their
            // losses only reported.
            {
                let mut st = shard.state.lock();
                let active = st.active_index;
                for (gv, db) in &report.invalidated {
                    if (gv >> SHARD_SHIFT) as usize == idx && gv & LOCAL_VOLUME_MASK == active {
                        st.pending_badblocks.push(*db);
                    }
                }
            }
            shards.push(shard);
        }

        // Phases are floored to 1µs each; keep `sum of phases <= total`
        // invariant even when the clock granularity swallows a phase.
        report.total_us = elapsed_us(recover_start)
            .max(report.end_locate_us + report.rebuild_us + report.catalog_us);
        recover_span.attr("volumes", u64::from(report.volumes));
        recover_span.attr("shards", shards.len() as u64);
        recover_span.attr("blocks_read", report.rebuild_blocks_read);
        drop(recover_span);
        obs.publish_recovery(&report);
        let svc = LogService { shards, cfg, obs };
        Ok((svc, report))
    }
}

/// Microseconds since `start`, at least 1 so phase timings are visibly
/// populated even when a phase completes within the clock granularity.
fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}

/// Collects the decoded catalog records of one volume, in log order,
/// reassembling fragmented records (checkpoints can span blocks).
fn collect_catalog_records<S: BlockSource>(
    src: &S,
    pending: Option<&PendingMaps>,
) -> Result<Vec<CatalogRecord>> {
    let ids = [LogFileId::CATALOG];
    let mut out = Vec::new();
    let mut db = 0u64;
    let end = src.data_end();
    let mut loc = Locator::new(src, pending);
    while db < end {
        let Some(at) = loc.locate_at_or_after(&ids, db)? else {
            break;
        };
        let img = src.read(at)?;
        if let Ok(view) = BlockView::parse(&img) {
            for e in view.entries() {
                let Ok(e) = e else { break };
                if e.header.id != LogFileId::CATALOG
                    || matches!(e.header.frag, FragKind::Continuation { .. })
                {
                    continue;
                }
                let payload = match e.header.frag {
                    FragKind::Whole => e.payload.to_vec(),
                    FragKind::First { total_len, chain } => {
                        match reassemble(src, at, e.header.id, chain, e.payload, total_len as usize)
                        {
                            Some(p) => p,
                            None => continue, // fragments lost to corruption
                        }
                    }
                    FragKind::Continuation { .. } => unreachable!("filtered above"),
                };
                if let Ok(rec) = CatalogRecord::decode(&payload) {
                    out.push(rec);
                }
            }
        }
        db = at + 1;
    }
    Ok(out)
}

/// Reads continuation fragments following block `at` until `total` bytes.
fn reassemble<S: BlockSource>(
    src: &S,
    at: u64,
    id: LogFileId,
    chain: u32,
    first: &[u8],
    total: usize,
) -> Option<Vec<u8>> {
    let mut data = first.to_vec();
    let mut db = at + 1;
    let mut skipped = 0u32;
    while data.len() < total {
        if db >= src.data_end() || skipped > 4 {
            return None;
        }
        let img = src.read(db).ok()?;
        match BlockView::parse(&img) {
            Ok(view) => {
                let mut found = false;
                for e in view.entries() {
                    let Ok(e) = e else { break };
                    if e.header.frag == (FragKind::Continuation { chain }) && e.header.id == id {
                        data.extend_from_slice(e.payload);
                        found = true;
                        break;
                    }
                }
                if !found {
                    return None; // torn chain
                }
                skipped = 0;
            }
            Err(_) => skipped += 1,
        }
        db += 1;
    }
    (data.len() == total).then_some(data)
}
