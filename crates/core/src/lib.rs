#![warn(missing_docs)]
//! The Clio log service (the paper's primary contribution).
//!
//! [`LogService`] provides *log files*: "special readable, append-only files
//! that are accessed in the same way as regular (rewriteable) files" (§1),
//! implemented on write-once log devices. The service is structured exactly
//! as the paper describes:
//!
//! - entries are appended through a per-block builder and tagged with tiny
//!   headers, sizes living in the end-of-block index (§2.2);
//! - the entrymap log file (emitted by [`mod@write`]) forms the degree-`N`
//!   search tree that [`read`]'s cursors use to locate entries (§2.1);
//! - log-file attributes live in the catalog log file, replayed into the
//!   in-memory [`catalog::Catalog`] (§2.2);
//! - sublogs embed the file-naming hierarchy: `/mail/smith` names a log
//!   file whose entries are also entries of `/mail` (§2.1);
//! - forced writes either seal a partial block on pure WORM devices or
//!   stage it in battery-backed RAM (§2.3.1);
//! - [`recovery`] re-derives every piece of volatile state from the written
//!   prefix of the volume sequence (§2.3.1), tolerating corrupt blocks by
//!   invalidation (§2.3.2);
//! - [`server`] puts the service behind a message boundary like the
//!   V-System file server the authors extended (§3.2);
//! - [`uio`] is the uniform I/O interface over both log files and
//!   conventional files (§6, the paper's reference \[3\]).

pub mod catalog;
pub mod config;
pub mod obs;
pub mod read;
pub mod recovery;
pub mod server;
pub mod service;
pub mod stats;
pub mod uio;
pub mod write;

pub use catalog::Catalog;
pub use config::ServiceConfig;
pub use obs::ServiceObs;
pub use read::{Entry, LogCursor};
pub use service::{AppendOpts, Durability, LogService};
pub use stats::SpaceReport;
pub use uio::{Uio, UioSeek};
