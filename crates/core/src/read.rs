//! Reading log files: entry reassembly, cursors, time and unique-id lookup.
//!
//! "When a log file is opened for reading, access can be provided to the
//! sequence of entries in the file either subsequent to, or prior to, any
//! previous point in time" (§2). A [`LogCursor`] walks the entries of a log
//! file — including all its sublogs (§2.1) — in either direction, using the
//! entrymap tree to hop over blocks without relevant entries, and the
//! timestamp search (§2.1) to start from a point in time.
//!
//! # Concurrency
//!
//! The medium is write-once: every sealed block is immutable forever, so
//! reads need no coordination with the appender at all. Every operation
//! here runs against an immutable [`ReadView`] snapshot published by the
//! append path — the append-side state mutex is **never** acquired, and no
//! lock is held across device I/O. Cursors pin their snapshots at creation
//! and refresh only on crossing a snapshot's watermark (reaching the end),
//! which is also what lets cursors tail a growing log.
//!
//! # Sharding
//!
//! A log file's entries all live on one shard (routing is by top-level
//! ancestor, and a sublog closure never crosses shards), so most cursors
//! have a single shard-level part. A cursor over a path whose closure
//! *does* span shards — only the root `/` can — walks its parts in
//! ascending shard order: entries come back shard by shard, in log order
//! within each shard, with no global time ordering across shards.

use std::sync::Arc;

use clio_entrymap::tsearch;
use clio_entrymap::{BlockSource, Locator, PendingMaps};
use clio_format::{BlockView, FragKind};
use clio_types::{BlockNo, ClioError, EntryAddr, LogFileId, Result, SeqNo, Timestamp};
use clio_volume::Volume;

use crate::service::{globalize_addr, LogService, ReadView, Shard};

/// A fully reassembled log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Where the entry (its first fragment) lives.
    pub addr: EntryAddr,
    /// The log file the entry was tagged with (its most specific sublog).
    pub id: LogFileId,
    /// The service timestamp from the header, if the entry carried one.
    pub timestamp: Option<Timestamp>,
    /// The client sequence number, if the entry carried one.
    pub seqno: Option<SeqNo>,
    /// The mandatory first-entry timestamp of the entry's block — the
    /// fallback time resolution for untimestamped entries (§2.1).
    pub block_ts: Timestamp,
    /// The client payload.
    pub data: Vec<u8>,
}

impl Entry {
    /// The entry's best-known write time: its own timestamp, or its
    /// block's.
    #[must_use]
    pub fn effective_ts(&self) -> Timestamp {
        self.timestamp.unwrap_or(self.block_ts)
    }
}

/// A per-volume [`BlockSource`] over one snapshot: the volume's sealed
/// blocks plus (for the active volume) the snapshot's frozen open-block
/// image and `data_end` watermark.
pub(crate) struct VolSource {
    vol: Arc<Volume>,
    open: Option<(u64, Arc<Vec<u8>>)>,
    /// Blocks sealed in memory but not yet written to the device (the
    /// snapshot's group-commit queue), ordered by data block. Served like
    /// sealed blocks; they sit past the device watermark.
    queued: Vec<(u64, Arc<Vec<u8>>)>,
    /// The snapshot's sealed-data watermark for the active volume; sealed
    /// volumes read their (final, immutable) device value instead.
    watermark: Option<u64>,
    fanout: usize,
}

impl VolSource {
    /// The open (unsealed) block's number, if this source covers one. Its
    /// entries are not yet reflected in any entrymap bitmap — the writer
    /// notes a block only when it seals — so scans must visit it
    /// explicitly.
    fn open_db(&self) -> Option<u64> {
        self.open.as_ref().map(|(db, _)| *db)
    }
}

impl BlockSource for VolSource {
    fn fanout(&self) -> usize {
        self.fanout
    }

    fn data_end(&self) -> u64 {
        let mut end = self.watermark.unwrap_or_else(|| self.vol.data_end());
        if let Some((db, _)) = self.queued.last() {
            end = end.max(db + 1);
        }
        match &self.open {
            Some((db, _)) => end.max(db + 1),
            None => end,
        }
    }

    fn read(&self, db: u64) -> Result<Arc<Vec<u8>>> {
        if let Some((odb, img)) = &self.open {
            if *odb == db {
                return Ok(img.clone());
            }
        }
        if let Ok(i) = self.queued.binary_search_by_key(&db, |(qdb, _)| *qdb) {
            return Ok(self.queued[i].1.clone());
        }
        self.vol.read_data_block(db)
    }
}

impl Shard {
    /// A block source over one volume of the snapshot, including the open
    /// block when the volume is active.
    pub(crate) fn source_for(&self, view: &ReadView, vol_idx: u32) -> Result<VolSource> {
        let vol = self.seq.volume(vol_idx)?;
        let (open, queued, watermark) = if vol_idx == view.active_index {
            (
                view.open.clone(),
                view.queued.clone(),
                Some(view.active_data_end),
            )
        } else {
            (None, Vec::new(), None)
        };
        Ok(VolSource {
            vol,
            open,
            queued,
            watermark,
            fanout: usize::from(self.cfg.fanout),
        })
    }

    /// The pending maps to search a volume's unmapped tail with, borrowed
    /// from the snapshot (no clone, no lock).
    pub(crate) fn pending_for<'v>(
        &self,
        view: &'v ReadView,
        vol_idx: u32,
    ) -> Option<&'v PendingMaps> {
        if vol_idx == view.active_index {
            Some(&view.active_pending)
        } else {
            view.sealed_pendings.get(vol_idx as usize)
        }
    }

    /// Reads and reassembles the entry at the shard-local `addr` (lock-free:
    /// operates on the current read snapshot). Records the read span and
    /// metrics.
    pub(crate) fn read_entry(&self, addr: EntryAddr) -> Result<Entry> {
        let start = clio_obs::clock::now();
        let before = self.obs.device_stats.snapshot().reads;
        let mut span = self.obs.span("read");
        let view = self.read_view();
        let r = self.read_entry_in(&view, addr);
        let blocks = self
            .obs
            .device_stats
            .snapshot()
            .reads
            .saturating_sub(before);
        if let Ok(e) = r.as_ref() {
            span.set_target(u64::from(e.id.0));
        }
        span.attr("blocks", blocks);
        if r.is_err() {
            span.fail("error");
        }
        drop(span);
        self.obs
            .note_read(r.as_ref().ok().map(|e| e.id), start.elapsed(), r.is_ok());
        r
    }

    pub(crate) fn read_entry_in(&self, view: &ReadView, addr: EntryAddr) -> Result<Entry> {
        let src = self.source_for(view, addr.volume_index)?;
        let mut db = addr.block.0;
        let mut img = src.read(db)?;
        if BlockView::is_invalidated(&img) {
            // The block was invalidated after this address was issued; with
            // append verification its contents were re-placed in a following
            // block at the same slot (best effort, §2.3.2).
            let mut found = None;
            for cand in db + 1..(db + 4).min(src.data_end()) {
                let ci = src.read(cand)?;
                if let Ok(v) = BlockView::parse(&ci) {
                    if v.count() > addr.slot {
                        found = Some((cand, ci));
                        break;
                    }
                }
            }
            (db, img) = found.ok_or_else(|| ClioError::NotFound(format!("entry {addr}")))?;
        }
        let view_blk = BlockView::parse(&img)?;
        let first = view_blk.entry(addr.slot)?;
        let header = first.header;
        let block_ts = view_blk.first_ts();
        let mut data = first.payload.to_vec();
        if let FragKind::First { total_len, chain } = header.frag {
            // Reassemble continuation fragments from following blocks.
            // Continuations are written in the immediately following
            // blocks; unparseable blocks (invalidated, §2.3.2) are skipped
            // within a small window, but a readable block without the next
            // piece means the chain is torn — the entry does not exist.
            let total = total_len as usize;
            let mut at = db + 1;
            let mut skipped = 0u32;
            while data.len() < total {
                if at >= src.data_end() || skipped > 4 {
                    return Err(ClioError::NotFound(format!(
                        "fragments of entry {addr} missing past block {at}"
                    )));
                }
                let ci = src.read(at)?;
                match BlockView::parse(&ci) {
                    Ok(v) => {
                        let mut found = false;
                        for e in v.entries() {
                            let Ok(e) = e else { break };
                            if e.header.frag == (FragKind::Continuation { chain })
                                && e.header.id == header.id
                            {
                                data.extend_from_slice(e.payload);
                                found = true;
                                break;
                            }
                        }
                        if !found {
                            return Err(ClioError::NotFound(format!(
                                "fragment chain of entry {addr} broken at block {at}"
                            )));
                        }
                        skipped = 0;
                    }
                    Err(_) => skipped += 1,
                }
                at += 1;
            }
            if data.len() != total {
                return Err(ClioError::BadRecord("fragment reassembly size mismatch"));
            }
        } else if matches!(header.frag, FragKind::Continuation { .. }) {
            return Err(ClioError::BadRecord(
                "address points at a continuation fragment",
            ));
        }
        Ok(Entry {
            addr: EntryAddr::new(addr.volume_index, BlockNo(db), addr.slot),
            id: header.id,
            timestamp: header.timestamp,
            seqno: header.seqno,
            block_ts,
            data,
        })
    }

    /// Scans forward from `(vol, db, slot)` for the next entry of `ids`,
    /// honouring `floor` (skip entries before that time) when set.
    pub(crate) fn scan_forward(
        &self,
        view: &ReadView,
        ids: &[LogFileId],
        start: (u32, u64, u16),
        floor: Option<Timestamp>,
    ) -> Result<Option<Entry>> {
        let (mut vol_idx, mut db, mut slot) = start;
        // The snapshot covers volumes 0..=active_index.
        let vol_count = view.active_index + 1;
        while vol_idx < vol_count {
            let src = self.source_for(view, vol_idx)?;
            let end = src.data_end();
            while db < end {
                if let Ok(img) = src.read(db) {
                    if let Ok(blk) = BlockView::parse(&img) {
                        for e in blk.entries() {
                            let Ok(e) = e else { break };
                            if e.slot < slot
                                || !ids.contains(&e.header.id)
                                || matches!(e.header.frag, FragKind::Continuation { .. })
                            {
                                continue;
                            }
                            let eff = e.header.timestamp.unwrap_or_else(|| blk.first_ts());
                            if floor.is_some_and(|f| eff < f) {
                                continue;
                            }
                            let addr = EntryAddr::new(vol_idx, BlockNo(db), e.slot);
                            match self.read_entry_in(view, addr) {
                                Ok(entry) => return Ok(Some(entry)),
                                // A fragmented entry whose continuation was
                                // lost (torn by a crash, or destroyed by
                                // §2.3.2 corruption) is treated as absent.
                                Err(ClioError::NotFound(_)) => continue,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
                // Nothing (left) in this block: hop to the next block with
                // entries of ours via the entrymap tree. The open block is
                // invisible to the entrymap (it has not been noted yet), so
                // visit it explicitly when the tree finds nothing.
                let pending = self.pending_for(view, vol_idx);
                let mut loc = Locator::new(&src, pending);
                let t = clio_obs::clock::now();
                let hop = loc.locate_at_or_after(ids, db + 1)?;
                self.obs
                    .note_locate(ids.first().copied(), &loc.stats, t.elapsed());
                match hop {
                    Some(nb) => {
                        db = nb;
                        slot = 0;
                    }
                    None => match src.open_db() {
                        Some(odb) if odb > db => {
                            db = odb;
                            slot = 0;
                        }
                        _ => break,
                    },
                }
            }
            vol_idx += 1;
            db = 0;
            slot = 0;
        }
        Ok(None)
    }

    /// Scans backward for the last entry of `ids` strictly before
    /// `(vol, db, slot)` (slot `u16::MAX` means "from the end of block
    /// `db`"; `db == u64::MAX` means "from the end of the volume").
    pub(crate) fn scan_backward(
        &self,
        view: &ReadView,
        ids: &[LogFileId],
        before: (u32, u64, u16),
    ) -> Result<Option<Entry>> {
        let (mut vol_idx, mut db, mut slot_excl) = before;
        loop {
            let src = self.source_for(view, vol_idx)?;
            let end = src.data_end();
            if end > 0 {
                if db >= end {
                    db = end - 1;
                    slot_excl = u16::MAX;
                }
                loop {
                    if let Ok(img) = src.read(db) {
                        if let Ok(blk) = BlockView::parse(&img) {
                            let mut best: Option<u16> = None;
                            for e in blk.entries() {
                                let Ok(e) = e else { break };
                                if e.slot < slot_excl
                                    && ids.contains(&e.header.id)
                                    && !matches!(e.header.frag, FragKind::Continuation { .. })
                                {
                                    best = Some(e.slot);
                                }
                            }
                            while let Some(s) = best {
                                let addr = EntryAddr::new(vol_idx, BlockNo(db), s);
                                match self.read_entry_in(view, addr) {
                                    Ok(entry) => return Ok(Some(entry)),
                                    // Torn/lost fragments: fall back to the
                                    // previous candidate in this block.
                                    Err(ClioError::NotFound(_)) => {
                                        best = blk
                                            .entries()
                                            .filter_map(|e| e.ok())
                                            .filter(|e| {
                                                e.slot < s
                                                    && ids.contains(&e.header.id)
                                                    && !matches!(
                                                        e.header.frag,
                                                        FragKind::Continuation { .. }
                                                    )
                                            })
                                            .map(|e| e.slot)
                                            .last();
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                    }
                    if db == 0 {
                        break;
                    }
                    let pending = self.pending_for(view, vol_idx);
                    let mut loc = Locator::new(&src, pending);
                    let t = clio_obs::clock::now();
                    let hop = loc.locate_before(ids, db - 1)?;
                    self.obs
                        .note_locate(ids.first().copied(), &loc.stats, t.elapsed());
                    match hop {
                        Some(pb) => {
                            db = pb;
                            slot_excl = u16::MAX;
                        }
                        None => break,
                    }
                }
            }
            if vol_idx == 0 {
                return Ok(None);
            }
            vol_idx -= 1;
            db = u64::MAX;
            slot_excl = u16::MAX;
        }
    }

    // ------------------------------------------------------------------
    // Shard-level cursors (over already-resolved id sets).
    // ------------------------------------------------------------------

    /// A cursor over `ids` positioned before this shard's first entry.
    pub(crate) fn cursor_ids(&self, ids: Vec<LogFileId>) -> ShardCursor<'_> {
        ShardCursor {
            svc: self,
            view: self.read_view(),
            ids,
            anchor: Anchor::Start,
            floor: None,
        }
    }

    /// A cursor over `ids` positioned after this shard's last entry.
    pub(crate) fn cursor_ids_from_end(&self, ids: Vec<LogFileId>) -> ShardCursor<'_> {
        ShardCursor {
            svc: self,
            view: self.read_view(),
            ids,
            anchor: Anchor::End,
            floor: None,
        }
    }

    /// A cursor over `ids` positioned at `ts` within this shard.
    pub(crate) fn cursor_ids_from_time(
        &self,
        ids: Vec<LogFileId>,
        ts: Timestamp,
    ) -> Result<ShardCursor<'_>> {
        let view = self.read_view();
        // Volumes are created in time order; start in the last volume whose
        // label predates ts, then refine with the in-volume timestamp
        // search (§2.1).
        let vol_count = view.active_index + 1;
        let mut vol_pick = 0;
        for v in 0..vol_count {
            if self.seq.volume(v)?.label().created <= ts {
                vol_pick = v;
            } else {
                break;
            }
        }
        let src = self.source_for(&view, vol_pick)?;
        let (db_opt, _) = tsearch::find_block_by_time(&src, ts)?;
        let start = (vol_pick, db_opt.unwrap_or(0), 0u16);
        let anchor = match self.scan_forward(&view, &ids, start, Some(ts))? {
            Some(e) => Anchor::BeforeEntry(e.addr),
            None => Anchor::End,
        };
        Ok(ShardCursor {
            svc: self,
            view,
            ids,
            anchor,
            floor: None,
        })
    }
}

impl LogService {
    /// Reads and reassembles the entry at `addr` (lock-free: operates on
    /// the entry's shard's current read snapshot).
    pub fn read_entry(&self, addr: EntryAddr) -> Result<Entry> {
        let (shard, local) = self.localize_addr(addr)?;
        let mut e = self.shards[shard].read_entry(local)?;
        e.addr = globalize_addr(shard as u32, e.addr);
        Ok(e)
    }

    /// The id closure (log file + sublogs) for a path, from the catalog
    /// shard's snapshot, with the read-permission check applied.
    fn closure_of(&self, path: &str) -> Result<Vec<LogFileId>> {
        let view = self.shards[0].read_view();
        let id = view.catalog.resolve(path)?;
        let attrs = view.catalog.attrs(id)?;
        if attrs.perms & clio_format::records::PERM_READ == 0 {
            return Err(ClioError::PermissionDenied(path.to_owned()));
        }
        Ok(view.catalog.closure(id))
    }

    /// Partitions a closure by shard (ascending shard order). A path below
    /// a top-level log file always lands in exactly one group.
    fn parts_for(&self, ids: Vec<LogFileId>) -> Vec<(u32, Vec<LogFileId>)> {
        if self.shards.len() == 1 {
            return vec![(0, ids)];
        }
        let view = self.shards[0].read_view();
        let mask = self.route_mask();
        let mut groups: std::collections::BTreeMap<u32, Vec<LogFileId>> =
            std::collections::BTreeMap::new();
        for id in ids {
            let shard = view.catalog.route(id, mask) as u32;
            groups.entry(shard).or_default().push(id);
        }
        groups.into_iter().collect()
    }

    /// A cursor over `path` (and all its sublogs) positioned before the
    /// first entry.
    pub fn cursor(&self, path: &str) -> Result<LogCursor<'_>> {
        let parts = self
            .parts_for(self.closure_of(path)?)
            .into_iter()
            .map(|(shard, ids)| (shard, self.shards[shard as usize].cursor_ids(ids)))
            .collect::<Vec<_>>();
        Ok(LogCursor { parts, active: 0 })
    }

    /// A cursor positioned after the last entry (for backward reading).
    pub fn cursor_from_end(&self, path: &str) -> Result<LogCursor<'_>> {
        let parts = self
            .parts_for(self.closure_of(path)?)
            .into_iter()
            .map(|(shard, ids)| (shard, self.shards[shard as usize].cursor_ids_from_end(ids)))
            .collect::<Vec<_>>();
        let active = parts.len().saturating_sub(1);
        Ok(LogCursor { parts, active })
    }

    /// A cursor positioned at `ts`: `next()` yields entries written at or
    /// after `ts`, `prev()` yields those before it (§2).
    pub fn cursor_from_time(&self, path: &str, ts: Timestamp) -> Result<LogCursor<'_>> {
        let mut parts = Vec::new();
        for (shard, ids) in self.parts_for(self.closure_of(path)?) {
            parts.push((
                shard,
                self.shards[shard as usize].cursor_ids_from_time(ids, ts)?,
            ));
        }
        Ok(LogCursor { parts, active: 0 })
    }

    /// Resolves an asynchronously written entry by its client-generated
    /// unique id — approximate timestamp plus sequence number (§2.1). The
    /// timestamp bounds the search window to ± the configured clock skew.
    pub fn find_by_unique_id(
        &self,
        path: &str,
        approx_ts: Timestamp,
        seqno: SeqNo,
    ) -> Result<Option<Entry>> {
        let skew = self.cfg.unique_id_skew_us;
        let from = Timestamp(approx_ts.0.saturating_sub(skew));
        let limit = approx_ts.saturating_add_micros(skew);
        // Search every shard of the closure: the window is per shard, so a
        // miss on one shard must not end the search on the others.
        for (shard, ids) in self.parts_for(self.closure_of(path)?) {
            let mut cur = self.shards[shard as usize].cursor_ids_from_time(ids, from)?;
            while let Some(mut e) = cur.next()? {
                if e.effective_ts() > limit {
                    break;
                }
                if e.seqno == Some(seqno) {
                    e.addr = globalize_addr(shard, e.addr);
                    return Ok(Some(e));
                }
            }
        }
        Ok(None)
    }
}

/// Where a cursor stands between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anchor {
    /// Before the first entry.
    Start,
    /// After the last entry.
    End,
    /// On the entry at this address (last one returned).
    At(EntryAddr),
    /// Immediately before the entry at this address.
    BeforeEntry(EntryAddr),
}

/// A bidirectional cursor over one shard's slice of an id closure.
/// Entry addresses are shard-local; the public [`LogCursor`] globalizes
/// them. The read span and metrics are recorded here (once per advance)
/// so the multi-part wrapper never double-counts.
pub(crate) struct ShardCursor<'a> {
    svc: &'a Shard,
    view: Arc<ReadView>,
    ids: Vec<LogFileId>,
    anchor: Anchor,
    floor: Option<Timestamp>,
}

impl ShardCursor<'_> {
    /// The next entry at or after the cursor, advancing it.
    pub(crate) fn next(&mut self) -> Result<Option<Entry>> {
        self.spanned(Self::next_inner)
    }

    /// The entry before the cursor, moving it backward.
    pub(crate) fn prev(&mut self) -> Result<Option<Entry>> {
        self.spanned(Self::prev_inner)
    }

    /// Times `op` as one read span: device blocks touched, latency and
    /// outcome all land in the service registry and trace ring.
    fn spanned(
        &mut self,
        op: impl FnOnce(&mut Self) -> Result<Option<Entry>>,
    ) -> Result<Option<Entry>> {
        let start = clio_obs::clock::now();
        let before = self.svc.obs.device_stats.snapshot().reads;
        let mut span = self.svc.obs.span("read");
        let r = op(self);
        let blocks = self
            .svc
            .obs
            .device_stats
            .snapshot()
            .reads
            .saturating_sub(before);
        let target = r.as_ref().ok().and_then(|e| e.as_ref().map(|e| e.id));
        if let Some(id) = target {
            span.set_target(u64::from(id.0));
        }
        span.attr("blocks", blocks);
        if r.is_err() {
            span.fail("error");
        }
        drop(span);
        self.svc.obs.note_read(target, start.elapsed(), r.is_ok());
        r
    }

    fn next_inner(&mut self) -> Result<Option<Entry>> {
        let start = match self.anchor {
            Anchor::End => return Ok(None),
            Anchor::Start => (0u32, 0u64, 0u16),
            Anchor::At(a) => (a.volume_index, a.block.0, a.slot + 1),
            Anchor::BeforeEntry(a) => (a.volume_index, a.block.0, a.slot),
        };
        if let Some(e) = self
            .svc
            .scan_forward(&self.view, &self.ids, start, self.floor)?
        {
            self.anchor = Anchor::At(e.addr);
            self.floor = None;
            return Ok(Some(e));
        }
        // The pinned snapshot is exhausted — the cursor crossed its
        // watermark. Refresh to the currently published snapshot and look
        // again; this is the only point a cursor observes new appends.
        let fresh = self.svc.read_view();
        if Arc::ptr_eq(&fresh, &self.view) {
            return Ok(None);
        }
        self.view = fresh;
        match self
            .svc
            .scan_forward(&self.view, &self.ids, start, self.floor)?
        {
            Some(e) => {
                self.anchor = Anchor::At(e.addr);
                self.floor = None;
                Ok(Some(e))
            }
            None => Ok(None),
        }
    }

    fn prev_inner(&mut self) -> Result<Option<Entry>> {
        let before = match self.anchor {
            Anchor::Start => return Ok(None),
            Anchor::End => {
                // Walk backward from the end of the pinned snapshot.
                (self.view.active_index, u64::MAX, u16::MAX)
            }
            Anchor::At(a) | Anchor::BeforeEntry(a) => (a.volume_index, a.block.0, a.slot),
        };
        match self.svc.scan_backward(&self.view, &self.ids, before)? {
            Some(e) => {
                self.anchor = Anchor::BeforeEntry(e.addr);
                Ok(Some(e))
            }
            None => {
                self.anchor = Anchor::Start;
                Ok(None)
            }
        }
    }
}

/// A bidirectional cursor over the entries of a log file and its sublogs.
///
/// The sublog set is captured at creation; log files created afterwards are
/// not included. The cursor pins a read snapshot (per shard) at creation
/// and walks it without ever locking the appender; when `next()` exhausts
/// the pinned snapshot it refreshes to the current one, so `next()` after
/// the end simply returns `None` and may return new entries later —
/// cursors can tail a growing log.
///
/// When the closure spans several shards (only a cursor over `/` can), the
/// parts are walked in ascending shard order, and once the cursor has moved
/// past a shard it does not revisit it: tailing observes new entries only
/// on the final shard.
pub struct LogCursor<'a> {
    /// One shard-level cursor per shard of the closure, ascending.
    parts: Vec<(u32, ShardCursor<'a>)>,
    /// The part the cursor currently stands in.
    active: usize,
}

#[allow(clippy::should_implement_trait)] // fallible: `Iterator::next` cannot return `Result`
impl LogCursor<'_> {
    /// The next entry at or after the cursor, advancing it.
    pub fn next(&mut self) -> Result<Option<Entry>> {
        loop {
            let Some((shard, part)) = self.parts.get_mut(self.active) else {
                return Ok(None);
            };
            if let Some(mut e) = part.next()? {
                e.addr = globalize_addr(*shard, e.addr);
                return Ok(Some(e));
            }
            if self.active + 1 >= self.parts.len() {
                // Stay on the last part so tailing keeps working.
                return Ok(None);
            }
            self.active += 1;
        }
    }

    /// The entry before the cursor, moving it backward.
    pub fn prev(&mut self) -> Result<Option<Entry>> {
        loop {
            let Some((shard, part)) = self.parts.get_mut(self.active) else {
                return Ok(None);
            };
            if let Some(mut e) = part.prev()? {
                e.addr = globalize_addr(*shard, e.addr);
                return Ok(Some(e));
            }
            if self.active == 0 {
                return Ok(None);
            }
            self.active -= 1;
        }
    }

    /// Collects every remaining entry (test/example convenience).
    pub fn collect_remaining(&mut self) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        while let Some(e) = self.next()? {
            out.push(e);
        }
        Ok(out)
    }
}
