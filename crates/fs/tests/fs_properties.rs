//! Property tests: the indirect-block file system against a byte-vector
//! oracle.

use proptest::prelude::*;

use clio_device::MemBlockStore;
use clio_fs::FileSystem;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u16, len: u16 },
    Truncate { size: u16 },
    Read { offset: u16, len: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..8000, 1u16..1200).prop_map(|(offset, len)| Op::Write { offset, len }),
        1 => (0u16..9000).prop_map(|size| Op::Truncate { size }),
        3 => (0u16..9000, 1u16..1500).prop_map(|(offset, len)| Op::Read { offset, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn file_contents_match_byte_oracle(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let fs = FileSystem::mkfs(MemBlockStore::new(512, 4096), 16).expect("mkfs");
        let ino = fs.create("/f").expect("create");
        let mut oracle: Vec<u8> = Vec::new();
        let mut stamp = 0u8;
        for op in &ops {
            match op {
                Op::Write { offset, len } => {
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; *len as usize];
                    fs.write_at(ino, u64::from(*offset), &data).expect("write");
                    let end = *offset as usize + data.len();
                    if oracle.len() < end {
                        oracle.resize(end, 0);
                    }
                    oracle[*offset as usize..end].copy_from_slice(&data);
                }
                Op::Truncate { size } => {
                    fs.truncate(ino, u64::from(*size)).expect("truncate");
                    oracle.resize(*size as usize, 0);
                }
                Op::Read { offset, len } => {
                    let mut buf = vec![0xEEu8; *len as usize];
                    let n = fs.read_at(ino, u64::from(*offset), &mut buf).expect("read");
                    let want: &[u8] = if (*offset as usize) < oracle.len() {
                        &oracle[*offset as usize..oracle.len().min(*offset as usize + *len as usize)]
                    } else {
                        &[]
                    };
                    prop_assert_eq!(&buf[..n], want);
                }
            }
            prop_assert_eq!(fs.stat(ino).expect("stat").size, oracle.len() as u64);
        }
        // Final whole-file read.
        let mut buf = vec![0u8; oracle.len()];
        let n = fs.read_at(ino, 0, &mut buf).expect("final read");
        prop_assert_eq!(n, oracle.len());
        prop_assert_eq!(buf, oracle);
    }

    #[test]
    fn truncate_never_leaks_blocks(sizes in proptest::collection::vec(1u16..6000, 1..20)) {
        let fs = FileSystem::mkfs(MemBlockStore::new(512, 8192), 16).expect("mkfs");
        let ino = fs.create("/f").expect("create");
        let baseline = fs.free_blocks();
        for s in &sizes {
            fs.write_at(ino, 0, &vec![1u8; *s as usize]).expect("write");
            fs.truncate(ino, 0).expect("truncate");
        }
        // After truncating to zero, all data blocks are back.
        prop_assert!(fs.free_blocks() >= baseline.saturating_sub(2));
    }
}
