//! Property tests: the indirect-block file system against a byte-vector
//! oracle. Runs on `clio_testkit::prop`; the retired
//! regression seed file entry is pinned as the explicit
//! `regression_*` test at the bottom.

use clio_device::MemBlockStore;
use clio_fs::FileSystem;
use clio_testkit::prop::{check, check_case, u16s, vec_of, weighted, Gen};

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u16, len: u16 },
    Truncate { size: u16 },
    Read { offset: u16, len: u16 },
}

fn arb_op() -> Gen<Op> {
    let write = {
        let (off, len) = (u16s(0..8000), u16s(1..1200));
        Gen::new(move |src| Op::Write {
            offset: off.generate(src),
            len: len.generate(src),
        })
    };
    let truncate = u16s(0..9000).map(|size| Op::Truncate { size });
    let read = {
        let (off, len) = (u16s(0..9000), u16s(1..1500));
        Gen::new(move |src| Op::Read {
            offset: off.generate(src),
            len: len.generate(src),
        })
    };
    weighted(vec![(4, write), (1, truncate), (3, read)])
}

fn prop_file_contents_match_byte_oracle(ops: &[Op]) {
    let fs = FileSystem::mkfs(MemBlockStore::new(512, 4096), 16).expect("mkfs");
    let ino = fs.create("/f").expect("create");
    let mut oracle: Vec<u8> = Vec::new();
    let mut stamp = 0u8;
    for op in ops {
        match op {
            Op::Write { offset, len } => {
                stamp = stamp.wrapping_add(1);
                let data = vec![stamp; *len as usize];
                fs.write_at(ino, u64::from(*offset), &data).expect("write");
                let end = *offset as usize + data.len();
                if oracle.len() < end {
                    oracle.resize(end, 0);
                }
                oracle[*offset as usize..end].copy_from_slice(&data);
            }
            Op::Truncate { size } => {
                fs.truncate(ino, u64::from(*size)).expect("truncate");
                oracle.resize(*size as usize, 0);
            }
            Op::Read { offset, len } => {
                let mut buf = vec![0xEEu8; *len as usize];
                let n = fs.read_at(ino, u64::from(*offset), &mut buf).expect("read");
                let want: &[u8] = if (*offset as usize) < oracle.len() {
                    &oracle[*offset as usize..oracle.len().min(*offset as usize + *len as usize)]
                } else {
                    &[]
                };
                assert_eq!(&buf[..n], want);
            }
        }
        assert_eq!(fs.stat(ino).expect("stat").size, oracle.len() as u64);
    }
    // Final whole-file read.
    let mut buf = vec![0u8; oracle.len()];
    let n = fs.read_at(ino, 0, &mut buf).expect("final read");
    assert_eq!(n, oracle.len());
    assert_eq!(buf, oracle);
}

#[test]
fn file_contents_match_byte_oracle() {
    let g = vec_of(&arb_op(), 1..60);
    check("file_contents_match_byte_oracle", 32, &g, |ops| {
        prop_file_contents_match_byte_oracle(ops);
    });
}

#[test]
fn truncate_never_leaks_blocks() {
    let g = vec_of(&u16s(1..6000), 1..20);
    check("truncate_never_leaks_blocks", 32, &g, |sizes| {
        let fs = FileSystem::mkfs(MemBlockStore::new(512, 8192), 16).expect("mkfs");
        let ino = fs.create("/f").expect("create");
        let baseline = fs.free_blocks();
        for s in sizes {
            fs.write_at(ino, 0, &vec![1u8; *s as usize]).expect("write");
            fs.truncate(ino, 0).expect("truncate");
        }
        // After truncating to zero, all data blocks are back.
        assert!(fs.free_blocks() >= baseline.saturating_sub(2));
    });
}

/// The shrunken witness from the retired
/// regression seed file (case `b245cb8662326572…`):
/// a write whose tail crosses a truncated boundary, then a one-byte write
/// just past it.
#[test]
fn regression_write_across_truncated_tail() {
    let ops = vec![
        Op::Write {
            offset: 3272,
            len: 1135,
        },
        Op::Truncate { size: 3073 },
        Op::Write {
            offset: 3273,
            len: 1,
        },
    ];
    check_case("write_across_truncated_tail", &ops, |ops| {
        prop_file_contents_match_byte_oracle(ops);
    });
}
