//! Inodes: fixed 128-byte descriptors in an on-disk table.

use clio_types::{ClioError, Result};

/// Direct block pointers per inode.
pub const NDIRECT: usize = 10;

/// Bytes per encoded inode.
pub const INODE_SIZE: usize = 128;

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Unallocated slot.
    Free,
    /// A regular byte file.
    File,
    /// A directory.
    Dir,
}

/// One inode: the Unix-style direct / single-indirect / double-indirect
/// block map whose tail-access cost the paper's §1 argues against for
/// large growing files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File or directory (or free slot).
    pub kind: InodeKind,
    /// Length in bytes.
    pub size: u64,
    /// Direct block pointers (0 = hole).
    pub direct: [u64; NDIRECT],
    /// Single-indirect block pointer.
    pub indirect: u64,
    /// Double-indirect block pointer.
    pub dindirect: u64,
    /// Modification time (microseconds).
    pub mtime: u64,
}

impl Inode {
    /// A fresh, empty inode of the given kind.
    #[must_use]
    pub fn empty(kind: InodeKind) -> Inode {
        Inode {
            kind,
            size: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
            mtime: 0,
        }
    }

    /// Encodes into exactly [`INODE_SIZE`] bytes.
    #[must_use]
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        out[0] = match self.kind {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Dir => 2,
        };
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            out[16 + i * 8..24 + i * 8].copy_from_slice(&d.to_le_bytes());
        }
        let o = 16 + NDIRECT * 8;
        out[o..o + 8].copy_from_slice(&self.indirect.to_le_bytes());
        out[o + 8..o + 16].copy_from_slice(&self.dindirect.to_le_bytes());
        out[o + 16..o + 24].copy_from_slice(&self.mtime.to_le_bytes());
        out
    }

    /// Decodes from [`INODE_SIZE`] bytes.
    pub fn decode(data: &[u8]) -> Result<Inode> {
        if data.len() < INODE_SIZE {
            return Err(ClioError::BadRecord("short inode"));
        }
        let kind = match data[0] {
            0 => InodeKind::Free,
            1 => InodeKind::File,
            2 => InodeKind::Dir,
            _ => return Err(ClioError::BadRecord("bad inode kind")),
        };
        let u64at = |o: usize| u64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64at(16 + i * 8);
        }
        let o = 16 + NDIRECT * 8;
        Ok(Inode {
            kind,
            size: u64at(8),
            direct,
            indirect: u64at(o),
            dindirect: u64at(o + 8),
            mtime: u64at(o + 16),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut ino = Inode::empty(InodeKind::File);
        ino.size = 123_456;
        ino.direct[0] = 17;
        ino.direct[9] = 99;
        ino.indirect = 1000;
        ino.dindirect = 2000;
        ino.mtime = 777;
        let enc = ino.encode();
        assert_eq!(Inode::decode(&enc).unwrap(), ino);
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(Inode::decode(&[0u8; 10]).is_err());
        let mut bad = [0u8; INODE_SIZE];
        bad[0] = 9;
        assert!(Inode::decode(&bad).is_err());
    }

    #[test]
    fn geometry() {
        // INODE_SIZE fits the fields with room to spare.
        const { assert!(16 + NDIRECT * 8 + 24 <= INODE_SIZE) };
    }
}
