//! The free-block bitmap allocator.

use clio_types::{BlockNo, ClioError, Result};

use clio_device::BlockStore;

/// A bitmap allocator over a contiguous range of data blocks.
///
/// The bitmap itself lives in `bitmap_blocks` blocks starting at
/// `bitmap_start`; bit `i` covers absolute block `data_start + i`.
pub struct BitmapAlloc {
    bitmap_start: u64,
    bitmap_blocks: u64,
    data_start: u64,
    data_blocks: u64,
    /// In-memory copy of the bitmap (written through on change).
    bits: Vec<u8>,
    block_size: usize,
    /// Next-fit rotor to avoid rescanning from 0.
    rotor: u64,
}

impl BitmapAlloc {
    /// Blocks needed to hold a bitmap of `data_blocks` bits.
    #[must_use]
    pub fn blocks_needed(data_blocks: u64, block_size: usize) -> u64 {
        data_blocks.div_ceil(8 * block_size as u64)
    }

    /// Creates a fresh, all-free allocator and persists it.
    pub fn format<S: BlockStore + ?Sized>(
        store: &S,
        bitmap_start: u64,
        bitmap_blocks: u64,
        data_start: u64,
        data_blocks: u64,
    ) -> Result<BitmapAlloc> {
        let block_size = store.block_size();
        let a = BitmapAlloc {
            bitmap_start,
            bitmap_blocks,
            data_start,
            data_blocks,
            bits: vec![0; (bitmap_blocks as usize) * block_size],
            block_size,
            rotor: 0,
        };
        a.flush_all(store)?;
        Ok(a)
    }

    /// Loads an existing bitmap from the store.
    pub fn load<S: BlockStore + ?Sized>(
        store: &S,
        bitmap_start: u64,
        bitmap_blocks: u64,
        data_start: u64,
        data_blocks: u64,
    ) -> Result<BitmapAlloc> {
        let block_size = store.block_size();
        let mut bits = vec![0; (bitmap_blocks as usize) * block_size];
        for b in 0..bitmap_blocks {
            let off = b as usize * block_size;
            store.read_block(BlockNo(bitmap_start + b), &mut bits[off..off + block_size])?;
        }
        Ok(BitmapAlloc {
            bitmap_start,
            bitmap_blocks,
            data_start,
            data_blocks,
            bits,
            block_size,
            rotor: 0,
        })
    }

    fn flush_bit<S: BlockStore + ?Sized>(&self, store: &S, bit: u64) -> Result<()> {
        let blk = bit / (8 * self.block_size as u64);
        let off = blk as usize * self.block_size;
        store.write_block(
            BlockNo(self.bitmap_start + blk),
            &self.bits[off..off + self.block_size],
        )
    }

    fn flush_all<S: BlockStore + ?Sized>(&self, store: &S) -> Result<()> {
        for b in 0..self.bitmap_blocks {
            let off = b as usize * self.block_size;
            store.write_block(
                BlockNo(self.bitmap_start + b),
                &self.bits[off..off + self.block_size],
            )?;
        }
        Ok(())
    }

    fn get(&self, i: u64) -> bool {
        self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    fn set(&mut self, i: u64, v: bool) {
        if v {
            self.bits[(i / 8) as usize] |= 1 << (i % 8);
        } else {
            self.bits[(i / 8) as usize] &= !(1 << (i % 8));
        }
    }

    /// Allocates one block (next-fit), returning its absolute number.
    pub fn alloc<S: BlockStore + ?Sized>(&mut self, store: &S) -> Result<u64> {
        for probe in 0..self.data_blocks {
            let i = (self.rotor + probe) % self.data_blocks;
            if !self.get(i) {
                self.set(i, true);
                self.rotor = (i + 1) % self.data_blocks;
                self.flush_bit(store, i)?;
                return Ok(self.data_start + i);
            }
        }
        Err(ClioError::VolumeFull)
    }

    /// Frees an absolute block number.
    pub fn free<S: BlockStore + ?Sized>(&mut self, store: &S, abs: u64) -> Result<()> {
        let i = abs
            .checked_sub(self.data_start)
            .filter(|&i| i < self.data_blocks)
            .ok_or(ClioError::OutOfRange(BlockNo(abs)))?;
        if !self.get(i) {
            return Err(ClioError::Internal(format!("double free of block {abs}")));
        }
        self.set(i, false);
        self.flush_bit(store, i)
    }

    /// Number of free blocks remaining.
    #[must_use]
    pub fn free_count(&self) -> u64 {
        (0..self.data_blocks).filter(|&i| !self.get(i)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use clio_device::MemBlockStore;

    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let store = MemBlockStore::new(64, 64);
        let mut a = BitmapAlloc::format(&store, 1, 1, 8, 56).unwrap();
        assert_eq!(a.free_count(), 56);
        let b1 = a.alloc(&store).unwrap();
        let b2 = a.alloc(&store).unwrap();
        assert_ne!(b1, b2);
        assert!(b1 >= 8 && b2 >= 8);
        a.free(&store, b1).unwrap();
        assert_eq!(a.free_count(), 55);
        assert!(a.free(&store, b1).is_err(), "double free detected");
        assert!(a.free(&store, 5).is_err(), "outside data range");
    }

    #[test]
    fn exhaustion() {
        let store = MemBlockStore::new(64, 16);
        let mut a = BitmapAlloc::format(&store, 1, 1, 2, 4).unwrap();
        for _ in 0..4 {
            a.alloc(&store).unwrap();
        }
        assert!(matches!(
            a.alloc(&store).unwrap_err(),
            ClioError::VolumeFull
        ));
    }

    #[test]
    fn persistence_round_trip() {
        let store = MemBlockStore::new(64, 64);
        let allocated;
        {
            let mut a = BitmapAlloc::format(&store, 1, 1, 8, 56).unwrap();
            allocated = a.alloc(&store).unwrap();
        }
        let a = BitmapAlloc::load(&store, 1, 1, 8, 56).unwrap();
        assert_eq!(a.free_count(), 55);
        assert!(a.get(allocated - 8));
    }
}
