//! The indirect-block file system.
//!
//! A classic Unix-style layout on a rewriteable block store:
//!
//! ```text
//! | superblock | free bitmap | inode table | data blocks ... |
//! ```
//!
//! Files map logical blocks through `NDIRECT` direct pointers, one
//! single-indirect block, and one double-indirect block — the structure
//! whose tail-access cost on large, continually growing files motivates log
//! files (§1). Every block access is counted in [`FsCounters`] so the
//! motivation benchmark can report exactly how many device accesses an
//! append or a tail read costs as a file grows.

use clio_testkit::sync::Mutex;

use clio_device::BlockStore;
use clio_types::{BlockNo, ClioError, Result};

use crate::alloc::BitmapAlloc;
use crate::dir::{self, DirEntry};
use crate::inode::{Inode, InodeKind, INODE_SIZE, NDIRECT};

/// Superblock magic.
const MAGIC: u32 = 0xF51C_0001;

/// The root directory's inode number.
pub const ROOT_INO: u64 = 0;

/// What kind of object an inode is (public face of [`InodeKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// `stat`-style metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
}

/// Device-access counters, split into data and metadata (inode, bitmap,
/// indirect-block) accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsCounters {
    /// Data block reads.
    pub data_reads: u64,
    /// Data block writes.
    pub data_writes: u64,
    /// Metadata block reads (inodes + indirect blocks).
    pub meta_reads: u64,
    /// Metadata block writes (inodes + indirect blocks + bitmap).
    pub meta_writes: u64,
}

impl FsCounters {
    /// All accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data_reads + self.data_writes + self.meta_reads + self.meta_writes
    }
}

#[derive(Debug, Clone, Copy)]
struct Superblock {
    block_size: u32,
    total_blocks: u64,
    inode_count: u32,
    bitmap_start: u64,
    bitmap_blocks: u64,
    inode_start: u64,
    inode_blocks: u64,
    data_start: u64,
    data_blocks: u64,
}

impl Superblock {
    fn encode(&self, block_size: usize) -> Vec<u8> {
        let mut out = vec![0u8; block_size];
        out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        out[4..8].copy_from_slice(&self.block_size.to_le_bytes());
        out[8..16].copy_from_slice(&self.total_blocks.to_le_bytes());
        out[16..20].copy_from_slice(&self.inode_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.bitmap_start.to_le_bytes());
        out[32..40].copy_from_slice(&self.bitmap_blocks.to_le_bytes());
        out[40..48].copy_from_slice(&self.inode_start.to_le_bytes());
        out[48..56].copy_from_slice(&self.inode_blocks.to_le_bytes());
        out[56..64].copy_from_slice(&self.data_start.to_le_bytes());
        out[64..72].copy_from_slice(&self.data_blocks.to_le_bytes());
        out
    }

    fn decode(data: &[u8]) -> Result<Superblock> {
        if data.len() < 72 {
            return Err(ClioError::BadRecord("short superblock"));
        }
        let u32at = |o: usize| u32::from_le_bytes(data[o..o + 4].try_into().expect("4"));
        let u64at = |o: usize| u64::from_le_bytes(data[o..o + 8].try_into().expect("8"));
        if u32at(0) != MAGIC {
            return Err(ClioError::BadRecord("not a clio-fs volume"));
        }
        Ok(Superblock {
            block_size: u32at(4),
            total_blocks: u64at(8),
            inode_count: u32at(16),
            bitmap_start: u64at(24),
            bitmap_blocks: u64at(32),
            inode_start: u64at(40),
            inode_blocks: u64at(48),
            data_start: u64at(56),
            data_blocks: u64at(64),
        })
    }
}

struct Inner {
    alloc: BitmapAlloc,
    counters: FsCounters,
}

/// The conventional file system.
///
/// # Examples
///
/// ```
/// use clio_device::MemBlockStore;
/// use clio_fs::FileSystem;
///
/// let fs = FileSystem::mkfs(MemBlockStore::new(512, 256), 32)?;
/// let ino = fs.create("/hello.txt")?;
/// fs.write_at(ino, 0, b"hi")?;
/// let mut buf = [0u8; 2];
/// fs.read_at(ino, 0, &mut buf)?;
/// assert_eq!(&buf, b"hi");
/// # Ok::<(), clio_types::ClioError>(())
/// ```
pub struct FileSystem<S: BlockStore> {
    store: S,
    sb: Superblock,
    inner: Mutex<Inner>,
}

impl<S: BlockStore> FileSystem<S> {
    /// Formats `store` with `inode_count` inodes and mounts it.
    pub fn mkfs(store: S, inode_count: u32) -> Result<FileSystem<S>> {
        let bs = store.block_size();
        let total = store.capacity_blocks();
        let inodes_per_block = (bs / INODE_SIZE) as u64;
        let inode_blocks = u64::from(inode_count).div_ceil(inodes_per_block);
        // Provisional layout: superblock, bitmap, inodes, data.
        let mut bitmap_blocks = 1;
        loop {
            let data_start = 1 + bitmap_blocks + inode_blocks;
            let data_blocks = total.saturating_sub(data_start);
            let need = BitmapAlloc::blocks_needed(data_blocks, bs).max(1);
            if need <= bitmap_blocks {
                break;
            }
            bitmap_blocks = need;
        }
        let data_start = 1 + bitmap_blocks + inode_blocks;
        let data_blocks = total
            .checked_sub(data_start)
            .filter(|&d| d > 0)
            .ok_or(ClioError::VolumeFull)?;
        let sb = Superblock {
            block_size: bs as u32,
            total_blocks: total,
            inode_count,
            bitmap_start: 1,
            bitmap_blocks,
            inode_start: 1 + bitmap_blocks,
            inode_blocks,
            data_start,
            data_blocks,
        };
        store.write_block(BlockNo(0), &sb.encode(bs))?;
        // Zero the inode table.
        let zero = vec![0u8; bs];
        for b in 0..inode_blocks {
            store.write_block(BlockNo(sb.inode_start + b), &zero)?;
        }
        let alloc = BitmapAlloc::format(
            &store,
            sb.bitmap_start,
            bitmap_blocks,
            data_start,
            data_blocks,
        )?;
        let fs = FileSystem {
            store,
            sb,
            // io class: the allocator writes the bitmap through to the
            // store while this lock is held (write-through consistency).
            inner: Mutex::with_class_io(
                Inner {
                    alloc,
                    counters: FsCounters::default(),
                },
                "fs.state",
            ),
        };
        // Root directory.
        fs.put_inode(ROOT_INO, &Inode::empty(InodeKind::Dir))?;
        fs.write_dir(ROOT_INO, &[])?;
        Ok(fs)
    }

    /// Mounts a previously formatted store.
    pub fn mount(store: S) -> Result<FileSystem<S>> {
        let bs = store.block_size();
        let mut buf = vec![0u8; bs];
        store.read_block(BlockNo(0), &mut buf)?;
        let sb = Superblock::decode(&buf)?;
        if sb.block_size as usize != bs {
            return Err(ClioError::BadRecord("block size mismatch"));
        }
        let alloc = BitmapAlloc::load(
            &store,
            sb.bitmap_start,
            sb.bitmap_blocks,
            sb.data_start,
            sb.data_blocks,
        )?;
        Ok(FileSystem {
            store,
            sb,
            inner: Mutex::with_class_io(
                Inner {
                    alloc,
                    counters: FsCounters::default(),
                },
                "fs.state",
            ),
        })
    }

    /// A copy of the access counters.
    #[must_use]
    pub fn counters(&self) -> FsCounters {
        self.inner.lock().counters
    }

    /// Zeroes the access counters.
    pub fn reset_counters(&self) {
        self.inner.lock().counters = FsCounters::default();
    }

    /// Free data blocks remaining.
    #[must_use]
    pub fn free_blocks(&self) -> u64 {
        self.inner.lock().alloc.free_count()
    }

    // ------------------------------------------------------------------
    // Inode table.
    // ------------------------------------------------------------------

    fn inode_pos(&self, ino: u64) -> Result<(u64, usize)> {
        if ino >= u64::from(self.sb.inode_count) {
            return Err(ClioError::NotFound(format!("inode {ino}")));
        }
        let per = (self.sb.block_size as usize / INODE_SIZE) as u64;
        Ok((
            self.sb.inode_start + ino / per,
            (ino % per) as usize * INODE_SIZE,
        ))
    }

    fn get_inode(&self, ino: u64) -> Result<Inode> {
        let (blk, off) = self.inode_pos(ino)?;
        let mut buf = vec![0u8; self.sb.block_size as usize];
        self.store.read_block(BlockNo(blk), &mut buf)?;
        self.inner.lock().counters.meta_reads += 1;
        Inode::decode(&buf[off..off + INODE_SIZE])
    }

    fn put_inode(&self, ino: u64, inode: &Inode) -> Result<()> {
        let (blk, off) = self.inode_pos(ino)?;
        let mut buf = vec![0u8; self.sb.block_size as usize];
        self.store.read_block(BlockNo(blk), &mut buf)?;
        buf[off..off + INODE_SIZE].copy_from_slice(&inode.encode());
        self.store.write_block(BlockNo(blk), &buf)?;
        let mut g = self.inner.lock();
        g.counters.meta_reads += 1;
        g.counters.meta_writes += 1;
        Ok(())
    }

    fn alloc_inode(&self, kind: InodeKind) -> Result<u64> {
        for ino in 0..u64::from(self.sb.inode_count) {
            if self.get_inode(ino)?.kind == InodeKind::Free {
                self.put_inode(ino, &Inode::empty(kind))?;
                return Ok(ino);
            }
        }
        Err(ClioError::Internal("out of inodes".into()))
    }

    // ------------------------------------------------------------------
    // Block mapping (the §1 indirect-block cost lives here).
    // ------------------------------------------------------------------

    /// Pointers per indirect block.
    fn ppb(&self) -> u64 {
        self.sb.block_size as u64 / 8
    }

    /// How many levels of indirection reaching logical block `fb` costs:
    /// 0 (direct), 1 (single), or 2 (double).
    #[must_use]
    pub fn indirection_depth(&self, fb: u64) -> u32 {
        let ppb = self.ppb();
        if fb < NDIRECT as u64 {
            0
        } else if fb < NDIRECT as u64 + ppb {
            1
        } else {
            2
        }
    }

    fn read_ptr(&self, blk: u64, idx: u64) -> Result<u64> {
        let mut buf = vec![0u8; self.sb.block_size as usize];
        self.store.read_block(BlockNo(blk), &mut buf)?;
        self.inner.lock().counters.meta_reads += 1;
        let o = idx as usize * 8;
        Ok(u64::from_le_bytes(buf[o..o + 8].try_into().expect("8")))
    }

    fn write_ptr(&self, blk: u64, idx: u64, val: u64) -> Result<()> {
        let mut buf = vec![0u8; self.sb.block_size as usize];
        self.store.read_block(BlockNo(blk), &mut buf)?;
        let o = idx as usize * 8;
        buf[o..o + 8].copy_from_slice(&val.to_le_bytes());
        self.store.write_block(BlockNo(blk), &buf)?;
        let mut g = self.inner.lock();
        g.counters.meta_reads += 1;
        g.counters.meta_writes += 1;
        Ok(())
    }

    fn alloc_zeroed(&self) -> Result<u64> {
        let blk = {
            let mut g = self.inner.lock();
            let blk = g.alloc.alloc(&self.store)?;
            g.counters.meta_writes += 1; // bitmap write-through
            blk
        };
        self.store
            .write_block(BlockNo(blk), &vec![0u8; self.sb.block_size as usize])?;
        Ok(blk)
    }

    /// Maps logical block `fb` of `inode` to an absolute block, optionally
    /// allocating missing blocks along the way. Returns 0 for a hole when
    /// not allocating.
    fn bmap(&self, ino: u64, inode: &mut Inode, fb: u64, allocate: bool) -> Result<u64> {
        let ppb = self.ppb();
        if fb < NDIRECT as u64 {
            let i = fb as usize;
            if inode.direct[i] == 0 && allocate {
                inode.direct[i] = self.alloc_zeroed()?;
                self.put_inode(ino, inode)?;
            }
            return Ok(inode.direct[i]);
        }
        let fb1 = fb - NDIRECT as u64;
        if fb1 < ppb {
            if inode.indirect == 0 {
                if !allocate {
                    return Ok(0);
                }
                inode.indirect = self.alloc_zeroed()?;
                self.put_inode(ino, inode)?;
            }
            let mut p = self.read_ptr(inode.indirect, fb1)?;
            if p == 0 && allocate {
                p = self.alloc_zeroed()?;
                self.write_ptr(inode.indirect, fb1, p)?;
            }
            return Ok(p);
        }
        let fb2 = fb1 - ppb;
        if fb2 >= ppb * ppb {
            return Err(ClioError::EntryTooLarge {
                size: fb as usize,
                max: (NDIRECT as u64 + ppb + ppb * ppb) as usize,
            });
        }
        if inode.dindirect == 0 {
            if !allocate {
                return Ok(0);
            }
            inode.dindirect = self.alloc_zeroed()?;
            self.put_inode(ino, inode)?;
        }
        let mut l1 = self.read_ptr(inode.dindirect, fb2 / ppb)?;
        if l1 == 0 {
            if !allocate {
                return Ok(0);
            }
            l1 = self.alloc_zeroed()?;
            self.write_ptr(inode.dindirect, fb2 / ppb, l1)?;
        }
        let mut p = self.read_ptr(l1, fb2 % ppb)?;
        if p == 0 && allocate {
            p = self.alloc_zeroed()?;
            self.write_ptr(l1, fb2 % ppb, p)?;
        }
        Ok(p)
    }

    // ------------------------------------------------------------------
    // File data.
    // ------------------------------------------------------------------

    /// Reads up to `buf.len()` bytes at `offset`; returns bytes read.
    pub fn read_at(&self, ino: u64, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let mut inode = self.get_inode(ino)?;
        if inode.kind == InodeKind::Free {
            return Err(ClioError::NotFound(format!("inode {ino}")));
        }
        let bs = self.sb.block_size as u64;
        let mut n = 0usize;
        while n < buf.len() {
            let pos = offset + n as u64;
            if pos >= inode.size {
                break;
            }
            let fb = pos / bs;
            let off = (pos % bs) as usize;
            let want = (buf.len() - n)
                .min((bs as usize) - off)
                .min((inode.size - pos) as usize);
            let abs = self.bmap(ino, &mut inode, fb, false)?;
            if abs == 0 {
                // A hole reads as zeros.
                buf[n..n + want].fill(0);
            } else {
                let mut blk = vec![0u8; bs as usize];
                self.store.read_block(BlockNo(abs), &mut blk)?;
                self.inner.lock().counters.data_reads += 1;
                buf[n..n + want].copy_from_slice(&blk[off..off + want]);
            }
            n += want;
        }
        Ok(n)
    }

    /// Writes `data` at `offset`, growing the file as needed.
    pub fn write_at(&self, ino: u64, offset: u64, data: &[u8]) -> Result<usize> {
        let mut inode = self.get_inode(ino)?;
        if inode.kind == InodeKind::Free {
            return Err(ClioError::NotFound(format!("inode {ino}")));
        }
        let bs = self.sb.block_size as u64;
        let mut n = 0usize;
        while n < data.len() {
            let pos = offset + n as u64;
            let fb = pos / bs;
            let off = (pos % bs) as usize;
            let want = (data.len() - n).min(bs as usize - off);
            let abs = self.bmap(ino, &mut inode, fb, true)?;
            let mut blk = vec![0u8; bs as usize];
            if off != 0 || want != bs as usize {
                self.store.read_block(BlockNo(abs), &mut blk)?;
                self.inner.lock().counters.data_reads += 1;
            }
            blk[off..off + want].copy_from_slice(&data[n..n + want]);
            self.store.write_block(BlockNo(abs), &blk)?;
            self.inner.lock().counters.data_writes += 1;
            n += want;
        }
        if offset + n as u64 > inode.size {
            inode.size = offset + n as u64;
            self.put_inode(ino, &inode)?;
        }
        Ok(n)
    }

    /// Appends `data` at the end of the file.
    pub fn append(&self, ino: u64, data: &[u8]) -> Result<usize> {
        let size = self.get_inode(ino)?.size;
        self.write_at(ino, size, data)
    }

    /// Truncates the file to `new_size` (only shrinking frees blocks;
    /// freed block pointers are cleared so later growth re-allocates).
    pub fn truncate(&self, ino: u64, new_size: u64) -> Result<()> {
        let mut inode = self.get_inode(ino)?;
        let bs = self.sb.block_size as u64;
        if new_size < inode.size {
            let keep = new_size.div_ceil(bs);
            let old = inode.size.div_ceil(bs);
            for fb in keep..old {
                let abs = self.bmap(ino, &mut inode, fb, false)?;
                if abs != 0 {
                    self.free_block(abs)?;
                    self.clear_ptr(ino, &mut inode, fb)?;
                }
            }
            // Zero the stale bytes beyond the new EOF in the surviving
            // partial block, maintaining the invariant that allocated
            // bytes past EOF read as zero (a later extending write must
            // not resurrect old data).
            if !new_size.is_multiple_of(bs) {
                let abs = self.bmap(ino, &mut inode, new_size / bs, false)?;
                if abs != 0 {
                    let mut blk = vec![0u8; bs as usize];
                    self.store.read_block(BlockNo(abs), &mut blk)?;
                    blk[(new_size % bs) as usize..].fill(0);
                    self.store.write_block(BlockNo(abs), &blk)?;
                    let mut g = self.inner.lock();
                    g.counters.data_reads += 1;
                    g.counters.data_writes += 1;
                }
            }
            // Shrinking below an indirection boundary frees the (now
            // empty) scaffolding blocks too.
            let ppb = self.ppb();
            if keep <= NDIRECT as u64 + ppb && inode.dindirect != 0 {
                self.free_dindirect_scaffolding(inode.dindirect)?;
                inode.dindirect = 0;
            }
            if keep <= NDIRECT as u64 && inode.indirect != 0 {
                self.free_block(inode.indirect)?;
                inode.indirect = 0;
            }
        }
        inode.size = new_size;
        self.put_inode(ino, &inode)
    }

    fn free_block(&self, abs: u64) -> Result<()> {
        let mut g = self.inner.lock();
        g.alloc.free(&self.store, abs)?;
        g.counters.meta_writes += 1;
        Ok(())
    }

    /// Zeroes the pointer slot mapping logical block `fb` (the data block
    /// itself has already been freed).
    fn clear_ptr(&self, ino: u64, inode: &mut Inode, fb: u64) -> Result<()> {
        let ppb = self.ppb();
        if fb < NDIRECT as u64 {
            inode.direct[fb as usize] = 0;
            return self.put_inode(ino, inode);
        }
        let fb1 = fb - NDIRECT as u64;
        if fb1 < ppb {
            if inode.indirect != 0 {
                self.write_ptr(inode.indirect, fb1, 0)?;
            }
            return Ok(());
        }
        let fb2 = fb1 - ppb;
        if inode.dindirect != 0 {
            let l1 = self.read_ptr(inode.dindirect, fb2 / ppb)?;
            if l1 != 0 {
                self.write_ptr(l1, fb2 % ppb, 0)?;
            }
        }
        Ok(())
    }

    /// Frees the level-1 blocks of a (fully truncated) double-indirect
    /// tree and the root itself; the data blocks below were freed by the
    /// caller.
    fn free_dindirect_scaffolding(&self, dind: u64) -> Result<()> {
        let ppb = self.ppb();
        for i in 0..ppb {
            let l1 = self.read_ptr(dind, i)?;
            if l1 != 0 {
                self.free_block(l1)?;
            }
        }
        self.free_block(dind)
    }

    // ------------------------------------------------------------------
    // Namespace.
    // ------------------------------------------------------------------

    fn read_dir_inode(&self, ino: u64) -> Result<Vec<DirEntry>> {
        let inode = self.get_inode(ino)?;
        if inode.kind != InodeKind::Dir {
            return Err(ClioError::BadPath(format!(
                "inode {ino} is not a directory"
            )));
        }
        let mut data = vec![0u8; inode.size as usize];
        let n = self.read_at(ino, 0, &mut data)?;
        data.truncate(n);
        dir::decode(&data)
    }

    fn write_dir(&self, ino: u64, entries: &[DirEntry]) -> Result<()> {
        let data = dir::encode(entries);
        self.truncate(ino, 0)?;
        self.write_at(ino, 0, &data)?;
        Ok(())
    }

    fn split_path(path: &str) -> Result<Vec<&str>> {
        let trimmed = path.strip_prefix('/').unwrap_or(path);
        if trimmed.is_empty() {
            return Ok(vec![]);
        }
        let comps: Vec<&str> = trimmed.split('/').collect();
        if comps.iter().any(|c| c.is_empty()) {
            return Err(ClioError::BadPath(path.to_owned()));
        }
        Ok(comps)
    }

    /// Resolves a path to an inode number.
    pub fn lookup(&self, path: &str) -> Result<u64> {
        let mut cur = ROOT_INO;
        for comp in Self::split_path(path)? {
            let entries = self.read_dir_inode(cur)?;
            cur = entries
                .iter()
                .find(|e| e.name == comp)
                .map(|e| e.ino)
                .ok_or_else(|| ClioError::NotFound(path.to_owned()))?;
        }
        Ok(cur)
    }

    fn create_node(&self, path: &str, kind: InodeKind) -> Result<u64> {
        let comps = Self::split_path(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(ClioError::BadPath(path.to_owned()));
        };
        let mut cur = ROOT_INO;
        for comp in parents {
            let entries = self.read_dir_inode(cur)?;
            cur = entries
                .iter()
                .find(|e| e.name == *comp)
                .map(|e| e.ino)
                .ok_or_else(|| ClioError::NotFound(path.to_owned()))?;
        }
        let mut entries = self.read_dir_inode(cur)?;
        if entries.iter().any(|e| e.name == *name) {
            return Err(ClioError::LogFileExists(path.to_owned()));
        }
        let ino = self.alloc_inode(kind)?;
        if kind == InodeKind::Dir {
            self.write_dir(ino, &[])?;
        }
        entries.push(DirEntry {
            ino,
            name: (*name).to_owned(),
        });
        self.write_dir(cur, &entries)?;
        Ok(ino)
    }

    /// Creates a regular file.
    pub fn create(&self, path: &str) -> Result<u64> {
        self.create_node(path, InodeKind::File)
    }

    /// Creates a directory.
    pub fn mkdir(&self, path: &str) -> Result<u64> {
        self.create_node(path, InodeKind::Dir)
    }

    /// Removes a file (directories must be empty).
    pub fn unlink(&self, path: &str) -> Result<()> {
        let comps = Self::split_path(path)?;
        let Some((name, parents)) = comps.split_last() else {
            return Err(ClioError::BadPath(path.to_owned()));
        };
        let mut cur = ROOT_INO;
        for comp in parents {
            let entries = self.read_dir_inode(cur)?;
            cur = entries
                .iter()
                .find(|e| e.name == *comp)
                .map(|e| e.ino)
                .ok_or_else(|| ClioError::NotFound(path.to_owned()))?;
        }
        let mut entries = self.read_dir_inode(cur)?;
        let at = entries
            .iter()
            .position(|e| e.name == *name)
            .ok_or_else(|| ClioError::NotFound(path.to_owned()))?;
        let victim = entries[at].ino;
        let vi = self.get_inode(victim)?;
        if vi.kind == InodeKind::Dir && !self.read_dir_inode(victim)?.is_empty() {
            return Err(ClioError::BadPath(format!(
                "{path} is a non-empty directory"
            )));
        }
        self.truncate(victim, 0)?;
        self.put_inode(victim, &Inode::empty(InodeKind::Free))?;
        entries.remove(at);
        self.write_dir(cur, &entries)?;
        Ok(())
    }

    /// Lists a directory's entry names.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>> {
        let ino = self.lookup(path)?;
        let mut names: Vec<String> = self
            .read_dir_inode(ino)?
            .into_iter()
            .map(|e| e.name)
            .collect();
        names.sort();
        Ok(names)
    }

    /// `stat`.
    pub fn stat(&self, ino: u64) -> Result<Stat> {
        let inode = self.get_inode(ino)?;
        let kind = match inode.kind {
            InodeKind::File => FileKind::File,
            InodeKind::Dir => FileKind::Dir,
            InodeKind::Free => return Err(ClioError::NotFound(format!("inode {ino}"))),
        };
        Ok(Stat {
            kind,
            size: inode.size,
        })
    }
}

#[cfg(test)]
mod tests {
    use clio_device::MemBlockStore;

    use super::*;

    fn fresh(blocks: u64) -> FileSystem<MemBlockStore> {
        FileSystem::mkfs(MemBlockStore::new(512, blocks), 64).unwrap()
    }

    #[test]
    fn create_write_read() {
        let fs = fresh(256);
        let ino = fs.create("/hello.txt").unwrap();
        fs.write_at(ino, 0, b"hello world").unwrap();
        let mut buf = [0u8; 32];
        let n = fs.read_at(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
        assert_eq!(fs.stat(ino).unwrap().size, 11);
        // Partial reads.
        let n = fs.read_at(ino, 6, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn directories_and_paths() {
        let fs = fresh(256);
        fs.mkdir("/etc").unwrap();
        fs.mkdir("/etc/conf").unwrap();
        let ino = fs.create("/etc/conf/x").unwrap();
        assert_eq!(fs.lookup("/etc/conf/x").unwrap(), ino);
        assert_eq!(fs.readdir("/etc").unwrap(), vec!["conf"]);
        assert!(fs.create("/etc/conf/x").is_err(), "duplicate");
        assert!(fs.lookup("/nope").is_err());
        assert!(fs.create("/missing/x").is_err());
    }

    #[test]
    fn large_file_through_indirects() {
        // 512-byte blocks: direct covers 10 blocks; single covers 64 more;
        // write past both into double-indirect territory.
        let fs = fresh(4096);
        let ino = fs.create("/big").unwrap();
        let chunk: Vec<u8> = (0..512u32 * 90).map(|i| (i % 251) as u8).collect();
        fs.write_at(ino, 0, &chunk).unwrap();
        assert_eq!(fs.indirection_depth(5), 0);
        assert_eq!(fs.indirection_depth(20), 1);
        assert_eq!(fs.indirection_depth(80), 2);
        let mut buf = vec![0u8; chunk.len()];
        let n = fs.read_at(ino, 0, &mut buf).unwrap();
        assert_eq!(n, chunk.len());
        assert_eq!(buf, chunk);
        // Tail reads of a grown file cost extra metadata accesses.
        fs.reset_counters();
        let mut tail = [0u8; 512];
        fs.read_at(ino, 512 * 85, &mut tail).unwrap();
        let c = fs.counters();
        assert!(c.meta_reads >= 3, "double-indirect tail read: {c:?}");
    }

    #[test]
    fn sparse_files_read_zero() {
        let fs = fresh(512);
        let ino = fs.create("/sparse").unwrap();
        fs.write_at(ino, 5000, b"end").unwrap();
        let mut buf = [9u8; 16];
        let n = fs.read_at(ino, 100, &mut buf).unwrap();
        assert_eq!(n, 16);
        assert!(buf.iter().all(|&b| b == 0));
        let mut buf = [0u8; 3];
        fs.read_at(ino, 5000, &mut buf).unwrap();
        assert_eq!(&buf, b"end");
    }

    #[test]
    fn truncate_frees_blocks() {
        let fs = fresh(512);
        let free0 = fs.free_blocks();
        let ino = fs.create("/t").unwrap();
        fs.write_at(ino, 0, &vec![1u8; 512 * 30]).unwrap();
        assert!(fs.free_blocks() < free0 - 25);
        fs.truncate(ino, 0).unwrap();
        assert_eq!(fs.stat(ino).unwrap().size, 0);
        // Most blocks come back (directory data stays).
        assert!(
            fs.free_blocks() >= free0 - 3,
            "{} vs {}",
            fs.free_blocks(),
            free0
        );
        // The file is usable after truncation.
        fs.write_at(ino, 0, b"again").unwrap();
        let mut buf = [0u8; 5];
        fs.read_at(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"again");
    }

    #[test]
    fn unlink_recycles() {
        let fs = fresh(512);
        let before = fs.free_blocks();
        fs.create("/a").unwrap();
        let ino = fs.lookup("/a").unwrap();
        fs.write_at(ino, 0, &vec![0u8; 2048]).unwrap();
        fs.unlink("/a").unwrap();
        assert!(fs.lookup("/a").is_err());
        assert!(fs.free_blocks() >= before - 1);
        // Name can be reused.
        fs.create("/a").unwrap();
        // Non-empty directories refuse unlink.
        fs.mkdir("/d").unwrap();
        fs.create("/d/x").unwrap();
        assert!(fs.unlink("/d").is_err());
        fs.unlink("/d/x").unwrap();
        fs.unlink("/d").unwrap();
    }

    #[test]
    fn mount_preserves_everything() {
        let store = MemBlockStore::new(512, 256);
        let ino;
        {
            let fs = FileSystem::mkfs(store, 64).unwrap();
            ino = fs.create("/persist").unwrap();
            fs.write_at(ino, 0, b"durable data").unwrap();
            // Extract the store back out by dropping the fs.
            // (MemBlockStore is owned; re-mount via a second fs over the
            // same storage is tested with the file-backed store instead.)
        }
        let mut p = std::env::temp_dir();
        p.push(format!("clio-fs-mount-{}", std::process::id()));
        {
            let st = clio_device::FileBlockStore::create(&p, 512, 256).unwrap();
            let fs = FileSystem::mkfs(st, 64).unwrap();
            let ino = fs.create("/persist").unwrap();
            fs.write_at(ino, 0, b"durable data").unwrap();
        }
        let st = clio_device::FileBlockStore::open(&p, 512, 256).unwrap();
        let fs = FileSystem::mount(st).unwrap();
        let ino2 = fs.lookup("/persist").unwrap();
        let mut buf = [0u8; 12];
        fs.read_at(ino2, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable data");
        std::fs::remove_file(&p).unwrap();
        let _ = ino;
    }

    #[test]
    fn counters_track_accesses() {
        let fs = fresh(512);
        let ino = fs.create("/c").unwrap();
        fs.reset_counters();
        fs.write_at(ino, 0, &vec![0u8; 512]).unwrap();
        let c = fs.counters();
        assert!(c.data_writes >= 1);
        assert!(c.total() > 0);
    }
}
