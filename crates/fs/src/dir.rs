//! Directory content encoding: a packed list of (inode, name) entries.

use clio_types::{ClioError, Result};

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The named inode.
    pub ino: u64,
    /// The name within this directory.
    pub name: String,
}

/// Serializes a directory's entries.
#[must_use]
pub fn encode(entries: &[DirEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.ino.to_le_bytes());
        out.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
    }
    out
}

/// Parses a directory's entries.
pub fn decode(data: &[u8]) -> Result<Vec<DirEntry>> {
    if data.len() < 4 {
        return Err(ClioError::BadRecord("short directory"));
    }
    let count = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    let mut off = 4;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if data.len() < off + 10 {
            return Err(ClioError::BadRecord("truncated directory entry"));
        }
        let ino = u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
        let nlen = u16::from_le_bytes([data[off + 8], data[off + 9]]) as usize;
        off += 10;
        if data.len() < off + nlen {
            return Err(ClioError::BadRecord("truncated directory name"));
        }
        let name = std::str::from_utf8(&data[off..off + nlen])
            .map_err(|_| ClioError::BadRecord("directory name not utf-8"))?
            .to_owned();
        off += nlen;
        out.push(DirEntry { ino, name });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let entries = vec![
            DirEntry {
                ino: 1,
                name: "etc".into(),
            },
            DirEntry {
                ino: 42,
                name: "readme.txt".into(),
            },
        ];
        assert_eq!(decode(&encode(&entries)).unwrap(), entries);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn rejects_truncation() {
        let entries = vec![DirEntry {
            ino: 1,
            name: "x".into(),
        }];
        let mut bytes = encode(&entries);
        bytes.truncate(bytes.len() - 1);
        assert!(decode(&bytes).is_err());
        assert!(decode(&[]).is_err());
    }
}
