//! An extent-based allocation model.
//!
//! §1: "in extent-based file systems, such files use up many extents, since
//! each addition to the file can end up allocating a new portion of the
//! disk that is discontiguous with respect to the previous extent." This
//! module models an extent-based file system's *allocation behaviour* —
//! extent lists per file, first-fit free extents — precisely enough to
//! measure extent counts and discontiguity for slowly growing files
//! interleaved with other activity, which is all the §1 motivation
//! experiment needs.

use std::collections::BTreeMap;

use clio_types::{ClioError, Result};

/// A contiguous run of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First block of the run.
    pub start: u64,
    /// Length in blocks.
    pub len: u64,
}

/// An extent-based file system model: files are extent lists carved from a
/// first-fit free list.
pub struct ExtentFs {
    /// Free extents keyed by start.
    free: BTreeMap<u64, u64>,
    files: BTreeMap<u32, Vec<Extent>>,
    next_file: u32,
}

impl ExtentFs {
    /// A fresh volume of `blocks` blocks.
    #[must_use]
    pub fn new(blocks: u64) -> ExtentFs {
        let mut free = BTreeMap::new();
        free.insert(0, blocks);
        ExtentFs {
            free,
            files: BTreeMap::new(),
            next_file: 0,
        }
    }

    /// Creates an empty file, returning its id.
    pub fn create(&mut self) -> u32 {
        let id = self.next_file;
        self.next_file += 1;
        self.files.insert(id, Vec::new());
        id
    }

    /// Appends `blocks` blocks to a file, extending its last extent when
    /// the adjacent blocks are free, otherwise starting a new extent
    /// (first-fit).
    pub fn append(&mut self, file: u32, blocks: u64) -> Result<()> {
        let mut remaining = blocks;
        while remaining > 0 {
            let last = self
                .files
                .get(&file)
                .ok_or_else(|| ClioError::NotFound(format!("file {file}")))?
                .last()
                .copied();
            // Try to grow the last extent in place.
            if let Some(ext) = last {
                let next = ext.start + ext.len;
                if let Some(&flen) = self.free.get(&next) {
                    let take = flen.min(remaining);
                    self.free.remove(&next);
                    if flen > take {
                        self.free.insert(next + take, flen - take);
                    }
                    let exts = self.files.get_mut(&file).expect("checked above");
                    exts.last_mut().expect("checked above").len += take;
                    remaining -= take;
                    continue;
                }
            }
            // First-fit a new extent.
            let (&start, &flen) = self.free.iter().next().ok_or(ClioError::VolumeFull)?;
            let take = flen.min(remaining);
            self.free.remove(&start);
            if flen > take {
                self.free.insert(start + take, flen - take);
            }
            self.files
                .get_mut(&file)
                .ok_or_else(|| ClioError::NotFound(format!("file {file}")))?
                .push(Extent { start, len: take });
            remaining -= take;
        }
        Ok(())
    }

    /// Deletes a file, returning its blocks to the free list (with
    /// coalescing).
    pub fn delete(&mut self, file: u32) -> Result<()> {
        let exts = self
            .files
            .remove(&file)
            .ok_or_else(|| ClioError::NotFound(format!("file {file}")))?;
        for e in exts {
            self.free.insert(e.start, e.len);
        }
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for (&s, &l) in &self.free {
            match merged.iter_mut().next_back() {
                Some((&ps, plen)) if ps + *plen == s => *plen += l,
                _ => {
                    merged.insert(s, l);
                }
            }
        }
        self.free = merged;
    }

    /// The file's extent list.
    pub fn extents(&self, file: u32) -> Result<&[Extent]> {
        self.files
            .get(&file)
            .map(Vec::as_slice)
            .ok_or_else(|| ClioError::NotFound(format!("file {file}")))
    }

    /// Number of extents a file occupies — the §1 fragmentation measure.
    pub fn extent_count(&self, file: u32) -> Result<usize> {
        Ok(self.extents(file)?.len())
    }

    /// Seeks (discontiguities) incurred reading the file start to end.
    pub fn sequential_read_seeks(&self, file: u32) -> Result<u64> {
        Ok(self.extents(file)?.len().saturating_sub(1) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_growth_stays_one_extent() {
        let mut fs = ExtentFs::new(1000);
        let f = fs.create();
        for _ in 0..10 {
            fs.append(f, 5).unwrap();
        }
        assert_eq!(fs.extent_count(f).unwrap(), 1);
        assert_eq!(fs.extents(f).unwrap()[0], Extent { start: 0, len: 50 });
    }

    #[test]
    fn interleaved_growth_fragments() {
        // Two files growing in alternation cannot both stay contiguous.
        let mut fs = ExtentFs::new(10_000);
        let a = fs.create();
        let b = fs.create();
        for _ in 0..50 {
            fs.append(a, 1).unwrap();
            fs.append(b, 1).unwrap();
        }
        let ea = fs.extent_count(a).unwrap();
        let eb = fs.extent_count(b).unwrap();
        assert!(ea + eb >= 50, "a={ea} b={eb}");
        assert!(fs.sequential_read_seeks(a).unwrap() > 10);
    }

    #[test]
    fn delete_coalesces_free_space() {
        let mut fs = ExtentFs::new(100);
        let a = fs.create();
        let b = fs.create();
        fs.append(a, 30).unwrap();
        fs.append(b, 30).unwrap();
        fs.delete(a).unwrap();
        fs.delete(b).unwrap();
        let c = fs.create();
        fs.append(c, 100).unwrap();
        assert_eq!(fs.extent_count(c).unwrap(), 1);
    }

    #[test]
    fn exhaustion() {
        let mut fs = ExtentFs::new(10);
        let f = fs.create();
        fs.append(f, 10).unwrap();
        assert!(matches!(
            fs.append(f, 1).unwrap_err(),
            ClioError::VolumeFull
        ));
    }
}
