#![warn(missing_docs)]
//! A conventional Unix-like file system substrate.
//!
//! Clio "is implemented as an extension of a conventional disk-based file
//! server" (§2); and the paper's motivation (§1) rests on the behaviour of
//! standard file systems on large, continually growing files: "in indirect
//! block file systems (such as Unix), blocks at the tail end of such files
//! become increasingly expensive to read and write", while "in extent-based
//! file systems, such files use up many extents".
//!
//! This crate implements that conventional file server from scratch on a
//! rewriteable [`clio_device::BlockStore`]:
//!
//! - [`fs`]: an indirect-block file system (superblock, free bitmap, inode
//!   table, direct/single/double-indirect blocks, directories);
//! - [`extent`]: an extent-based allocation simulator for the §1
//!   fragmentation argument;
//! - operation counters so the motivation benchmark can report the block
//!   accesses needed to read and append at the tail of growing files.

pub mod alloc;
pub mod dir;
pub mod extent;
pub mod fs;
pub mod inode;

pub use extent::ExtentFs;
pub use fs::{FileKind, FileSystem, FsCounters, Stat};
