#![warn(missing_docs)]
//! The entrymap search tree (§2.1, §3.3) and its baselines.
//!
//! "To efficiently locate the entries in log files, the server maintains a
//! special log file called the entrymap log file. The data in this log file
//! describes a sparse bitmap for each (other) log file, indicating which
//! blocks on the log device contain log entries in this log file." (§2.1)
//!
//! A level-`i` entrymap entry appears every `N^i` blocks and covers the
//! previous `N^i` blocks with one `N`-bit bitmap per active log file. The
//! entries effectively form a search tree of degree `N` (Figure 2); locating
//! an entry `d` blocks away examines about `2·log_N d` entrymap entries
//! (§3.3.1, Figure 3).
//!
//! This crate provides:
//!
//! - [`Geometry`]: block/group/level arithmetic;
//! - [`EntrymapWriter`]: decides which entrymap records to emit at each
//!   block boundary and maintains the in-memory *pending* bitmaps for the
//!   not-yet-mapped tail of the log;
//! - [`Locator`]: the backward/forward search over the tree, tolerant of
//!   invalidated and displaced map blocks (§2.3.2);
//! - [`tsearch`]: locating a block by timestamp (§2.1);
//! - [`rebuild`]: reconstructing the pending bitmaps after a crash (§2.3.1,
//!   Figure 4);
//! - [`naive`] and [`binary_tree`]: the exhaustive-scan floor and a
//!   Daniels-style binary-tree locator (§5.1), as baselines;
//! - [`theory`]: the paper's closed-form cost curves for Figures 3 and 4.
//!
//! Throughout this crate, block numbers are *data-block* coordinates: block
//! `db` here is device block `db + 1` (device block 0 is the volume label).

pub mod binary_tree;
pub mod geometry;
pub mod harness;
pub mod locate;
pub mod naive;
pub mod pending;
pub mod rebuild;
pub mod source;
pub mod theory;
pub mod tsearch;
pub mod writer;

pub use geometry::Geometry;
pub use locate::{LocateStats, Locator};
pub use pending::PendingMaps;
pub use rebuild::{rebuild_pending, rebuild_pending_with_findings, RebuildFindings, RebuildStats};
pub use source::BlockSource;
pub use writer::EntrymapWriter;
