//! In-memory bitmaps for the unmapped tail of the log.
//!
//! Between two level-`l` boundaries, the server accumulates, per log file,
//! which sub-groups of the *current* level-`l` group contain entries. This
//! is the "cached knowledge" destroyed by a crash and reconstructed during
//! initialization (§2.3.1 step 2, §3.4). The locator consults it for
//! searches that start in the tail region not yet covered by on-device
//! entrymap entries.

use std::collections::BTreeMap;

use clio_types::{LogFileId, SmallBitmap};

use crate::geometry::Geometry;

/// Per-level accumulating bitmaps for the current (incomplete) group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMaps {
    geo: Geometry,
    levels: Vec<LevelPending>,
}

/// One level's in-progress group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LevelPending {
    /// Which group at this level is accumulating.
    pub group: u64,
    /// Bitmaps per log file; a missing id means "no entries yet".
    pub maps: BTreeMap<LogFileId, SmallBitmap>,
}

impl PendingMaps {
    /// Empty pending state for a fresh volume.
    #[must_use]
    pub fn new(geo: Geometry) -> PendingMaps {
        PendingMaps {
            geo,
            levels: vec![LevelPending {
                group: 0,
                maps: BTreeMap::new(),
            }],
        }
    }

    /// The tree geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Number of levels currently tracked.
    #[must_use]
    pub fn level_count(&self) -> u8 {
        self.levels.len() as u8
    }

    pub(crate) fn level(&self, level: u8) -> Option<&LevelPending> {
        self.levels.get(usize::from(level.checked_sub(1)?))
    }

    pub(crate) fn level_mut(&mut self, level: u8) -> &mut LevelPending {
        let idx = usize::from(level - 1);
        while self.levels.len() <= idx {
            self.levels.push(LevelPending {
                group: 0,
                maps: BTreeMap::new(),
            });
        }
        &mut self.levels[idx]
    }

    /// Sets bit `bit` for `id` in the current group at `level`.
    pub(crate) fn set_bit(&mut self, level: u8, id: LogFileId, bit: usize) {
        let n = self.geo.fanout() as usize;
        let lp = self.level_mut(level);
        lp.maps
            .entry(id)
            .or_insert_with(|| SmallBitmap::new(n))
            .set(bit);
    }

    /// The union bitmap over `ids` for (`level`, `group`), if that group is
    /// the one currently accumulating at that level.
    ///
    /// `Some(bitmap)` is authoritative (an all-zero bitmap means "these log
    /// files have no entries in the covered range"); `None` means this
    /// pending state cannot answer for that group.
    #[must_use]
    pub fn union_for(&self, level: u8, group: u64, ids: &[LogFileId]) -> Option<SmallBitmap> {
        let Some(lp) = self.level(level) else {
            // A level the writer never touched has never crossed a group
            // boundary nor received a propagation: group 0 is provably
            // all-empty, any other group cannot be current.
            return (group == 0).then(|| SmallBitmap::new(self.geo.fanout() as usize));
        };
        if lp.group != group {
            return None;
        }
        let mut acc = SmallBitmap::new(self.geo.fanout() as usize);
        for id in ids {
            if let Some(bm) = lp.maps.get(id) {
                acc.union_with(bm);
            }
        }
        Some(acc)
    }

    /// Drops all per-file bitmaps for (`level`) and advances to `group`.
    pub(crate) fn roll(&mut self, level: u8, group: u64) {
        let lp = self.level_mut(level);
        lp.group = group;
        lp.maps.clear();
    }

    /// Takes the accumulated bitmaps for (`level`), leaving it rolled to
    /// `next_group`.
    pub(crate) fn take(&mut self, level: u8, next_group: u64) -> BTreeMap<LogFileId, SmallBitmap> {
        let lp = self.level_mut(level);
        lp.group = next_group;
        std::mem::take(&mut lp.maps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_union() {
        let mut p = PendingMaps::new(Geometry::new(8));
        p.set_bit(1, LogFileId(8), 2);
        p.set_bit(1, LogFileId(9), 5);
        let u = p.union_for(1, 0, &[LogFileId(8), LogFileId(9)]).unwrap();
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![2, 5]);
        let solo = p.union_for(1, 0, &[LogFileId(9)]).unwrap();
        assert_eq!(solo.iter_ones().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn wrong_group_is_unknown_not_empty() {
        let mut p = PendingMaps::new(Geometry::new(8));
        p.set_bit(1, LogFileId(8), 2);
        assert!(p.union_for(1, 1, &[LogFileId(8)]).is_none());
        // Right group, unknown id: authoritative empty.
        let u = p.union_for(1, 0, &[LogFileId(99)]).unwrap();
        assert!(!u.any());
    }

    #[test]
    fn levels_appear_on_demand() {
        let mut p = PendingMaps::new(Geometry::new(8));
        assert_eq!(p.level_count(), 1);
        p.set_bit(3, LogFileId(8), 0);
        assert_eq!(p.level_count(), 3);
        assert!(p.union_for(2, 0, &[LogFileId(8)]).unwrap().count_ones() == 0);
        assert!(p.union_for(3, 0, &[LogFileId(8)]).unwrap().get(0));
    }

    #[test]
    fn roll_clears_and_advances() {
        let mut p = PendingMaps::new(Geometry::new(8));
        p.set_bit(1, LogFileId(8), 1);
        p.roll(1, 5);
        assert!(p.union_for(1, 0, &[LogFileId(8)]).is_none());
        let u = p.union_for(1, 5, &[LogFileId(8)]).unwrap();
        assert!(!u.any());
    }

    #[test]
    fn take_returns_maps() {
        let mut p = PendingMaps::new(Geometry::new(8));
        p.set_bit(1, LogFileId(8), 1);
        let taken = p.take(1, 1);
        assert_eq!(taken.len(), 1);
        assert!(taken[&LogFileId(8)].get(1));
        assert!(p.union_for(1, 1, &[LogFileId(8)]).unwrap().count_ones() == 0);
    }
}
