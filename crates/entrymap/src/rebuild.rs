//! Reconstructing entrymap pending state after a crash.
//!
//! On reboot "the server then examines recently-written blocks, to
//! reconstruct missing 'entrymap' information (that is, bitmap information
//! for entrymap log entries that had still to be written at the time of the
//! crash)" (§2.3.1). §3.4 analyzes the cost: level-1 information comes from
//! scanning the up-to-`N` blocks since the last level-1 map; level-`i`
//! information comes from the up-to-`N` level-`(i-1)` maps since the last
//! level-`i` map — in total up to `N·log_N b` block examinations, about
//! half that on average (Figure 4).

use clio_types::{LogFileId, Result};

use clio_format::{BlockView, EntrymapRecord};

use crate::geometry::Geometry;
use crate::pending::PendingMaps;
use crate::source::BlockSource;

/// Operation counts for a rebuild, for the Figure 4 harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildStats {
    /// Device block reads issued (raw; a block cache would deduplicate the
    /// overlap between levels).
    pub blocks_read: u64,
    /// Distinct blocks examined.
    pub distinct_blocks: u64,
}

/// Everything a rebuild learned, including which blocks failed to parse —
/// recovery invalidates those (§2.3.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RebuildFindings {
    /// Blocks that were neither parseable nor already invalidated.
    pub corrupt: Vec<u64>,
    /// Blocks found already invalidated (all 1s).
    pub invalidated: Vec<u64>,
}

/// Rebuilds [`PendingMaps`] equivalent to the state a never-crashed writer
/// would hold after `src.data_end()` blocks.
pub fn rebuild_pending<S: BlockSource>(src: &S) -> Result<(PendingMaps, RebuildStats)> {
    let (pending, stats, _) = rebuild_pending_with_findings(src)?;
    Ok((pending, stats))
}

/// Like [`rebuild_pending`], also reporting the corrupt and invalidated
/// blocks encountered so recovery can act on them (§2.3.2).
pub fn rebuild_pending_with_findings<S: BlockSource>(
    src: &S,
) -> Result<(PendingMaps, RebuildStats, RebuildFindings)> {
    let geo = Geometry::new(src.fanout());
    let end = src.data_end();
    let mut pending = PendingMaps::new(geo);
    let mut stats = RebuildStats::default();
    let mut findings = RebuildFindings::default();
    let mut seen = std::collections::BTreeSet::new();
    if end == 0 {
        return Ok((pending, stats, findings));
    }
    let n = geo.fanout();
    let levels = geo.levels_for(end);

    // The writer rolls a level's group when it *opens* the block at the
    // boundary; block `end` has not been opened, so the current group at
    // level `l` is (end-1)/N^l, and a sub-group whose map would be emitted
    // exactly at block `end` is still held in pending state one level down.
    let g1 = geo.group_of(1, end - 1);
    pending.roll(1, g1);
    for db in geo.group_start(1, g1)..end {
        stats.blocks_read += 1;
        seen.insert(db);
        let img = src.read(db)?;
        let view = match BlockView::parse(&img) {
            Ok(v) => v,
            Err(clio_types::ClioError::InvalidatedBlock(_)) => {
                findings.invalidated.push(db);
                continue;
            }
            Err(_) => {
                findings.corrupt.push(db);
                continue; // unreadable blocks contribute nothing
            }
        };
        for e in view.entries() {
            let Ok(e) = e else { break };
            if e.header.id.is_entrymapped() {
                pending.set_bit(1, e.header.id, (db % n) as usize);
            }
        }
    }

    // Levels 2..: read the level-(l-1) maps of the completed sub-groups of
    // the current level-l group.
    for level in 2..=levels {
        let gl = geo.group_of(level, end - 1);
        pending.roll(level, gl);
        let first_sub = gl * n;
        // Sub-groups whose maps have actually been emitted: the map for
        // sub-group k is written when block (k+1)·N^(level-1) opens, which
        // has happened only for blocks <= end-1.
        let complete_subs = geo.group_of(level - 1, end - 1);
        for sub in first_sub..complete_subs {
            let map_block = geo.map_block(level - 1, sub);
            debug_assert!(map_block <= end);
            if let Some(recs) = read_maps_at(src, geo, map_block, level - 1, sub, &mut stats)? {
                for rec in recs {
                    for (id, bm) in &rec.maps {
                        if bm.any() {
                            pending.set_bit(level, *id, (sub % n) as usize);
                        }
                    }
                }
            } else {
                // Map destroyed: recompute the sub-group's contribution the
                // hard way, by scanning its blocks.
                let start = geo.group_start(level - 1, sub);
                let stop = geo.group_start(level - 1, sub + 1).min(end);
                let ids = scan_ids(src, start, stop, &mut stats)?;
                for id in ids {
                    pending.set_bit(level, id, (sub % n) as usize);
                }
            }
            seen.insert(map_block.min(end.saturating_sub(1)));
        }
    }
    stats.distinct_blocks = seen.len() as u64;
    Ok((pending, stats, findings))
}

/// Reads the entrymap records for (`level`, `group`) at or displaced after
/// `map_block`. `None` means the map is unrecoverable from maps alone.
fn read_maps_at<S: BlockSource>(
    src: &S,
    geo: Geometry,
    map_block: u64,
    level: u8,
    group: u64,
    stats: &mut RebuildStats,
) -> Result<Option<Vec<EntrymapRecord>>> {
    let end = src.data_end();
    let mut limit = map_block.saturating_add(4).min(end);
    let mut found = Vec::new();
    let mut cand = map_block;
    while cand < limit {
        stats.blocks_read += 1;
        let img = src.read(cand)?;
        let Ok(view) = BlockView::parse(&img) else {
            cand += 1;
            continue;
        };
        let mut found_here = false;
        let mut continued_here = false;
        for e in view.entries() {
            let Ok(e) = e else { break };
            if e.header.id != LogFileId::ENTRYMAP {
                continue;
            }
            if let Ok(rec) = EntrymapRecord::decode(e.payload) {
                if rec.level == level && rec.group == group && rec.bits == geo.fanout() as u16 {
                    found_here = true;
                    continued_here |= rec.continued;
                    found.push(rec);
                }
            }
        }
        if found_here {
            if !continued_here {
                return Ok(Some(found));
            }
            // The map continues in a later block; widen the window.
            limit = (cand + 1).saturating_add(4).min(end);
        }
        cand += 1;
    }
    // An unterminated chain is incomplete — recompute from raw blocks.
    Ok(None)
}

/// The set of entrymapped ids with entries in blocks `[start, stop)`.
fn scan_ids<S: BlockSource>(
    src: &S,
    start: u64,
    stop: u64,
    stats: &mut RebuildStats,
) -> Result<std::collections::BTreeSet<LogFileId>> {
    let mut ids = std::collections::BTreeSet::new();
    for db in start..stop {
        stats.blocks_read += 1;
        let img = src.read(db)?;
        let Ok(view) = BlockView::parse(&img) else {
            continue;
        };
        for e in view.entries() {
            let Ok(e) = e else { break };
            if e.header.id.is_entrymapped() {
                ids.insert(e.header.id);
            }
        }
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_log;

    fn random_plan(seed: u64, total: usize, files: &[u16], density: f64) -> Vec<Vec<u16>> {
        use clio_testkit::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..total)
            .map(|_| {
                files
                    .iter()
                    .copied()
                    .filter(|_| rng.gen_bool(density))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rebuild_equals_live_writer_state() {
        for n in [2usize, 4, 16] {
            for total in [0usize, 1, 5, 16, 17, 64, 100, 257, 300] {
                let plan = random_plan(n as u64 * 1000 + total as u64, total, &[8, 9, 10], 0.2);
                let (src, live) = build_log(n, 1024, &plan);
                let (rebuilt, _) = rebuild_pending(&src).unwrap();
                // The rebuilt state must answer every union query the live
                // state answers, identically, at every level and for every
                // tracked group.
                let geo = Geometry::new(n);
                let end = total as u64;
                for level in 1..=geo.levels_for(end.max(1)) {
                    let group = geo.group_of(level, end.saturating_sub(1));
                    for id in [8u16, 9, 10] {
                        let ids = [clio_types::LogFileId(id)];
                        assert_eq!(
                            rebuilt.union_for(level, group, &ids),
                            live.union_for(level, group, &ids),
                            "n={n} total={total} level={level} id={id}"
                        );
                        // Non-current groups are unanswerable by both.
                        assert_eq!(
                            rebuilt.union_for(level, group + 1, &ids),
                            live.union_for(level, group + 1, &ids),
                            "n={n} total={total} level={level} id={id} (next group)"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rebuild_cost_is_bounded_by_n_log_b() {
        let n = 16usize;
        let total = 3000; // crosses into level 3
        let plan = random_plan(7, total, &[8, 9], 0.3);
        let (src, _) = build_log(n, 1024, &plan);
        let (_, stats) = rebuild_pending(&src).unwrap();
        // §3.4: at most N·log_N(b) blocks; b = 3000, log_16(3000) < 3.
        let bound = (n as u64) * 3;
        assert!(
            stats.blocks_read <= bound,
            "read {} blocks, bound {bound}",
            stats.blocks_read
        );
    }

    #[test]
    fn rebuild_of_empty_log() {
        let (src, live) = build_log(4, 512, &[]);
        let (rebuilt, stats) = rebuild_pending(&src).unwrap();
        assert_eq!(rebuilt, live);
        assert_eq!(stats.blocks_read, 0);
    }
}
