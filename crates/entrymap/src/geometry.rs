//! Entrymap tree arithmetic.

/// Fixed geometry of an entrymap tree: the degree `N` (paper §2.1).
///
/// Level-`l` groups partition the data blocks into runs of `N^l`; the map
/// covering group `g` at level `l` is written at the start of data block
/// `(g + 1) · N^l` (the first block *after* the covered range, so the whole
/// range is known when the map is written).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    fanout: u64,
}

impl Geometry {
    /// Creates a geometry with degree `fanout`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= fanout <= 1024`; the degree is fixed at volume
    /// creation and an out-of-range value is a configuration bug.
    #[must_use]
    pub fn new(fanout: usize) -> Geometry {
        assert!((2..=1024).contains(&fanout), "unsupported fanout {fanout}");
        Geometry {
            fanout: fanout as u64,
        }
    }

    /// The degree `N`.
    #[must_use]
    pub fn fanout(&self) -> u64 {
        self.fanout
    }

    /// `N^level`, saturating at `u64::MAX` (a period larger than any device).
    #[must_use]
    pub fn period(&self, level: u8) -> u64 {
        self.fanout
            .checked_pow(u32::from(level))
            .unwrap_or(u64::MAX)
    }

    /// The level-`level` group containing data block `db`.
    #[must_use]
    pub fn group_of(&self, level: u8, db: u64) -> u64 {
        db / self.period(level)
    }

    /// The first data block of group `group` at `level`.
    #[must_use]
    pub fn group_start(&self, level: u8, group: u64) -> u64 {
        group.saturating_mul(self.period(level))
    }

    /// The data block whose start carries the map for (`level`, `group`).
    #[must_use]
    pub fn map_block(&self, level: u8, group: u64) -> u64 {
        (group + 1).saturating_mul(self.period(level))
    }

    /// The highest level with a boundary at data block `db` (0 if none).
    ///
    /// A boundary at level `l` means maps for levels `1..=l` are due as the
    /// first entries of block `db` — "a block that contains a level-(i+1)
    /// entrymap entry also contains a level-i log entry" (§3.3.1).
    #[must_use]
    pub fn boundary_level(&self, db: u64) -> u8 {
        if db == 0 {
            return 0;
        }
        let mut level = 0u8;
        let mut period = 1u64;
        loop {
            match period.checked_mul(self.fanout) {
                Some(next) if db.is_multiple_of(next) => {
                    level += 1;
                    period = next;
                }
                _ => return level,
            }
        }
    }

    /// Number of levels that can hold *pending* (unmapped tail) state when
    /// `end` data blocks are written: the smallest `L` with `N^L >= end`,
    /// and at least 1.
    #[must_use]
    pub fn levels_for(&self, end: u64) -> u8 {
        let mut level = 1u8;
        while self.period(level) < end {
            level += 1;
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods() {
        let g = Geometry::new(16);
        assert_eq!(g.period(0), 1);
        assert_eq!(g.period(1), 16);
        assert_eq!(g.period(2), 256);
        assert_eq!(g.period(3), 4096);
        // Saturation instead of overflow.
        assert_eq!(g.period(60), u64::MAX);
    }

    #[test]
    fn boundary_levels_match_figure_2() {
        // With N = 4: block 4 closes a level-1 group; block 16 closes a
        // level-2 group (and a level-1 group); block 64 closes level 3.
        let g = Geometry::new(4);
        assert_eq!(g.boundary_level(0), 0);
        assert_eq!(g.boundary_level(1), 0);
        assert_eq!(g.boundary_level(4), 1);
        assert_eq!(g.boundary_level(8), 1);
        assert_eq!(g.boundary_level(16), 2);
        assert_eq!(g.boundary_level(32), 2);
        assert_eq!(g.boundary_level(64), 3);
    }

    #[test]
    fn groups_and_map_blocks() {
        let g = Geometry::new(16);
        assert_eq!(g.group_of(1, 0), 0);
        assert_eq!(g.group_of(1, 15), 0);
        assert_eq!(g.group_of(1, 16), 1);
        assert_eq!(g.group_start(1, 3), 48);
        // The map for level-1 group 0 (blocks 0..16) lives at block 16.
        assert_eq!(g.map_block(1, 0), 16);
        // The map for level-2 group 0 (blocks 0..256) lives at block 256.
        assert_eq!(g.map_block(2, 0), 256);
        assert_eq!(g.map_block(1, 9), 160);
    }

    #[test]
    fn levels_for_written_prefix() {
        let g = Geometry::new(16);
        assert_eq!(g.levels_for(0), 1);
        assert_eq!(g.levels_for(1), 1);
        assert_eq!(g.levels_for(16), 1);
        assert_eq!(g.levels_for(17), 2);
        assert_eq!(g.levels_for(256), 2);
        assert_eq!(g.levels_for(257), 3);
        assert_eq!(g.levels_for(1_000_000), 5);
    }

    #[test]
    #[should_panic(expected = "unsupported fanout")]
    fn rejects_degenerate_fanout() {
        let _ = Geometry::new(1);
    }
}
