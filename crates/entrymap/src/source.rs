//! The read interface the search algorithms run against.

use std::sync::Arc;

use clio_types::Result;

/// Random read access to the written data blocks of a log volume.
///
/// Implemented by `clio-core` on top of the block cache and volume layer;
/// implemented in tests by simple in-memory vectors. Blocks are addressed in
/// data-block coordinates (label excluded), and the written region is the
/// prefix `[0, data_end)`.
pub trait BlockSource {
    /// The entrymap degree `N` in effect for this volume.
    fn fanout(&self) -> usize;

    /// Number of data blocks written so far.
    fn data_end(&self) -> u64;

    /// Reads the raw image of data block `db`.
    ///
    /// Returns the bytes even if they will not parse (corrupt or
    /// invalidated blocks); parsing and classification is the caller's
    /// job. The `Arc` lets cache-backed sources hand out their cached
    /// image without copying.
    fn read(&self, db: u64) -> Result<Arc<Vec<u8>>>;
}

impl<T: BlockSource + ?Sized> BlockSource for &T {
    fn fanout(&self) -> usize {
        (**self).fanout()
    }

    fn data_end(&self) -> u64 {
        (**self).data_end()
    }

    fn read(&self, db: u64) -> Result<Arc<Vec<u8>>> {
        (**self).read(db)
    }
}

/// An in-memory [`BlockSource`] over pre-built block images. Used by tests
/// and benchmarks in this crate.
pub struct VecSource {
    /// The entrymap degree.
    pub fanout: usize,
    /// One image per written data block.
    pub blocks: Vec<Vec<u8>>,
}

impl BlockSource for VecSource {
    fn fanout(&self) -> usize {
        self.fanout
    }

    fn data_end(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read(&self, db: u64) -> Result<Arc<Vec<u8>>> {
        self.blocks
            .get(db as usize)
            .map(|b| Arc::new(b.clone()))
            .ok_or(clio_types::ClioError::UnwrittenBlock(clio_types::BlockNo(
                db,
            )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_reads_prefix() {
        let src = VecSource {
            fanout: 4,
            blocks: vec![vec![1], vec![2]],
        };
        assert_eq!(src.data_end(), 2);
        assert_eq!(*src.read(1).unwrap(), vec![2]);
        assert!(src.read(2).is_err());
        // Borrowed sources delegate.
        let r = &src;
        assert_eq!(BlockSource::fanout(&r), 4);
    }
}
