//! The paper's closed-form cost curves.
//!
//! Figure 3 plots the average number of entrymap entries examined to locate
//! an entry `d` blocks away without caching, `n = 2·log_N d`; Figure 4
//! plots the average number of blocks examined to reconstruct entrymap
//! information over a `b`-block volume, `n = (N·log_N b) / 2`.

/// Figure 3: expected entrymap entries examined to cover distance `d` with
/// degree `n`, no caching: `2·log_n d` (0 when `d < 1`).
#[must_use]
pub fn fig3_locate_cost(n: usize, d: f64) -> f64 {
    if d < 1.0 {
        return 0.0;
    }
    2.0 * d.ln() / (n as f64).ln()
}

/// Figure 4: expected blocks examined to reconstruct entrymap information
/// for a volume with `b` written blocks and degree `n`:
/// `(n · log_n b) / 2` (0 when `b <= 1`).
#[must_use]
pub fn fig4_rebuild_cost(n: usize, b: f64) -> f64 {
    if b <= 1.0 {
        return 0.0;
    }
    (n as f64) * (b.ln() / (n as f64).ln()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape() {
        // §3.3.1: "there is little benefit in N being larger than 16 or 32,
        // even for locating entries that are as many as 10^7 blocks away."
        let d = 1e7;
        let n16 = fig3_locate_cost(16, d);
        let n128 = fig3_locate_cost(128, d);
        assert!((n16 - 11.62).abs() < 0.1, "n16 = {n16}");
        assert!(n128 > 6.0 && n128 < n16);
        // Larger N decreases cost only ~1/log N.
        assert!(n16 / n128 < 2.1);
        // Monotone in d.
        assert!(fig3_locate_cost(16, 1e3) < fig3_locate_cost(16, 1e6));
        assert_eq!(fig3_locate_cost(16, 0.5), 0.0);
    }

    #[test]
    fn fig4_shape() {
        // §3.4: "this cost increases if N is increased."
        let b = 1e6;
        assert!(fig4_rebuild_cost(16, b) < fig4_rebuild_cost(64, b));
        assert!(fig4_rebuild_cost(64, b) < fig4_rebuild_cost(128, b));
        // N=16, b=10^6: (16 * log_16 1e6)/2 = 8 * 4.98 ≈ 39.9.
        let v = fig4_rebuild_cost(16, b);
        assert!((v - 39.86).abs() < 0.2, "v = {v}");
        assert_eq!(fig4_rebuild_cost(16, 1.0), 0.0);
    }
}
