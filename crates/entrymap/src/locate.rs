//! Searching the entrymap tree.
//!
//! [`Locator::locate_before`] finds the nearest block at or before a
//! starting point that contains entries of a given set of log files (a set,
//! because reading a log file includes its sublogs); `locate_at_or_after`
//! is the forward mirror. Both climb the entrymap tree from the starting
//! block and descend into the nearest marked subtree, examining about
//! `2·log_N d` entrymap entries to cover a distance of `d` blocks
//! (§3.3.1) — each block read along the way is counted in
//! [`LocateStats`], which is what Table 1 and Figure 3 report.
//!
//! The locator tolerates the §2.3.2 failure modes: an invalidated or
//! corrupt map block is skipped and the map is looked for in the next few
//! blocks (displaced maps); if no map can be found at all, the search
//! "simply assumes that no such entrymap entry is present, at the cost of
//! some additional searching of the lower levels of the tree" — the
//! fallback path here.

use clio_types::{LogFileId, Result, SmallBitmap};

use clio_format::{BlockView, EntrymapRecord};

use crate::geometry::Geometry;
use crate::pending::PendingMaps;
use crate::source::BlockSource;

/// How many blocks after the nominal map block to look for displaced maps.
const DISPLACEMENT_WINDOW: u64 = 4;

/// Operation counts accumulated by a [`Locator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocateStats {
    /// Device/cache block reads issued.
    pub blocks_read: u64,
    /// Entrymap log entries consulted (Table 1's "# of entrymap log
    /// entries read").
    pub map_entries_examined: u64,
    /// Times the search had to proceed without a map (missing or
    /// destroyed) and scan the level below instead.
    pub fallbacks: u64,
    /// Highest tree level the search climbed to (0 for searches that never
    /// ran; a direct hit in the starting group reports 1). The
    /// distribution of this value over a workload is the tree-descent
    /// depth the §3.3.1 cost model predicts as `log_N d`.
    pub max_level: u64,
}

/// A search over one volume's entrymap tree.
pub struct Locator<'a, S: BlockSource> {
    src: &'a S,
    pending: Option<&'a PendingMaps>,
    geo: Geometry,
    /// Accumulated operation counts.
    pub stats: LocateStats,
}

impl<'a, S: BlockSource> Locator<'a, S> {
    /// Creates a locator; `pending` supplies the in-memory bitmaps for the
    /// unmapped tail (pass `None` to force tail fallback scans, as when
    /// measuring cold recovery behaviour).
    pub fn new(src: &'a S, pending: Option<&'a PendingMaps>) -> Locator<'a, S> {
        Locator {
            geo: Geometry::new(src.fanout()),
            src,
            pending,
            stats: LocateStats::default(),
        }
    }

    fn read(&mut self, db: u64) -> Result<std::sync::Arc<Vec<u8>>> {
        self.stats.blocks_read += 1;
        self.src.read(db)
    }

    /// Whether data block `db` holds an entry of any id in `ids`.
    /// Unreadable blocks count as empty — their data is lost (§2.3.2).
    pub fn block_contains(&mut self, db: u64, ids: &[LogFileId]) -> Result<bool> {
        let img = self.read(db)?;
        let Ok(view) = BlockView::parse(&img) else {
            return Ok(false);
        };
        for e in view.entries() {
            let Ok(e) = e else { break };
            if ids.contains(&e.header.id) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The union bitmap over `ids` for group (`level`, `group`).
    ///
    /// `Some` is authoritative (possibly all-zero); `None` means no map
    /// could be found and the caller must search the level below.
    fn get_map(&mut self, level: u8, group: u64, ids: &[LogFileId]) -> Result<Option<SmallBitmap>> {
        let m = self.geo.map_block(level, group);
        let end = self.src.data_end();
        if m >= end {
            // The covering map has not been written; the in-memory pending
            // bitmaps stand in for it (§2.3.1).
            let ans = self.pending.and_then(|p| p.union_for(level, group, ids));
            if ans.is_some() {
                self.stats.map_entries_examined += 1;
            }
            return Ok(ans);
        }
        let mut limit = m.saturating_add(DISPLACEMENT_WINDOW).min(end);
        let mut acc: Option<SmallBitmap> = None;
        let mut awaiting_more = false;
        let mut cand = m;
        while cand < limit {
            let img = self.read(cand)?;
            let Ok(view) = BlockView::parse(&img) else {
                // Invalidated or corrupt: the map may be displaced into the
                // next uncorrupted block (§2.3.2).
                cand += 1;
                continue;
            };
            let mut found_here = false;
            let mut continued_here = false;
            for e in view.entries() {
                let Ok(e) = e else { break };
                if e.header.id != LogFileId::ENTRYMAP {
                    continue;
                }
                let Ok(rec) = EntrymapRecord::decode(e.payload) else {
                    continue;
                };
                if rec.level == level
                    && rec.group == group
                    && u64::from(rec.bits) == self.geo.fanout()
                {
                    found_here = true;
                    continued_here |= rec.continued;
                    let a = acc.get_or_insert_with(|| SmallBitmap::new(self.geo.fanout() as usize));
                    for id in ids {
                        if let Some(bm) = rec.map_for(*id) {
                            a.union_with(bm);
                        }
                    }
                }
            }
            if found_here {
                self.stats.map_entries_examined += 1;
                if !continued_here {
                    return Ok(acc);
                }
                // More pieces of this map were displaced forward; widen
                // the search window past this block.
                awaiting_more = true;
                limit = (cand + 1).saturating_add(DISPLACEMENT_WINDOW).min(end);
            }
            cand += 1;
        }
        // A chain that never terminated is incomplete: answering from it
        // could hide entries, so fall back to searching the level below.
        if awaiting_more {
            return Ok(None);
        }
        Ok(acc)
    }

    /// Pending maps at level ≥ 2 reflect only *completed, propagated*
    /// sub-groups; the sub-group still accumulating at the tail of the log
    /// may contain entries that no bitmap mentions yet. When the searched
    /// group overlaps the tail, force a descent into that sub-group. (Maps
    /// read from the device never overlap the tail — they are written only
    /// after their whole range — so this is a no-op for them.)
    fn force_tail_subgroup(&self, level: u8, group: u64, bm: &mut SmallBitmap) {
        if level < 2 {
            // Level-1 pending bits are set per sealed block and are always
            // authoritative.
            return;
        }
        let end = self.src.data_end();
        if end == 0 {
            return;
        }
        let n = self.geo.fanout();
        let tail_sub = self.geo.group_of(level - 1, end - 1);
        if tail_sub >= group * n && tail_sub < (group + 1) * n {
            bm.set((tail_sub - group * n) as usize);
        }
    }

    /// Finds the greatest data block `<= from` containing entries of `ids`.
    pub fn locate_before(&mut self, ids: &[LogFileId], from: u64) -> Result<Option<u64>> {
        let end = self.src.data_end();
        if end == 0 {
            return Ok(None);
        }
        let mut upper = from.min(end - 1);
        let mut level = 1u8;
        let mut group = self.geo.group_of(1, upper);
        loop {
            self.stats.max_level = self.stats.max_level.max(u64::from(level));
            if let Some(db) = self.descend_back(level, group, upper, ids)? {
                return Ok(Some(db));
            }
            let gstart = self.geo.group_start(level, group);
            if gstart == 0 {
                return Ok(None);
            }
            upper = gstart - 1;
            level += 1;
            group = self.geo.group_of(level, upper);
        }
    }

    fn descend_back(
        &mut self,
        level: u8,
        group: u64,
        upper: u64,
        ids: &[LogFileId],
    ) -> Result<Option<u64>> {
        let end = self.src.data_end();
        if level == 0 {
            // `group` is a data block the parent bitmap marked. Verify by
            // reading it ("the log server reads this block and searches it
            // sequentially", §2.1): the bitmap may be stale if the block
            // was invalidated after it was mapped (§2.3.2).
            if group > upper || group >= end {
                return Ok(None);
            }
            return Ok(self.block_contains(group, ids)?.then_some(group));
        }
        let gstart = self.geo.group_start(level, group);
        if gstart >= end || gstart > upper {
            return Ok(None);
        }
        let n = self.geo.fanout();
        let sub_period = self.geo.period(level - 1);
        match self.get_map(level, group, ids)? {
            Some(mut bm) => {
                self.force_tail_subgroup(level, group, &mut bm);
                let mut next = bm.highest_below(n as usize);
                while let Some(j) = next {
                    let sub_group = group * n + j as u64;
                    if sub_group.saturating_mul(sub_period) <= upper {
                        if let Some(db) = self.descend_back(level - 1, sub_group, upper, ids)? {
                            return Ok(Some(db));
                        }
                    }
                    next = bm.highest_below(j);
                }
                Ok(None)
            }
            None => {
                // No map: search the level below directly (§2.3.2).
                self.stats.fallbacks += 1;
                for j in (0..n).rev() {
                    let sub_group = group * n + j;
                    let sub_start = sub_group.saturating_mul(sub_period);
                    if sub_start >= end || sub_start > upper {
                        continue;
                    }
                    if level == 1 {
                        if self.block_contains(sub_group, ids)? {
                            return Ok(Some(sub_group));
                        }
                    } else if let Some(db) = self.descend_back(level - 1, sub_group, upper, ids)? {
                        return Ok(Some(db));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Finds the least data block `>= from` containing entries of `ids`.
    pub fn locate_at_or_after(&mut self, ids: &[LogFileId], from: u64) -> Result<Option<u64>> {
        let end = self.src.data_end();
        if from >= end {
            return Ok(None);
        }
        let mut lower = from;
        let mut level = 1u8;
        let mut group = self.geo.group_of(1, lower);
        loop {
            self.stats.max_level = self.stats.max_level.max(u64::from(level));
            if let Some(db) = self.descend_fwd(level, group, lower, ids)? {
                return Ok(Some(db));
            }
            let gend = self.geo.group_start(level, group + 1);
            if gend >= end {
                return Ok(None);
            }
            lower = gend;
            level += 1;
            group = self.geo.group_of(level, lower);
        }
    }

    fn descend_fwd(
        &mut self,
        level: u8,
        group: u64,
        lower: u64,
        ids: &[LogFileId],
    ) -> Result<Option<u64>> {
        let end = self.src.data_end();
        if level == 0 {
            // Verify the candidate block; see `descend_back`.
            if group < lower || group >= end {
                return Ok(None);
            }
            return Ok(self.block_contains(group, ids)?.then_some(group));
        }
        let gstart = self.geo.group_start(level, group);
        if gstart >= end {
            return Ok(None);
        }
        let gend = self.geo.group_start(level, group + 1);
        if gend <= lower {
            return Ok(None);
        }
        let n = self.geo.fanout();
        let sub_period = self.geo.period(level - 1);
        match self.get_map(level, group, ids)? {
            Some(mut bm) => {
                self.force_tail_subgroup(level, group, &mut bm);
                let mut next = bm.lowest_at_or_above(0);
                while let Some(j) = next {
                    let sub_group = group * n + j as u64;
                    let sub_end = (sub_group + 1).saturating_mul(sub_period);
                    if sub_end > lower {
                        if let Some(db) = self.descend_fwd(level - 1, sub_group, lower, ids)? {
                            return Ok(Some(db));
                        }
                    }
                    next = bm.lowest_at_or_above(j + 1);
                }
                Ok(None)
            }
            None => {
                self.stats.fallbacks += 1;
                for j in 0..n {
                    let sub_group = group * n + j;
                    let sub_start = sub_group.saturating_mul(sub_period);
                    let sub_end = (sub_group + 1).saturating_mul(sub_period);
                    if sub_start >= end || sub_end <= lower {
                        continue;
                    }
                    if level == 1 {
                        if sub_group >= lower && self.block_contains(sub_group, ids)? {
                            return Ok(Some(sub_group));
                        }
                    } else if let Some(db) = self.descend_fwd(level - 1, sub_group, lower, ids)? {
                        return Ok(Some(db));
                    }
                }
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_log;
    use crate::naive;

    /// Plan helper: `blocks[db]` lists raw log file ids present in block db.
    fn plan(total: usize, placed: &[(usize, u16)]) -> Vec<Vec<u16>> {
        let mut p: Vec<Vec<u16>> = (0..total).map(|_| vec![]).collect();
        for &(db, id) in placed {
            p[db].push(id);
        }
        p
    }

    #[test]
    fn finds_nearest_before_across_groups() {
        // N=4: entries of file 8 at blocks 2 and 30; search back from 60.
        let p = plan(64, &[(2, 8), (30, 8)]);
        let (src, pending) = build_log(4, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 60).unwrap(), Some(30));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 29).unwrap(), Some(2));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 1).unwrap(), None);
        assert_eq!(loc.locate_before(&[LogFileId(8)], 2).unwrap(), Some(2));
    }

    #[test]
    fn finds_nearest_after() {
        let p = plan(64, &[(2, 8), (30, 8)]);
        let (src, pending) = build_log(4, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_at_or_after(&[LogFileId(8)], 0).unwrap(), Some(2));
        assert_eq!(
            loc.locate_at_or_after(&[LogFileId(8)], 3).unwrap(),
            Some(30)
        );
        assert_eq!(
            loc.locate_at_or_after(&[LogFileId(8)], 30).unwrap(),
            Some(30)
        );
        assert_eq!(loc.locate_at_or_after(&[LogFileId(8)], 31).unwrap(), None);
    }

    #[test]
    fn union_over_sublog_ids() {
        let p = plan(40, &[(5, 8), (11, 9)]);
        let (src, pending) = build_log(4, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        // Reading the parent means reading both ids.
        assert_eq!(
            loc.locate_before(&[LogFileId(8), LogFileId(9)], 39)
                .unwrap(),
            Some(11)
        );
        assert_eq!(loc.locate_before(&[LogFileId(8)], 39).unwrap(), Some(5));
    }

    #[test]
    fn tail_searches_use_pending() {
        // Entries only in the unmapped tail (no boundary passed yet).
        let p = plan(10, &[(7, 8)]);
        let (src, pending) = build_log(16, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 9).unwrap(), Some(7));
        // With pending state, no data blocks are scanned.
        assert_eq!(loc.stats.fallbacks, 0);
        // Without pending state the search still succeeds via fallback.
        let mut cold = Locator::new(&src, None);
        assert_eq!(cold.locate_before(&[LogFileId(8)], 9).unwrap(), Some(7));
        assert!(cold.stats.fallbacks > 0);
    }

    #[test]
    fn matches_naive_oracle_on_random_logs() {
        use clio_testkit::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(42);
        for n in [2usize, 4, 16] {
            let total = 200;
            let p: Vec<Vec<u16>> = (0..total)
                .map(|_| {
                    let mut ids = vec![];
                    for id in [8u16, 9, 10] {
                        if rng.gen_bool(0.07) {
                            ids.push(id);
                        }
                    }
                    ids
                })
                .collect();
            let (src, pending) = build_log(n, 512, &p);
            for _ in 0..40 {
                let from = rng.gen_range(0..total as u64);
                let id = LogFileId(rng.gen_range(8..11));
                let mut loc = Locator::new(&src, Some(&pending));
                let got = loc.locate_before(&[id], from).unwrap();
                let (want, _) = naive::locate_before(&src, &[id], from).unwrap();
                assert_eq!(got, want, "back n={n} from={from} id={id}");
                let mut loc = Locator::new(&src, Some(&pending));
                let got = loc.locate_at_or_after(&[id], from).unwrap();
                let (want, _) = naive::locate_at_or_after(&src, &[id], from).unwrap();
                assert_eq!(got, want, "fwd n={n} from={from} id={id}");
            }
        }
    }

    #[test]
    fn cost_scales_logarithmically_with_distance() {
        // One entry far away; search from the end. The number of blocks
        // read must be around 2·log_N(d), not O(d).
        let total = 4096;
        let p = plan(total, &[(1, 8)]);
        let (src, pending) = build_log(16, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(
            loc.locate_before(&[LogFileId(8)], total as u64 - 1)
                .unwrap(),
            Some(1)
        );
        // d ≈ 4096 = 16^3; theory says ~6 map reads. Allow generous slack
        // for climb boundaries, but far below a linear scan.
        assert!(
            loc.stats.blocks_read <= 13,
            "read {} blocks (maps + the verified target)",
            loc.stats.blocks_read
        );
        // The climb reached the upper levels of a 16^3-block tree.
        assert!(
            (3..=4).contains(&loc.stats.max_level),
            "max_level = {}",
            loc.stats.max_level
        );
    }

    #[test]
    fn max_level_stays_low_for_nearby_targets() {
        let p = plan(64, &[(30, 8)]);
        let (src, pending) = build_log(4, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 31).unwrap(), Some(30));
        assert_eq!(loc.stats.max_level, 1);
    }

    #[test]
    fn empty_log_and_missing_file() {
        let (src, pending) = build_log(4, 512, &[]);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 100).unwrap(), None);
        let p = plan(20, &[(3, 9)]);
        let (src, pending) = build_log(4, 512, &p);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[LogFileId(8)], 19).unwrap(), None);
    }
}
