//! A Daniels-style binary-tree locator (baseline, §5.1).
//!
//! Daniels, Spector & Thompson's distributed logging design "uses a binary
//! tree structure to locate log entries. The performance of this scheme is
//! within a constant factor of ours (both schemes have logarithmic
//! performance — asymptotically the best possible), but our scheme requires
//! significantly fewer disk read operations, on average, to locate very
//! distant log entries." (§5.1)
//!
//! The essential difference: a balanced binary search tree over a log
//! file's entry blocks costs `~log2(m)` block reads per lookup, where `m`
//! is the *total* number of blocks the file occupies — independent of how
//! far away the target is — while the entrymap costs `~2·log_N(d)` in the
//! *distance* `d`. With `N = 16`, `2·log_16 d = 0.5·log2 d`, so the
//! entrymap wins by roughly 2–4× for distant targets and far more for near
//! ones. This module models the binary-tree scheme faithfully enough to
//! reproduce that comparison: each node visited during a descent is one
//! block read.

use std::collections::BTreeMap;

use clio_types::LogFileId;

/// A per-file balanced binary search tree over block numbers, with lookup
/// cost counted in node visits (block reads).
#[derive(Debug, Default, Clone)]
pub struct BinaryTreeIndex {
    per_file: BTreeMap<LogFileId, Vec<u64>>,
}

/// Result of a baseline lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtLookup {
    /// The located block, if any.
    pub block: Option<u64>,
    /// Node visits ≈ device block reads for an on-disk balanced tree.
    pub reads: u64,
}

impl BinaryTreeIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> BinaryTreeIndex {
        BinaryTreeIndex::default()
    }

    /// Records that block `db` contains entries of `id`. Blocks must be
    /// noted in ascending order (the log is append-only).
    pub fn note_block(&mut self, db: u64, id: LogFileId) {
        let v = self.per_file.entry(id).or_default();
        if v.last() != Some(&db) {
            debug_assert!(
                v.last().is_none_or(|&l| l < db),
                "blocks noted out of order"
            );
            v.push(db);
        }
    }

    /// Number of blocks indexed for `id`.
    #[must_use]
    pub fn blocks_for(&self, id: LogFileId) -> usize {
        self.per_file.get(&id).map_or(0, Vec::len)
    }

    /// Finds the greatest indexed block `<= from` for `id`, counting the
    /// balanced-BST descent: every probed node is a block read.
    #[must_use]
    pub fn locate_before(&self, id: LogFileId, from: u64) -> BtLookup {
        let Some(v) = self.per_file.get(&id) else {
            return BtLookup {
                block: None,
                reads: 0,
            };
        };
        let mut reads = 0;
        let (mut lo, mut hi) = (0usize, v.len());
        let mut best = None;
        // Balanced-BST descent over the sorted block list: each midpoint
        // inspection is one node (one disk block) visited.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            reads += 1;
            if v[mid] <= from {
                best = Some(v[mid]);
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        BtLookup { block: best, reads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(blocks: &[u64]) -> BinaryTreeIndex {
        let mut ix = BinaryTreeIndex::new();
        for &b in blocks {
            ix.note_block(b, LogFileId(8));
        }
        ix
    }

    #[test]
    fn finds_nearest_before() {
        let ix = index(&[2, 30, 55]);
        assert_eq!(ix.locate_before(LogFileId(8), 60).block, Some(55));
        assert_eq!(ix.locate_before(LogFileId(8), 54).block, Some(30));
        assert_eq!(ix.locate_before(LogFileId(8), 2).block, Some(2));
        assert_eq!(ix.locate_before(LogFileId(8), 1).block, None);
        assert_eq!(ix.locate_before(LogFileId(9), 60).block, None);
    }

    #[test]
    fn duplicate_notes_collapse() {
        let mut ix = BinaryTreeIndex::new();
        ix.note_block(5, LogFileId(8));
        ix.note_block(5, LogFileId(8));
        assert_eq!(ix.blocks_for(LogFileId(8)), 1);
    }

    #[test]
    fn cost_depends_on_total_size_not_distance() {
        // 2^14 blocks for the file; looking up a *nearby* target still
        // costs ~log2(16384) = 14 reads — the weakness the paper calls out.
        let blocks: Vec<u64> = (0..16384u64).map(|i| i * 3).collect();
        let ix = index(&blocks);
        let near = ix.locate_before(LogFileId(8), 3 * 16383);
        let far = ix.locate_before(LogFileId(8), 10);
        assert_eq!(near.block, Some(3 * 16383));
        assert_eq!(far.block, Some(9));
        assert!(near.reads >= 10 && near.reads <= 16, "{}", near.reads);
        assert!(far.reads >= 10 && far.reads <= 16, "{}", far.reads);
    }
}
