//! Locating blocks by time.
//!
//! "The server must also be able to efficiently locate the position of
//! those log entries that were written at a given earlier point in time.
//! The server uses a tree search, based on the timestamps in the log entry
//! headers. A header timestamp is mandatory for the first log entry in each
//! block, so the search succeeds to a resolution of at least a single
//! block. At the upper levels of the tree, the search uses those blocks
//! that happen to contain entrymap log entries." (§2.1)
//!
//! Block first-timestamps are non-decreasing (the log is written in time
//! order), so the search is an N-ary descent: at each tree level it binary
//! searches among that level's map blocks — the well-known, regularly
//! spaced blocks most likely to be cached — then descends one level. Total
//! probes are `O(log2 b)`, but concentrated on cache-friendly blocks.

use clio_types::{Result, Timestamp};

use clio_format::BlockView;

use crate::geometry::Geometry;
use crate::source::BlockSource;

/// Operation counts for a timestamp search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TsearchStats {
    /// Blocks read while probing.
    pub blocks_read: u64,
}

/// The first-timestamp of block `db`, skipping leftward over unreadable
/// blocks (whose timestamps are lost, §2.3.2). Returns the block actually
/// probed and its timestamp, or `None` if everything down to `lo` is
/// unreadable.
fn probe<S: BlockSource>(
    src: &S,
    mut db: u64,
    lo: u64,
    stats: &mut TsearchStats,
) -> Result<Option<(u64, Timestamp)>> {
    loop {
        stats.blocks_read += 1;
        let img = src.read(db)?;
        if let Ok(view) = BlockView::parse(&img) {
            return Ok(Some((db, view.first_ts())));
        }
        if db == lo {
            return Ok(None);
        }
        db -= 1;
    }
}

/// Finds the greatest data block whose first entry was written at or before
/// `ts` — the block where a read "prior to" time `ts` begins.
///
/// Returns `None` if `ts` precedes the whole log.
pub fn find_block_by_time<S: BlockSource>(
    src: &S,
    ts: Timestamp,
) -> Result<(Option<u64>, TsearchStats)> {
    let mut stats = TsearchStats::default();
    let end = src.data_end();
    if end == 0 {
        return Ok((None, stats));
    }
    let geo = Geometry::new(src.fanout());

    // Check the very first block: if even it is later than ts, no block
    // qualifies.
    match probe(src, 0, 0, &mut stats)? {
        Some((_, t0)) if t0 > ts => return Ok((None, stats)),
        _ => {}
    }

    // Invariant: first_ts(lo) <= ts (or lo's timestamp is unknowable), and
    // either hi == end or first_ts(hi) > ts. Narrow [lo, hi) by binary
    // search, snapping probes to entrymap map blocks while the range is
    // wide so the upper levels of the search hit well-known blocks.
    let (mut lo, mut hi) = (0u64, end);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        // Snap to the highest map-block multiple inside (lo, hi).
        let mut level = geo.levels_for(end);
        let mut probe_at = mid;
        while level >= 1 {
            let p = geo.period(level);
            let snapped = (mid / p) * p;
            if snapped > lo && snapped < hi {
                probe_at = snapped;
                break;
            }
            level -= 1;
        }
        match probe(src, probe_at, lo + 1, &mut stats)? {
            Some((at, t)) => {
                if t <= ts {
                    lo = at;
                } else {
                    hi = at;
                }
            }
            None => {
                // Everything in (lo, probe_at] is unreadable; the answer
                // cannot be above probe_at.
                hi = lo + 1;
            }
        }
    }
    Ok((Some(lo), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{build_log, BLOCK_TIME_STEP};

    fn uniform_log(n: usize, total: usize) -> crate::source::VecSource {
        let plan: Vec<Vec<u16>> = (0..total).map(|_| vec![8]).collect();
        build_log(n, 512, &plan).0
    }

    #[test]
    fn exact_and_between_times() {
        let src = uniform_log(4, 100);
        // Block db has first_ts db*STEP.
        for (ts, want) in [
            (0, Some(0)),
            (BLOCK_TIME_STEP, Some(1)),
            (BLOCK_TIME_STEP + 1, Some(1)),
            (55 * BLOCK_TIME_STEP - 1, Some(54)),
            (99 * BLOCK_TIME_STEP, Some(99)),
            (10_000 * BLOCK_TIME_STEP, Some(99)),
        ] {
            let (got, _) = find_block_by_time(&src, Timestamp(ts)).unwrap();
            assert_eq!(got, want, "ts={ts}");
        }
    }

    #[test]
    fn before_log_start_is_none() {
        let plan: Vec<Vec<u16>> = (0..10).map(|_| vec![8]).collect();
        // Shift all timestamps by building then asking for time 0 when the
        // first block's first_ts is 0 — so ask for "before everything" on a
        // log whose first block starts later. Easiest: empty log.
        let (src, _) = build_log(4, 512, &[]);
        assert_eq!(find_block_by_time(&src, Timestamp(5)).unwrap().0, None);
        let (src, _) = build_log(4, 512, &plan);
        // first block first_ts == 0, so ts=0 still maps to block 0.
        assert_eq!(find_block_by_time(&src, Timestamp(0)).unwrap().0, Some(0));
    }

    #[test]
    fn cost_is_logarithmic() {
        let src = uniform_log(16, 4096);
        let (got, stats) = find_block_by_time(&src, Timestamp(1234 * BLOCK_TIME_STEP + 7)).unwrap();
        assert_eq!(got, Some(1234));
        assert!(
            stats.blocks_read <= 16,
            "read {} blocks for 4096-block log",
            stats.blocks_read
        );
    }

    #[test]
    fn probes_prefer_map_blocks() {
        // With N=16 and 4096 blocks, early probes should land on multiples
        // of 256 or 16. We verify indirectly: search still correct when
        // only map blocks and the neighbourhood of the answer are readable
        // is too strong; instead check probe count stays small even when
        // the target is near the start (upper probes discard most of the
        // log quickly).
        let src = uniform_log(16, 4096);
        let (got, stats) = find_block_by_time(&src, Timestamp(3)).unwrap();
        assert_eq!(got, Some(0));
        assert!(stats.blocks_read <= 16, "{} reads", stats.blocks_read);
    }

    #[test]
    fn tolerates_unreadable_blocks() {
        let plan: Vec<Vec<u16>> = (0..64).map(|_| vec![8]).collect();
        let (mut srcv, _) = build_log(4, 512, &plan);
        // Destroy a band of blocks in the middle.
        for db in 30..34 {
            srcv.blocks[db] = vec![0xFF; 512];
        }
        let (got, _) = find_block_by_time(&srcv, Timestamp(31 * BLOCK_TIME_STEP)).unwrap();
        // The timestamps of 30..34 are lost; any answer in 29..=31 region
        // that respects the invariant first_ts(ans) <= ts is acceptable —
        // our implementation lands on the nearest readable block at or
        // below.
        let got = got.unwrap();
        assert!((29..=31).contains(&got), "got {got}");
    }
}
