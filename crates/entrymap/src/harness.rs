//! A miniature log builder for tests and benchmarks.
//!
//! Builds a volume's worth of block images from a *placement plan* — a list
//! of which log files have entries in each block — driving
//! [`EntrymapWriter`] exactly as the full service does. This gives the
//! search/recovery tests and the Figure 3 / Table 1 / Figure 4 benchmarks
//! precise control over entry placement without the full `clio-core`
//! machinery.

use clio_types::{LogFileId, Timestamp};

use clio_format::{BlockBuilder, EntryForm, EntryHeader, PushOutcome};

use crate::geometry::Geometry;
use crate::pending::PendingMaps;
use crate::source::VecSource;
use crate::writer::EntrymapWriter;

/// Microseconds of virtual time per block in built logs; entry `slot` of
/// block `db` gets timestamp `db * BLOCK_TIME_STEP + slot`.
pub const BLOCK_TIME_STEP: u64 = 1_000;

/// Builds a log with degree `n` and `block_size`-byte blocks; `plan[db]`
/// lists the raw ids of log files with one entry each in block `db`.
///
/// Returns the built blocks and the writer's final pending state.
///
/// # Panics
///
/// Panics if a block cannot hold its plan (choose a bigger block size) —
/// the plan is test input, not runtime data.
pub fn build_log(n: usize, block_size: usize, plan: &[Vec<u16>]) -> (VecSource, PendingMaps) {
    let mut writer = EntrymapWriter::new(Geometry::new(n));
    let mut blocks = Vec::with_capacity(plan.len());
    for (db, present) in plan.iter().enumerate() {
        let db = db as u64;
        let records = writer.begin_block(db);
        let mut b = BlockBuilder::new(block_size, Timestamp(db * BLOCK_TIME_STEP));
        for rec in &records {
            let header = EntryHeader::new(LogFileId::ENTRYMAP, EntryForm::Minimal, None, None);
            match b.push(&header, &rec.encode()) {
                PushOutcome::Written(_) => {}
                PushOutcome::NoSpace { .. } => panic!("block too small for entrymap records"),
            }
            b.flags_mut().has_entrymap = true;
        }
        for (slot, &raw) in present.iter().enumerate() {
            let ts = Timestamp(db * BLOCK_TIME_STEP + slot as u64);
            let header = EntryHeader::new(LogFileId(raw), EntryForm::Timestamped, Some(ts), None);
            match b.push(&header, b"harness-entry") {
                PushOutcome::Written(_) => {}
                PushOutcome::NoSpace { .. } => panic!("block too small for planned entries"),
            }
        }
        writer.note_block(db, present.iter().map(|&r| LogFileId(r)));
        blocks.push(b.finish());
    }
    (VecSource { fanout: n, blocks }, writer.pending().clone())
}

#[cfg(test)]
mod tests {
    use clio_format::BlockView;

    use super::*;

    #[test]
    fn built_blocks_parse_and_carry_maps() {
        let plan: Vec<Vec<u16>> = (0..20)
            .map(|db| if db % 3 == 0 { vec![8] } else { vec![] })
            .collect();
        let (src, _) = build_log(4, 512, &plan);
        assert_eq!(src.blocks.len(), 20);
        // Block 4 is a level-1 boundary: first entry is an entrymap entry.
        let v = BlockView::parse(&src.blocks[4]).unwrap();
        let first = v.entry(0).unwrap();
        assert_eq!(first.header.id, LogFileId::ENTRYMAP);
        assert!(v.flags().has_entrymap);
        // Block 3 has a file-8 entry with the expected timestamp.
        let v = BlockView::parse(&src.blocks[3]).unwrap();
        let e = v.entry(0).unwrap();
        assert_eq!(e.header.id, LogFileId(8));
        assert_eq!(e.header.timestamp, Some(Timestamp(3 * BLOCK_TIME_STEP)));
    }
}
