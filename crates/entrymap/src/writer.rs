//! Deciding which entrymap records to write, and where.
//!
//! The writer is driven by the log service's append path:
//!
//! 1. When a new data block `db` is opened, call
//!    [`EntrymapWriter::begin_block`]; the returned records (if any) must be
//!    written as the first entries of that block — level-`i` maps appear
//!    every `N^i` blocks (§2.1), and a block due a level-`(i+1)` map also
//!    carries the level-`i` map (§3.3.1).
//! 2. When a data block is sealed, call [`EntrymapWriter::note_block`] with
//!    the set of log files whose entries it contains.
//!
//! Between boundaries the writer accumulates [`PendingMaps`], which double
//! as the locator's view of the unmapped tail.

use clio_types::{LogFileId, SmallBitmap};

use clio_format::EntrymapRecord;

use crate::geometry::Geometry;
use crate::pending::PendingMaps;

/// Emits entrymap records at group boundaries and maintains pending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrymapWriter {
    geo: Geometry,
    pending: PendingMaps,
    next_block: u64,
}

impl EntrymapWriter {
    /// A writer for a fresh volume.
    #[must_use]
    pub fn new(geo: Geometry) -> EntrymapWriter {
        EntrymapWriter {
            geo,
            pending: PendingMaps::new(geo),
            next_block: 0,
        }
    }

    /// Reconstructs a writer from recovered pending state (§2.3.1).
    #[must_use]
    pub fn from_pending(pending: PendingMaps, next_block: u64) -> EntrymapWriter {
        EntrymapWriter {
            geo: pending.geometry(),
            pending,
            next_block,
        }
    }

    /// The tree geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The pending (unmapped tail) bitmaps, for the locator.
    #[must_use]
    pub fn pending(&self) -> &PendingMaps {
        &self.pending
    }

    /// The data block the writer expects to see opened next.
    #[must_use]
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Declares that data block `db` is being opened and returns the
    /// entrymap records due at its start (ascending level order).
    ///
    /// # Panics
    ///
    /// Panics if blocks are opened out of order — the append path owns the
    /// block sequence, so a gap is a bug, not an input error.
    pub fn begin_block(&mut self, db: u64) -> Vec<EntrymapRecord> {
        assert_eq!(db, self.next_block, "blocks must be opened in order");
        self.next_block = db + 1;
        let top = self.geo.boundary_level(db);
        let n = self.geo.fanout() as u16;
        let mut records = Vec::with_capacity(usize::from(top));
        for level in 1..=top {
            let completed_group = db / self.geo.period(level) - 1;
            let maps = self.pending.take(level, completed_group + 1);
            // Propagate: the completed group becomes one bit of its parent.
            let parent_bit = (completed_group % self.geo.fanout()) as usize;
            for (id, bm) in &maps {
                if bm.any() {
                    self.pending.set_bit(level + 1, *id, parent_bit);
                }
            }
            records.push(EntrymapRecord::new(
                level,
                completed_group,
                n,
                maps.into_iter().collect::<Vec<(LogFileId, SmallBitmap)>>(),
            ));
        }
        records
    }

    /// Declares that sealed data block `db` contains entries of `ids`.
    ///
    /// Ids that the entrymap does not track (the volume-sequence log and the
    /// entrymap log itself, §2.1 footnote 6) are ignored, so callers can
    /// pass the raw per-block id set.
    ///
    /// # Panics
    ///
    /// Panics if `db` is not the block most recently opened.
    pub fn note_block<I: IntoIterator<Item = LogFileId>>(&mut self, db: u64, ids: I) {
        assert_eq!(
            db + 1,
            self.next_block,
            "can only note the most recently opened block"
        );
        let bit = (db % self.geo.fanout()) as usize;
        for id in ids {
            if id.is_entrymapped() {
                self.pending.set_bit(1, id, bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u16]) -> Vec<LogFileId> {
        raw.iter().map(|&r| LogFileId(r)).collect()
    }

    /// Drives the writer over `blocks` where element `db` is the id set of
    /// block `db`; returns all emitted records tagged with their block.
    fn drive(n: usize, blocks: &[Vec<u16>]) -> (EntrymapWriter, Vec<(u64, EntrymapRecord)>) {
        let mut w = EntrymapWriter::new(Geometry::new(n));
        let mut out = Vec::new();
        for (db, present) in blocks.iter().enumerate() {
            let db = db as u64;
            for rec in w.begin_block(db) {
                out.push((db, rec));
            }
            w.note_block(db, ids(present));
        }
        (w, out)
    }

    #[test]
    fn no_records_before_first_boundary() {
        let blocks: Vec<Vec<u16>> = (0..4).map(|_| vec![8]).collect();
        let (_, recs) = drive(4, &blocks);
        assert!(recs.is_empty());
    }

    #[test]
    fn level1_record_at_every_nth_block() {
        // N=4; blocks 0..9 with file 8 in blocks 1 and 6.
        let mut blocks: Vec<Vec<u16>> = (0..9).map(|_| vec![]).collect();
        blocks[1] = vec![8];
        blocks[6] = vec![8];
        let (_, recs) = drive(4, &blocks);
        // Boundaries at blocks 4 and 8.
        assert_eq!(recs.len(), 2);
        let (at, r0) = &recs[0];
        assert_eq!((*at, r0.level, r0.group), (4, 1, 0));
        assert_eq!(
            r0.map_for(LogFileId(8))
                .unwrap()
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
        let (at, r1) = &recs[1];
        assert_eq!((*at, r1.level, r1.group), (8, 1, 1));
        assert_eq!(
            r1.map_for(LogFileId(8))
                .unwrap()
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![2] // block 6 is bit 2 of group 1 (blocks 4..8)
        );
    }

    #[test]
    fn level2_boundary_emits_both_levels_figure_2() {
        // Reproduce Figure 2: N=4, file entries in blocks marked below.
        // The figure shades five blocks within the first 16; we mark blocks
        // 1, 6, 7, 12, 15 for file 8.
        let mut blocks: Vec<Vec<u16>> = (0..17).map(|_| vec![]).collect();
        for b in [1usize, 6, 7, 12, 15] {
            blocks[b] = vec![8];
        }
        let (_, recs) = drive(4, &blocks);
        // Level-1 records at 4, 8, 12, 16; level-2 record at 16.
        assert_eq!(recs.len(), 5);
        let at16: Vec<_> = recs.iter().filter(|(b, _)| *b == 16).collect();
        assert_eq!(at16.len(), 2);
        assert_eq!(at16[0].1.level, 1);
        assert_eq!(at16[1].1.level, 2);
        // The level-2 bitmap marks all four level-1 groups that contain
        // entries: groups 0 (block 1), 1 (blocks 6, 7), 3 (blocks 12, 15).
        let l2 = at16[1].1.map_for(LogFileId(8)).unwrap();
        assert_eq!(l2.iter_ones().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn quiet_files_do_not_appear() {
        // §2.1: an entrymap entry contains a bitmap only for log files with
        // entries in the covered range.
        let mut blocks: Vec<Vec<u16>> = (0..5).map(|_| vec![]).collect();
        blocks[0] = vec![8];
        blocks[2] = vec![9];
        let (_, recs) = drive(4, &blocks);
        let rec = &recs[0].1;
        assert!(rec.map_for(LogFileId(8)).is_some());
        assert!(rec.map_for(LogFileId(9)).is_some());
        assert!(rec.map_for(LogFileId(10)).is_none());
        assert_eq!(rec.maps.len(), 2);
    }

    #[test]
    fn untracked_ids_are_ignored() {
        let mut blocks: Vec<Vec<u16>> = (0..5).map(|_| vec![]).collect();
        blocks[0] = vec![0, 1, 8]; // volume-sequence and entrymap ids dropped
        let (_, recs) = drive(4, &blocks);
        let rec = &recs[0].1;
        assert_eq!(rec.maps.len(), 1);
        assert!(rec.map_for(LogFileId(8)).is_some());
    }

    #[test]
    fn pending_reflects_tail() {
        let mut blocks: Vec<Vec<u16>> = (0..7).map(|_| vec![]).collect();
        blocks[5] = vec![8];
        let (w, _) = drive(4, &blocks);
        // Blocks 4..7 are the tail of level-1 group 1; block 5 is bit 1.
        let u = w.pending().union_for(1, 1, &[LogFileId(8)]).unwrap();
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "opened in order")]
    fn out_of_order_blocks_panic() {
        let mut w = EntrymapWriter::new(Geometry::new(4));
        let _ = w.begin_block(0);
        let _ = w.begin_block(2);
    }

    #[test]
    fn deep_tree_propagates_three_levels() {
        // N=2 keeps the tree deep with few blocks: 8 blocks = 3 full levels.
        let mut blocks: Vec<Vec<u16>> = (0..9).map(|_| vec![]).collect();
        blocks[3] = vec![8];
        let (_, recs) = drive(2, &blocks);
        // Level-3 record at block 8 covers group 0 (blocks 0..8); its bit 1
        // (sub-group blocks 4..8... bit 0 covers 0..4) — block 3 is in
        // sub-group 0.
        let l3: Vec<_> = recs.iter().filter(|(_, r)| r.level == 3).collect();
        assert_eq!(l3.len(), 1);
        let bm = l3[0].1.map_for(LogFileId(8)).unwrap();
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0]);
        // And the level-2 record at block 4 has bit 1 set (block 3 is in
        // level-1 group 1 = blocks 2..4).
        let l2_at4: Vec<_> = recs
            .iter()
            .filter(|(b, r)| *b == 4 && r.level == 2)
            .collect();
        assert_eq!(l2_at4.len(), 1);
        assert_eq!(
            l2_at4[0]
                .1
                .map_for(LogFileId(8))
                .unwrap()
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }
}
