//! The exhaustive-scan baseline.
//!
//! "In principle, a log server could locate the entries that are members of
//! a particular log file by examining every entry in every block of the
//! volume sequence. This, of course, would be prohibitively expensive,
//! especially if a desired entry is far away." (§2.1) — implemented here
//! both as the cost floor for the locator benchmarks and as the oracle the
//! entrymap locator is property-tested against.

use clio_types::{LogFileId, Result};

use clio_format::BlockView;

use crate::source::BlockSource;

fn contains<S: BlockSource>(src: &S, db: u64, ids: &[LogFileId]) -> Result<bool> {
    let img = src.read(db)?;
    let Ok(view) = BlockView::parse(&img) else {
        return Ok(false);
    };
    for e in view.entries() {
        let Ok(e) = e else { break };
        if ids.contains(&e.header.id) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Scans backward from `from` for the nearest block containing `ids`.
/// Returns the hit (if any) and the number of blocks read.
pub fn locate_before<S: BlockSource>(
    src: &S,
    ids: &[LogFileId],
    from: u64,
) -> Result<(Option<u64>, u64)> {
    let end = src.data_end();
    if end == 0 {
        return Ok((None, 0));
    }
    let mut reads = 0;
    let mut db = from.min(end - 1);
    loop {
        reads += 1;
        if contains(src, db, ids)? {
            return Ok((Some(db), reads));
        }
        match db.checked_sub(1) {
            Some(prev) => db = prev,
            None => return Ok((None, reads)),
        }
    }
}

/// Scans forward from `from` for the nearest block containing `ids`.
pub fn locate_at_or_after<S: BlockSource>(
    src: &S,
    ids: &[LogFileId],
    from: u64,
) -> Result<(Option<u64>, u64)> {
    let end = src.data_end();
    let mut reads = 0;
    let mut db = from;
    while db < end {
        reads += 1;
        if contains(src, db, ids)? {
            return Ok((Some(db), reads));
        }
        db += 1;
    }
    Ok((None, reads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::build_log;

    #[test]
    fn scan_costs_are_linear_in_distance() {
        let mut plan: Vec<Vec<u16>> = (0..100).map(|_| vec![]).collect();
        plan[10] = vec![8];
        let (src, _) = build_log(4, 512, &plan);
        let (hit, reads) = locate_before(&src, &[LogFileId(8)], 99).unwrap();
        assert_eq!(hit, Some(10));
        assert_eq!(reads, 90); // 99 down to 10 inclusive
        let (hit, reads) = locate_at_or_after(&src, &[LogFileId(8)], 0).unwrap();
        assert_eq!(hit, Some(10));
        assert_eq!(reads, 11);
    }

    #[test]
    fn misses_cost_the_whole_range() {
        let plan: Vec<Vec<u16>> = (0..50).map(|_| vec![]).collect();
        let (src, _) = build_log(4, 512, &plan);
        let (hit, reads) = locate_before(&src, &[LogFileId(8)], 49).unwrap();
        assert_eq!(hit, None);
        assert_eq!(reads, 50);
    }
}
