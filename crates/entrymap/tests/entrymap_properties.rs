//! Property tests for the entrymap subsystem: the locator and timestamp
//! search against brute-force oracles, including under block corruption.
//!
//! Runs on `clio_testkit::prop`; case counts follow `CLIO_PROP_CASES`,
//! failures print a `CLIO_PROP_SEED` for exact replay, and formerly
//! checked-in regression seed entries live on as the explicit
//! `regression_*` tests at the bottom.

use clio_entrymap::harness::{build_log, BLOCK_TIME_STEP};
use clio_entrymap::{naive, rebuild_pending, tsearch, Locator};
use clio_testkit::prop::{
    any_u64, check, check_case, just, one_of, pair, triple, u16s, vec_of, Gen,
};
use clio_types::{LogFileId, Timestamp};

/// `(fanout, per-block file-id plan)` — the shared test-log shape.
fn arb_plan() -> Gen<(usize, Vec<Vec<u16>>)> {
    pair(
        &one_of(vec![just(2usize), just(4), just(16)]),
        &vec_of(&vec_of(&u16s(8..12), 0..3), 1..260),
    )
}

fn prop_locator_matches_oracle(n: usize, plan: &[Vec<u16>], from: u64, id: u16) {
    let (src, pending) = build_log(n, 1024, plan);
    let from = from % plan.len() as u64;
    let ids = [LogFileId(id)];
    let mut loc = Locator::new(&src, Some(&pending));
    let back = loc.locate_before(&ids, from).expect("in-memory reads");
    let (want_back, _) = naive::locate_before(&src, &ids, from).expect("oracle");
    assert_eq!(back, want_back);
    let mut loc = Locator::new(&src, Some(&pending));
    let fwd = loc.locate_at_or_after(&ids, from).expect("in-memory reads");
    let (want_fwd, _) = naive::locate_at_or_after(&src, &ids, from).expect("oracle");
    assert_eq!(fwd, want_fwd);
}

#[test]
fn locator_matches_oracle() {
    let g = triple(&arb_plan(), &any_u64(), &u16s(8..12));
    check("locator_matches_oracle", 48, &g, |((n, plan), from, id)| {
        prop_locator_matches_oracle(*n, plan, *from, *id);
    });
}

fn prop_locator_tolerates_invalidated_blocks(
    n: usize,
    plan: &[Vec<u16>],
    holes: &[u64],
    from: u64,
) {
    // Burn random blocks to all-1s (§2.3.2 invalidation); the locator
    // must agree with the oracle over what is still readable, with
    // *stale* pending state (recovered from the damaged log) too.
    let (mut src, _) = build_log(n, 1024, plan);
    for h in holes {
        let at = (*h % plan.len() as u64) as usize;
        src.blocks[at] = vec![0xFF; 1024];
    }
    let (pending, _) = rebuild_pending(&src).expect("rebuild");
    let from = from % plan.len() as u64;
    let ids = [LogFileId(9)];
    let mut loc = Locator::new(&src, Some(&pending));
    let got = loc.locate_before(&ids, from).expect("reads");
    let (want, _) = naive::locate_before(&src, &ids, from).expect("oracle");
    assert_eq!(got, want);
}

#[test]
fn locator_tolerates_invalidated_blocks() {
    let g = triple(&arb_plan(), &vec_of(&any_u64(), 0..8), &any_u64());
    check(
        "locator_tolerates_invalidated_blocks",
        48,
        &g,
        |((n, plan), holes, from)| {
            prop_locator_tolerates_invalidated_blocks(*n, plan, holes, *from);
        },
    );
}

#[test]
fn timestamp_search_matches_oracle() {
    let g = pair(&arb_plan(), &any_u64());
    check(
        "timestamp_search_matches_oracle",
        48,
        &g,
        |((n, plan), tsq)| {
            let (src, _) = build_log(*n, 1024, plan);
            let total = plan.len() as u64;
            let ts = Timestamp(tsq % (total * BLOCK_TIME_STEP + 2 * BLOCK_TIME_STEP));
            let (got, _) = tsearch::find_block_by_time(&src, ts).expect("search");
            // Oracle: greatest block whose first_ts (db * STEP) <= ts.
            let want = if ts.0 / BLOCK_TIME_STEP >= total {
                Some(total - 1)
            } else {
                Some(ts.0 / BLOCK_TIME_STEP)
            };
            assert_eq!(got, want);
        },
    );
}

#[test]
fn rebuild_is_idempotent() {
    check("rebuild_is_idempotent", 48, &arb_plan(), |(n, plan)| {
        let (src, live) = build_log(*n, 1024, plan);
        let (a, _) = rebuild_pending(&src).expect("rebuild");
        let (b, _) = rebuild_pending(&src).expect("rebuild");
        assert_eq!(&a, &b);
        // And answers match the live writer for the current groups.
        let end = plan.len() as u64;
        if end > 0 {
            let geo = clio_entrymap::Geometry::new(*n);
            for level in 1..=geo.levels_for(end) {
                let group = geo.group_of(level, end - 1);
                for id in 8u16..12 {
                    let ids = [LogFileId(id)];
                    assert_eq!(
                        a.union_for(level, group, &ids),
                        live.union_for(level, group, &ids)
                    );
                }
            }
        }
    });
}

/// The shrunken witness from the retired
/// regression seed file (case
/// `542e6c2644e1c0c6…`): a fanout-2 log of 161 blocks with five
/// invalidated holes, which once desynchronized the locator from the
/// oracle. Plan blocks are comma-separated, `-` meaning an empty block.
#[test]
fn regression_invalidated_blocks_fanout2_161_blocks() {
    const PLAN: &str = "-,-,8 10,8 9,10,8 10,-,8,11 9,10,11,-,10 10,-,-,10,-,11 11,-,-,\
                        8 11,-,9,-,8,10 8,-,8 11,-,11,8 8,10 9,-,10,11,-,-,-,8 11,11 8,\
                        10 10,-,11,8 11,-,11,-,8,11 8,10 11,10 10,9 10,10,10,8 8,-,11,\
                        8 9,10,-,-,11,9,11,9 11,11,-,11 11,-,10,-,-,10,10 11,-,8,10,\
                        10 9,-,-,8 10,-,11,8,-,-,10,10 8,10,11,-,11 10,-,10,-,11,9 11,9,\
                        10 11,-,-,10,10 8,10 10,9,9,8 8,8 10,-,11,-,-,-,8 10,-,9 11,9 8,\
                        -,10 11,10,8,-,10,10,-,-,-,-,9 8,8,11 11,-,9,-,-,11,-,8 8,11 11,\
                        10,11 8,9,8,9,-,-,-,-,9,-,9,-,10 9,-,10,8,10,9 10,-,11,10";
    let plan: Vec<Vec<u16>> = PLAN
        .split(',')
        .map(|blk| match blk.trim() {
            "-" => Vec::new(),
            ids => ids
                .split_whitespace()
                .map(|id| id.parse().expect("plan id"))
                .collect(),
        })
        .collect();
    assert_eq!(plan.len(), 161);
    let holes = [
        7215697391289052106,
        18429194546216482861,
        18308026888230111011,
        2986290794617250036,
        1789684241888312814,
    ];
    let from = 18242198941372730298;
    check_case(
        "invalidated_blocks_fanout2_161_blocks",
        &(2usize, &plan, &holes, from),
        |(n, plan, holes, from)| {
            prop_locator_tolerates_invalidated_blocks(*n, plan, *holes, *from);
        },
    );
}
