//! Property tests for the entrymap subsystem: the locator and timestamp
//! search against brute-force oracles, including under block corruption.

use proptest::prelude::*;

use clio_entrymap::harness::{build_log, BLOCK_TIME_STEP};
use clio_entrymap::{naive, rebuild_pending, tsearch, Locator};
use clio_types::{LogFileId, Timestamp};

fn arb_plan() -> impl Strategy<Value = (usize, Vec<Vec<u16>>)> {
    (
        prop_oneof![Just(2usize), Just(4), Just(16)],
        proptest::collection::vec(
            proptest::collection::vec(8u16..12, 0..3),
            1..260,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn locator_matches_oracle((n, plan) in arb_plan(), from in any::<u64>(), id in 8u16..12) {
        let (src, pending) = build_log(n, 1024, &plan);
        let from = from % plan.len() as u64;
        let ids = [LogFileId(id)];
        let mut loc = Locator::new(&src, Some(&pending));
        let back = loc.locate_before(&ids, from).expect("in-memory reads");
        let (want_back, _) = naive::locate_before(&src, &ids, from).expect("oracle");
        prop_assert_eq!(back, want_back);
        let mut loc = Locator::new(&src, Some(&pending));
        let fwd = loc.locate_at_or_after(&ids, from).expect("in-memory reads");
        let (want_fwd, _) = naive::locate_at_or_after(&src, &ids, from).expect("oracle");
        prop_assert_eq!(fwd, want_fwd);
    }

    #[test]
    fn locator_tolerates_invalidated_blocks(
        (n, plan) in arb_plan(),
        holes in proptest::collection::vec(any::<u64>(), 0..8),
        from in any::<u64>(),
    ) {
        // Burn random blocks to all-1s (§2.3.2 invalidation); the locator
        // must agree with the oracle over what is still readable, with
        // *stale* pending state (recovered from the damaged log) too.
        let (mut src, _) = build_log(n, 1024, &plan);
        for h in &holes {
            let at = (*h % plan.len() as u64) as usize;
            src.blocks[at] = vec![0xFF; 1024];
        }
        let (pending, _) = rebuild_pending(&src).expect("rebuild");
        let from = from % plan.len() as u64;
        let ids = [LogFileId(9)];
        let mut loc = Locator::new(&src, Some(&pending));
        let got = loc.locate_before(&ids, from).expect("reads");
        let (want, _) = naive::locate_before(&src, &ids, from).expect("oracle");
        prop_assert_eq!(got, want);
    }

    #[test]
    fn timestamp_search_matches_oracle((n, plan) in arb_plan(), tsq in any::<u64>()) {
        let (src, _) = build_log(n, 1024, &plan);
        let total = plan.len() as u64;
        let ts = Timestamp(tsq % (total * BLOCK_TIME_STEP + 2 * BLOCK_TIME_STEP));
        let (got, _) = tsearch::find_block_by_time(&src, ts).expect("search");
        // Oracle: greatest block whose first_ts (db * STEP) <= ts.
        let want = if ts.0 / BLOCK_TIME_STEP >= total {
            Some(total - 1)
        } else {
            Some(ts.0 / BLOCK_TIME_STEP)
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rebuild_is_idempotent((n, plan) in arb_plan()) {
        let (src, live) = build_log(n, 1024, &plan);
        let (a, _) = rebuild_pending(&src).expect("rebuild");
        let (b, _) = rebuild_pending(&src).expect("rebuild");
        prop_assert_eq!(&a, &b);
        // And answers match the live writer for the current groups.
        let end = plan.len() as u64;
        if end > 0 {
            let geo = clio_entrymap::Geometry::new(n);
            for level in 1..=geo.levels_for(end) {
                let group = geo.group_of(level, end - 1);
                for id in 8u16..12 {
                    let ids = [LogFileId(id)];
                    prop_assert_eq!(
                        a.union_for(level, group, &ids),
                        live.union_for(level, group, &ids)
                    );
                }
            }
        }
    }
}
