#![warn(missing_docs)]
//! Common types for the Clio log service.
//!
//! This crate holds the vocabulary shared by every Clio subsystem: strongly
//! typed identifiers ([`BlockNo`], [`LogFileId`], [`EntryAddr`], …), the
//! [`Timestamp`] type used to identify and locate log entries, the common
//! [`ClioError`] type, a table-driven CRC32 used for block integrity, and a
//! small bitmap used by entrymap log entries.
//!
//! Nothing in this crate performs I/O; it is the bottom of the dependency
//! graph.

pub mod bitmap;
pub mod consts;
pub mod crc;
pub mod error;
pub mod ids;
pub mod time;

pub use bitmap::SmallBitmap;
pub use consts::*;
pub use error::{ClioError, Result};
pub use ids::{BlockNo, ClientId, EntryAddr, LogFileId, SeqNo, VolumeId, VolumeSeqId};
pub use time::{Clock, ManualClock, SystemClock, Timestamp};
