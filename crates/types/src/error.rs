//! The common error type for all Clio subsystems.

use std::fmt;

use crate::ids::{BlockNo, LogFileId};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, ClioError>;

/// Errors surfaced by the Clio log service and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClioError {
    /// An attempt was made to write anywhere but the end of the written
    /// portion of a write-once device.
    NotAppendOnly {
        /// The block the caller tried to write.
        attempted: BlockNo,
        /// The append point (first unwritten block).
        end: BlockNo,
    },
    /// A read referenced a block beyond the written portion of the device.
    UnwrittenBlock(BlockNo),
    /// A block address is outside the device entirely.
    OutOfRange(BlockNo),
    /// The device (volume) has no unwritten blocks left.
    VolumeFull,
    /// The volume holding the requested data is not mounted; bring it
    /// online and retry (§2.1: older volumes "may be made available on
    /// demand, either automatically or manually").
    VolumeOffline(u32),
    /// A block failed its integrity check (bad magic or CRC mismatch).
    CorruptBlock(BlockNo),
    /// A block was explicitly invalidated (burned to all 1s).
    InvalidatedBlock(BlockNo),
    /// A record could not be decoded.
    BadRecord(&'static str),
    /// The named log file does not exist.
    NoSuchLogFile(String),
    /// The log file id is unknown to the catalog.
    UnknownLogFileId(LogFileId),
    /// A log file with this name already exists.
    LogFileExists(String),
    /// The 12-bit local-logfile-id space (4096 ids) is exhausted.
    LogFileIdsExhausted,
    /// An operation that requires an open-for-append log file was applied to
    /// a sealed or read-only one.
    ReadOnly,
    /// Access denied by the log file's permissions.
    PermissionDenied(String),
    /// The requested entry, time, or position does not exist in the log.
    NotFound(String),
    /// An entry exceeds what a single write may carry.
    EntryTooLarge {
        /// The offered size in bytes.
        size: usize,
        /// The maximum supported size in bytes.
        max: usize,
    },
    /// A malformed client-supplied path.
    BadPath(String),
    /// A rejected service configuration (e.g. a shard count that is zero,
    /// not a power of two, or beyond what the device pool can supply).
    BadConfig(String),
    /// The operation is not supported by this device or configuration.
    Unsupported(&'static str),
    /// Underlying host I/O failure (file-backed devices).
    Io(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for ClioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClioError::NotAppendOnly { attempted, end } => write!(
                f,
                "write-once violation: attempted write to block {attempted}, append point is {end}"
            ),
            ClioError::UnwrittenBlock(b) => write!(f, "block {b} has not been written"),
            ClioError::OutOfRange(b) => write!(f, "block {b} is outside the device"),
            ClioError::VolumeFull => write!(f, "volume is full"),
            ClioError::VolumeOffline(idx) => {
                write!(f, "volume {idx} is offline; mount it and retry")
            }
            ClioError::CorruptBlock(b) => write!(f, "block {b} is corrupt"),
            ClioError::InvalidatedBlock(b) => write!(f, "block {b} was invalidated"),
            ClioError::BadRecord(what) => write!(f, "malformed record: {what}"),
            ClioError::NoSuchLogFile(name) => write!(f, "no such log file: {name}"),
            ClioError::UnknownLogFileId(id) => write!(f, "unknown log file id {id}"),
            ClioError::LogFileExists(name) => write!(f, "log file already exists: {name}"),
            ClioError::LogFileIdsExhausted => write!(f, "no local-logfile-ids left (max 4096)"),
            ClioError::ReadOnly => write!(f, "log file is not open for append"),
            ClioError::PermissionDenied(what) => write!(f, "permission denied: {what}"),
            ClioError::NotFound(what) => write!(f, "not found: {what}"),
            ClioError::EntryTooLarge { size, max } => {
                write!(f, "entry of {size} bytes exceeds maximum {max}")
            }
            ClioError::BadPath(p) => write!(f, "bad path: {p}"),
            ClioError::BadConfig(what) => write!(f, "bad configuration: {what}"),
            ClioError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ClioError::Io(e) => write!(f, "i/o error: {e}"),
            ClioError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for ClioError {}

impl From<std::io::Error> for ClioError {
    fn from(e: std::io::Error) -> Self {
        ClioError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClioError::NotAppendOnly {
            attempted: BlockNo(3),
            end: BlockNo(7),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: ClioError = io.into();
        assert!(matches!(e, ClioError::Io(ref m) if m.contains("boom")));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ClioError::VolumeFull, ClioError::VolumeFull);
        assert_ne!(
            ClioError::UnwrittenBlock(BlockNo(1)),
            ClioError::UnwrittenBlock(BlockNo(2))
        );
    }
}
