//! CRC32 (IEEE 802.3 polynomial), table-driven.
//!
//! Clio assumes it can detect blocks that were "written with garbage"
//! (§2.3.2). A CRC in each block trailer is our concrete detection
//! mechanism; it is implemented here so the workspace needs no extra
//! dependency.

/// The reflected IEEE CRC32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Computes the CRC32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC update; feed `0xFFFF_FFFF` as the initial state and XOR
/// the final state with `0xFFFF_FFFF` to finish.
#[must_use]
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    c
}

/// A streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.state = crc32_update(self.state, data);
    }

    /// Finishes and returns the checksum.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello, write-once world";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 512];
        let good = crc32(&data);
        data[200] ^= 0x10;
        assert_ne!(crc32(&data), good);
    }
}
