//! A small, fixed-width bitmap.
//!
//! Entrymap log entries carry one bitmap of `N` bits per active log file
//! (§2.1): bit `j` of a level-`i` bitmap says whether the `j`-th sub-group of
//! `N^(i-1)` blocks contains entries of that log file.

use std::fmt;

/// A bitmap over a fixed number of bits, stored little-endian by byte.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SmallBitmap {
    bits: usize,
    bytes: Vec<u8>,
}

impl SmallBitmap {
    /// Creates an all-zero bitmap of `bits` bits.
    #[must_use]
    pub fn new(bits: usize) -> SmallBitmap {
        SmallBitmap {
            bits,
            bytes: vec![0; bits.div_ceil(8)],
        }
    }

    /// Reconstructs a bitmap from its byte representation.
    ///
    /// Returns `None` if `bytes` is too short for `bits`.
    #[must_use]
    pub fn from_bytes(bits: usize, bytes: &[u8]) -> Option<SmallBitmap> {
        if bytes.len() < bits.div_ceil(8) {
            return None;
        }
        let mut bm = SmallBitmap {
            bits,
            bytes: bytes[..bits.div_ceil(8)].to_vec(),
        };
        // Mask stray bits above `bits` so equality is structural.
        let spare = bm.bytes.len() * 8 - bits;
        if spare > 0 {
            let last = bm.bytes.len() - 1;
            bm.bytes[last] &= 0xFF >> spare;
        }
        Some(bm)
    }

    /// Number of bits in the bitmap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the bitmap has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The underlying bytes (`ceil(bits / 8)` of them).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`; bit indices come from block arithmetic and an
    /// out-of-range index is a bug, not an input error.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.bytes[i / 8] |= 1 << (i % 8);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.bits, "bit {i} out of range {}", self.bits);
        self.bytes[i / 8] &= !(1 << (i % 8));
    }

    /// Reads bit `i`; out-of-range bits read as 0.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.bits {
            return false;
        }
        self.bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Whether any bit is set.
    #[must_use]
    pub fn any(&self) -> bool {
        self.bytes.iter().any(|&b| b != 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bytes.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(move |&i| self.get(i))
    }

    /// The highest set bit strictly below `limit`, if any.
    #[must_use]
    pub fn highest_below(&self, limit: usize) -> Option<usize> {
        (0..limit.min(self.bits)).rev().find(|&i| self.get(i))
    }

    /// The lowest set bit at or above `from`, if any.
    #[must_use]
    pub fn lowest_at_or_above(&self, from: usize) -> Option<usize> {
        (from..self.bits).find(|&i| self.get(i))
    }

    /// In-place union with another bitmap of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn union_with(&mut self, other: &SmallBitmap) {
        assert_eq!(self.bits, other.bits, "bitmap width mismatch");
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a |= b;
        }
    }
}

impl fmt::Debug for SmallBitmap {
    /// Renders e.g. `SmallBitmap(0010_1000)`, bit 0 first — the same
    /// orientation as the block order it indexes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SmallBitmap(")?;
        for i in 0..self.bits {
            if i > 0 && i % 4 == 0 {
                write!(f, "_")?;
            }
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = SmallBitmap::new(16);
        assert!(!bm.any());
        bm.set(0);
        bm.set(15);
        assert!(bm.get(0) && bm.get(15) && !bm.get(7));
        assert_eq!(bm.count_ones(), 2);
        bm.clear(0);
        assert!(!bm.get(0));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        SmallBitmap::new(8).set(8);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let bm = SmallBitmap::new(8);
        assert!(!bm.get(100));
    }

    #[test]
    fn byte_round_trip_masks_spare_bits() {
        let mut bm = SmallBitmap::new(12);
        bm.set(3);
        bm.set(11);
        let bytes = bm.as_bytes().to_vec();
        assert_eq!(bytes.len(), 2);
        // Feed bytes with junk in the spare high bits.
        let mut noisy = bytes.clone();
        noisy[1] |= 0xF0;
        let back = SmallBitmap::from_bytes(12, &noisy).unwrap();
        assert_eq!(back, bm);
    }

    #[test]
    fn from_bytes_rejects_short_input() {
        assert!(SmallBitmap::from_bytes(16, &[0u8; 1]).is_none());
    }

    #[test]
    fn search_helpers() {
        let mut bm = SmallBitmap::new(16);
        bm.set(2);
        bm.set(9);
        assert_eq!(bm.highest_below(16), Some(9));
        assert_eq!(bm.highest_below(9), Some(2));
        assert_eq!(bm.highest_below(2), None);
        assert_eq!(bm.lowest_at_or_above(0), Some(2));
        assert_eq!(bm.lowest_at_or_above(3), Some(9));
        assert_eq!(bm.lowest_at_or_above(10), None);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![2, 9]);
    }

    #[test]
    fn union() {
        let mut a = SmallBitmap::new(8);
        let mut b = SmallBitmap::new(8);
        a.set(1);
        b.set(6);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 6]);
    }

    #[test]
    fn zero_width_is_empty() {
        let bm = SmallBitmap::new(0);
        assert!(bm.is_empty());
        assert!(!bm.any());
        assert_eq!(bm.as_bytes().len(), 0);
    }
}
