//! Strongly typed identifiers.
//!
//! The paper identifies a log file by (i) a log volume sequence and (ii) a
//! log file identifier relative to that sequence (§2.1). Within an entry
//! header the log file identifier is a 12-bit *local-logfile-id* indexing the
//! catalog (§2.2). Blocks are addressed by their position on a volume.

use std::fmt;

use crate::consts::{FIRST_CLIENT_LOGFILE_ID, MAX_LOGFILES};

/// A block address on a single log device / volume, counted from zero.
///
/// Block 0 of every volume is the volume label; *data blocks* start at
/// device block 1. Entrymap arithmetic is carried out in data-block
/// coordinates (see `clio-entrymap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockNo(pub u64);

impl BlockNo {
    /// Returns the next block address.
    #[must_use]
    pub fn next(self) -> BlockNo {
        BlockNo(self.0 + 1)
    }

    /// Returns the previous block address, or `None` at block zero.
    #[must_use]
    pub fn prev(self) -> Option<BlockNo> {
        self.0.checked_sub(1).map(BlockNo)
    }
}

impl fmt::Display for BlockNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The 12-bit local-logfile-id: identifies a log file within one volume
/// sequence, and indexes the server's catalog (§2.2).
///
/// Ids 0–7 are reserved for the service itself:
///
/// | id | log file |
/// |----|----------|
/// | 0  | the volume sequence log file (never tags an entry)  |
/// | 1  | the entrymap log file |
/// | 2  | the catalog log file |
/// | 3  | the bad-block log file |
/// | 4–7 | reserved for future service use |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogFileId(pub u16);

impl LogFileId {
    /// The volume sequence log file: the sequence of *all* entries ever
    /// written to a volume sequence (§2).
    pub const VOLUME_SEQUENCE: LogFileId = LogFileId(0);
    /// The entrymap log file (§2.1).
    pub const ENTRYMAP: LogFileId = LogFileId(1);
    /// The catalog log file (§2.2).
    pub const CATALOG: LogFileId = LogFileId(2);
    /// The bad-block log file, recording corrupted unwritten blocks (§2.3.2).
    pub const BAD_BLOCK: LogFileId = LogFileId(3);

    /// Creates an id, returning `None` if it does not fit in 12 bits.
    #[must_use]
    pub fn new(raw: u16) -> Option<LogFileId> {
        (usize::from(raw) < MAX_LOGFILES).then_some(LogFileId(raw))
    }

    /// The first id handed out to client log files.
    #[must_use]
    pub fn first_client() -> LogFileId {
        LogFileId(FIRST_CLIENT_LOGFILE_ID)
    }

    /// Whether this id denotes one of the service's own log files.
    #[must_use]
    pub fn is_reserved(self) -> bool {
        self.0 < FIRST_CLIENT_LOGFILE_ID
    }

    /// Whether entries of this log file are tracked by entrymap bitmaps.
    ///
    /// The entrymap log excludes the volume sequence log file and itself
    /// (§2.1, footnote 6).
    #[must_use]
    pub fn is_entrymapped(self) -> bool {
        self != LogFileId::VOLUME_SEQUENCE && self != LogFileId::ENTRYMAP
    }
}

impl fmt::Display for LogFileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifies a physical log volume (one removable medium).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeId(pub u64);

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol-{:016x}", self.0)
    }
}

/// Identifies a volume sequence: a chain of volumes totally ordered by time
/// of writing (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VolumeSeqId(pub u64);

impl fmt::Display for VolumeSeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq-{:016x}", self.0)
    }
}

/// A client-chosen sequence number, used together with a client timestamp to
/// uniquely identify an asynchronously written entry (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u32);

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a client of the log service (used by the server boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u32);

/// The physical address of a log entry within a volume sequence.
///
/// `volume_index` is the position of the volume within its sequence,
/// `block` is the *data block* (volume label excluded, i.e. device block
/// `block + 1`) holding the entry's first fragment, and `slot` is the
/// entry's index within that block (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryAddr {
    /// Position of the holding volume within the volume sequence (0-based).
    pub volume_index: u32,
    /// Data block containing the entry's first fragment.
    pub block: BlockNo,
    /// Index of the entry within the block.
    pub slot: u16,
}

impl EntryAddr {
    /// Convenience constructor.
    #[must_use]
    pub fn new(volume_index: u32, block: BlockNo, slot: u16) -> EntryAddr {
        EntryAddr {
            volume_index,
            block,
            slot,
        }
    }
}

impl fmt::Display for EntryAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}:b{}:e{}", self.volume_index, self.block, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_no_navigation() {
        assert_eq!(BlockNo(0).next(), BlockNo(1));
        assert_eq!(BlockNo(0).prev(), None);
        assert_eq!(BlockNo(5).prev(), Some(BlockNo(4)));
    }

    #[test]
    fn logfile_id_fits_12_bits() {
        assert!(LogFileId::new(0).is_some());
        assert!(LogFileId::new(4095).is_some());
        assert!(LogFileId::new(4096).is_none());
        assert!(LogFileId::new(u16::MAX).is_none());
    }

    #[test]
    fn reserved_ids() {
        assert!(LogFileId::VOLUME_SEQUENCE.is_reserved());
        assert!(LogFileId::ENTRYMAP.is_reserved());
        assert!(LogFileId::CATALOG.is_reserved());
        assert!(LogFileId::BAD_BLOCK.is_reserved());
        assert!(!LogFileId::first_client().is_reserved());
    }

    #[test]
    fn entrymap_tracks_catalog_but_not_itself() {
        assert!(!LogFileId::VOLUME_SEQUENCE.is_entrymapped());
        assert!(!LogFileId::ENTRYMAP.is_entrymapped());
        assert!(LogFileId::CATALOG.is_entrymapped());
        assert!(LogFileId::BAD_BLOCK.is_entrymapped());
        assert!(LogFileId::first_client().is_entrymapped());
    }

    #[test]
    fn entry_addr_orders_by_volume_then_block_then_slot() {
        let a = EntryAddr::new(0, BlockNo(9), 5);
        let b = EntryAddr::new(1, BlockNo(0), 0);
        let c = EntryAddr::new(1, BlockNo(0), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn displays() {
        assert_eq!(EntryAddr::new(2, BlockNo(7), 3).to_string(), "v2:b7:e3");
        assert_eq!(LogFileId(12).to_string(), "#12");
    }
}
