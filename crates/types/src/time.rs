//! Timestamps.
//!
//! Clio tags log entries with the time at which the service received them
//! (§2.1). A timestamp both uniquely identifies an entry written
//! synchronously and supports locating entries "at a given earlier point in
//! time". We use microseconds since an arbitrary epoch; benches drive this
//! from a virtual clock so runs are deterministic.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in time, in microseconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (the epoch).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Builds a timestamp from whole microseconds.
    #[must_use]
    pub fn from_micros(us: u64) -> Timestamp {
        Timestamp(us)
    }

    /// Builds a timestamp from whole milliseconds.
    #[must_use]
    pub fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000)
    }

    /// Builds a timestamp from whole seconds.
    #[must_use]
    pub fn from_secs(s: u64) -> Timestamp {
        Timestamp(s * 1_000_000)
    }

    /// The timestamp as microseconds since the epoch.
    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in microseconds.
    #[must_use]
    pub fn saturating_add_micros(self, us: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(us))
    }

    /// The absolute difference between two timestamps, in microseconds.
    #[must_use]
    pub fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;

    fn add(self, us: u64) -> Timestamp {
        Timestamp(self.0 + us)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;

    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        write!(f, "{s}.{us:06}s")
    }
}

/// A source of timestamps for the log service.
///
/// The service stamps every received entry (§2.1); tests and benchmarks
/// drive a deterministic clock, deployments use [`SystemClock`].
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time (microseconds since the Unix epoch).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Timestamp(us)
    }
}

/// A manually advanced clock for tests: every call to [`Clock::now`]
/// returns a strictly increasing timestamp (`base + ticks`).
#[derive(Debug, Default)]
pub struct ManualClock {
    next: std::sync::atomic::AtomicU64,
}

impl ManualClock {
    /// A clock starting at `base`.
    #[must_use]
    pub fn starting_at(base: Timestamp) -> ManualClock {
        ManualClock {
            next: std::sync::atomic::AtomicU64::new(base.0),
        }
    }

    /// Jumps the clock forward by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.next
            .fetch_add(us, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Timestamp::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(Timestamp::from_millis(5).as_micros(), 5_000);
        assert_eq!(Timestamp::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert!(Timestamp::ZERO < Timestamp::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(1) + 500;
        assert_eq!(t.as_micros(), 1_000_500);
        assert_eq!(t - Timestamp::from_secs(1), 500);
        assert_eq!(Timestamp::MAX.saturating_add_micros(10), Timestamp::MAX);
        assert_eq!(Timestamp(5).abs_diff(Timestamp(9)), 4);
        assert_eq!(Timestamp(9).abs_diff(Timestamp(5)), 4);
    }

    #[test]
    fn display_is_seconds_with_fraction() {
        assert_eq!(Timestamp(1_500_000).to_string(), "1.500000s");
    }

    #[test]
    fn manual_clock_is_strictly_increasing() {
        let c = ManualClock::starting_at(Timestamp(100));
        let a = c.now();
        let b = c.now();
        assert!(b > a);
        c.advance(50);
        assert!(c.now() >= Timestamp(152));
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock;
        assert!(c.now() > Timestamp::ZERO);
    }
}
