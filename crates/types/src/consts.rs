//! Workspace-wide constants and defaults.
//!
//! The defaults follow the paper's measured configuration (§3.2): 1 KiB
//! blocks and an entrymap fan-out of N = 16.

/// Default log device block size in bytes (the paper used 1 kbyte blocks).
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// Minimum block size the block format supports.
///
/// A block must hold its trailer, at least one index slot, and a non-trivial
/// amount of entry data.
pub const MIN_BLOCK_SIZE: usize = 128;

/// Default degree (fan-out) `N` of the entrymap search tree.
///
/// The paper concludes (§3.3.1, §3.4) that N in the range 16–32 provides
/// excellent read performance without excessive initialization cost.
pub const DEFAULT_FANOUT: usize = 16;

/// Maximum number of distinct log files per volume sequence.
///
/// The local-logfile-id field in an entry header is 12 bits (§2.2), so at
/// most 4096 log files can ever be created on one volume sequence.
pub const MAX_LOGFILES: usize = 1 << 12;

/// Number of low local-logfile-ids reserved for the service's own log files.
pub const FIRST_CLIENT_LOGFILE_ID: u16 = 8;

/// The byte value a fully "burned" (invalidated) write-once block holds.
///
/// Invalidation overwrites a corrupted block with all 1s (§2.3.2); on real
/// WORM media this is always physically possible because bits only ever
/// transition one way.
pub const INVALIDATED_BYTE: u8 = 0xFF;
